//! The [`Tensor`] type: dense `f32` data plus autodiff graph edges.

use std::cell::{Cell, Ref, RefCell};
use std::fmt;
use std::rc::Rc;

use rand::rngs::StdRng;

use crate::autodiff::is_grad_enabled;
use crate::rng;
use crate::shape::Shape;
use crate::{NnError, Result};

thread_local! {
    static NEXT_ID: Cell<u64> = const { Cell::new(0) };
}

fn next_id() -> u64 {
    NEXT_ID.with(|c| {
        let id = c.get();
        c.set(id + 1);
        id
    })
}

/// The gradient function of a non-leaf node.
///
/// Receives the gradient flowing into the node and the node's parents, and
/// is responsible for accumulating into each parent via
/// [`Tensor::accumulate_grad`].
pub(crate) type BackwardFn = Box<dyn Fn(&[f32], &[Tensor])>;

pub(crate) struct Node {
    id: u64,
    shape: Shape,
    /// Reference-counted so that metadata-only ops (reshape in forward-only
    /// mode) can alias the buffer instead of copying it. Aliased storage is
    /// never mutated: `set_data`/`update_data` are only applied to params,
    /// and params are never created by (or eligible for) storage sharing.
    data: Rc<RefCell<Vec<f32>>>,
    grad: RefCell<Option<Vec<f32>>>,
    requires_grad: bool,
    /// Bumped on every in-place data mutation (`set_data`/`update_data`).
    /// `(id, generation)` identifies a value snapshot, which the packed-panel
    /// cache in `ops::matmul` uses for invalidation across optimizer steps.
    generation: Cell<u64>,
    pub(crate) parents: Vec<Tensor>,
    pub(crate) backward: Option<BackwardFn>,
}

impl Drop for Node {
    fn drop(&mut self) {
        // Detached history-free leaves are the op outputs of forward-only
        // execution; hand their storage back to the arena for reuse. Params
        // and graph nodes keep normal ownership. Storage aliased by a live
        // view stays alive (`try_unwrap` fails) and is recycled when the
        // last handle drops.
        if !self.requires_grad && self.parents.is_empty() && self.backward.is_none() {
            if let Ok(cell) = Rc::try_unwrap(std::mem::take(&mut self.data)) {
                crate::arena::recycle(cell.into_inner());
            }
        }
    }
}

/// A dense, row-major `f32` tensor participating in an autodiff graph.
///
/// `Tensor` is a cheap reference-counted handle: cloning shares the
/// underlying storage and graph node. Tensors are single-threaded
/// (`Rc`-based); train one model per thread.
#[derive(Clone)]
pub struct Tensor {
    node: Rc<Node>,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Builds a leaf tensor from a data buffer and shape.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.numel() {
            return Err(NnError::LengthMismatch {
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        Ok(Self::leaf(data, shape, false))
    }

    /// Builds a trainable leaf (parameter) from a data buffer and shape.
    pub fn param_from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let t = Self::from_vec(data, dims)?;
        Ok(t.into_param())
    }

    /// A tensor of zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Self::leaf(vec![0.0; n], shape, false)
    }

    /// A tensor of ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Self::leaf(vec![value; n], shape, false)
    }

    /// A zero-dimensional scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Self::leaf(vec![value], Shape::scalar(), false)
    }

    /// Standard-normal random tensor using the supplied seeded RNG.
    pub fn randn(rng: &mut StdRng, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let data = rng::normal_vec(rng, shape.numel());
        Self::leaf(data, shape, false)
    }

    /// Uniform `[lo, hi)` random tensor using the supplied seeded RNG.
    pub fn rand_uniform(rng: &mut StdRng, dims: &[usize], lo: f32, hi: f32) -> Self {
        use rand::Rng;
        let shape = Shape::new(dims);
        let data = (0..shape.numel())
            .map(|_| rng.gen_range(lo..hi))
            .collect();
        Self::leaf(data, shape, false)
    }

    /// Marks this leaf as requiring gradients, returning it as a parameter.
    ///
    /// Panics when called on a non-leaf (op output) tensor.
    pub fn into_param(self) -> Self {
        assert!(
            self.node.parents.is_empty(),
            "into_param must be called on leaf tensors"
        );
        Tensor {
            node: Rc::new(Node {
                id: next_id(),
                shape: self.node.shape.clone(),
                data: Rc::new(RefCell::new(self.node.data.borrow().clone())),
                grad: RefCell::new(None),
                requires_grad: true,
                generation: Cell::new(0),
                parents: Vec::new(),
                backward: None,
            }),
        }
    }

    pub(crate) fn leaf(data: Vec<f32>, shape: Shape, requires_grad: bool) -> Self {
        debug_assert_eq!(data.len(), shape.numel());
        Tensor {
            node: Rc::new(Node {
                id: next_id(),
                shape,
                data: Rc::new(RefCell::new(data)),
                grad: RefCell::new(None),
                requires_grad,
                generation: Cell::new(0),
                parents: Vec::new(),
                backward: None,
            }),
        }
    }

    /// A detached leaf that *aliases* this tensor's storage under a new
    /// shape — a metadata-only view, no copy.
    ///
    /// Only sound when the storage cannot be mutated while both handles
    /// are alive: callers must restrict this to non-param tensors outside
    /// gradient tracking (op outputs are immutable once produced, and
    /// `set_data`/`update_data` only ever target params).
    pub(crate) fn view_with_shape(&self, shape: Shape) -> Self {
        debug_assert_eq!(self.numel(), shape.numel());
        debug_assert!(!self.requires_grad());
        Tensor {
            node: Rc::new(Node {
                id: next_id(),
                shape,
                data: Rc::clone(&self.node.data),
                grad: RefCell::new(None),
                requires_grad: false,
                generation: Cell::new(0),
                parents: Vec::new(),
                backward: None,
            }),
        }
    }

    /// Creates an op-output node. When gradient tracking is disabled or no
    /// parent requires gradients, the result is a detached leaf (no graph)
    /// and the backward closure is never even constructed — forward-only
    /// execution pays zero tape cost.
    pub(crate) fn from_op(
        data: Vec<f32>,
        shape: Shape,
        parents: Vec<Tensor>,
        backward: impl FnOnce() -> BackwardFn,
    ) -> Self {
        let track = is_grad_enabled() && parents.iter().any(|p| p.requires_grad());
        if !track {
            return Self::leaf(data, shape, false);
        }
        debug_assert_eq!(data.len(), shape.numel());
        Tensor {
            node: Rc::new(Node {
                id: next_id(),
                shape,
                data: Rc::new(RefCell::new(data)),
                grad: RefCell::new(None),
                requires_grad: true,
                generation: Cell::new(0),
                parents,
                backward: Some(backward()),
            }),
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Unique node identifier (process-local, monotone).
    pub fn id(&self) -> u64 {
        self.node.id
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.node.shape
    }

    /// The tensor's dimension sizes.
    pub fn dims(&self) -> &[usize] {
        self.node.shape.dims()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.node.shape.numel()
    }

    /// Borrows the underlying data buffer.
    pub fn data(&self) -> Ref<'_, Vec<f32>> {
        self.node.data.borrow()
    }

    /// Copies the underlying data out.
    pub fn to_vec(&self) -> Vec<f32> {
        self.node.data.borrow().clone()
    }

    /// The value of a scalar (single-element) tensor.
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        let d = self.node.data.borrow();
        assert_eq!(d.len(), 1, "item() requires a single-element tensor");
        d[0]
    }

    /// Whether gradients are accumulated into this tensor.
    pub fn requires_grad(&self) -> bool {
        self.node.requires_grad
    }

    /// Mutation counter for the data buffer: 0 at construction, bumped by
    /// every [`set_data`](Self::set_data)/[`update_data`](Self::update_data)
    /// (i.e. every optimizer step). `(id, generation)` pins a value
    /// snapshot for caches layered above the tensor.
    pub fn generation(&self) -> u64 {
        self.node.generation.get()
    }

    /// A copy of the accumulated gradient, if any.
    pub fn grad(&self) -> Option<Vec<f32>> {
        self.node.grad.borrow().clone()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        *self.node.grad.borrow_mut() = None;
    }

    /// Overwrites the data buffer in place (used by optimizers).
    ///
    /// Panics if the length differs from the tensor's element count.
    pub fn set_data(&self, new: &[f32]) {
        let mut d = self.node.data.borrow_mut();
        assert_eq!(d.len(), new.len(), "set_data length mismatch");
        d.copy_from_slice(new);
        self.node.generation.set(self.node.generation.get() + 1);
    }

    /// Applies `f` to the data buffer in place (used by optimizers).
    pub fn update_data(&self, f: impl FnOnce(&mut [f32])) {
        let mut d = self.node.data.borrow_mut();
        f(&mut d);
        self.node.generation.set(self.node.generation.get() + 1);
    }

    /// Returns a detached copy: same values, fresh leaf, no graph history.
    pub fn detach(&self) -> Self {
        Self::leaf(self.to_vec(), self.node.shape.clone(), false)
    }

    /// Adds `g` into the tensor's gradient buffer.
    pub(crate) fn accumulate_grad(&self, g: &[f32]) {
        if !self.node.requires_grad {
            return;
        }
        debug_assert_eq!(g.len(), self.numel(), "gradient length mismatch");
        let mut slot = self.node.grad.borrow_mut();
        match slot.as_mut() {
            Some(acc) => {
                for (a, b) in acc.iter_mut().zip(g) {
                    *a += b;
                }
            }
            None => *slot = Some(g.to_vec()),
        }
    }

    pub(crate) fn node(&self) -> &Node {
        &self.node
    }
}

impl Node {
    pub(crate) fn grad_clone_or_zeros(&self) -> Vec<f32> {
        self.grad
            .borrow()
            .clone()
            .unwrap_or_else(|| vec![0.0; self.shape.numel()])
    }

    pub(crate) fn seed_grad_ones(&self) {
        *self.grad.borrow_mut() = Some(vec![1.0; self.shape.numel()]);
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.node.data.borrow();
        let preview: Vec<f32> = d.iter().take(8).copied().collect();
        write!(
            f,
            "Tensor(id={}, shape={}, requires_grad={}, data≈{:?}{})",
            self.node.id,
            self.node.shape,
            self.node.requires_grad,
            preview,
            if d.len() > 8 { ", ..." } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
    }

    #[test]
    fn constructors_fill_values() {
        assert_eq!(Tensor::zeros(&[3]).to_vec(), vec![0.0; 3]);
        assert_eq!(Tensor::ones(&[2, 2]).to_vec(), vec![1.0; 4]);
        assert_eq!(Tensor::full(&[2], 7.0).to_vec(), vec![7.0, 7.0]);
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let a = Tensor::randn(&mut seeded(1), &[16]);
        let b = Tensor::randn(&mut seeded(1), &[16]);
        let c = Tensor::randn(&mut seeded(2), &[16]);
        assert_eq!(a.to_vec(), b.to_vec());
        assert_ne!(a.to_vec(), c.to_vec());
    }

    #[test]
    fn params_accumulate_gradients() {
        let p = Tensor::param_from_vec(vec![1.0, 2.0], &[2]).unwrap();
        p.accumulate_grad(&[0.5, 0.5]);
        p.accumulate_grad(&[1.0, 2.0]);
        assert_eq!(p.grad().unwrap(), vec![1.5, 2.5]);
        p.zero_grad();
        assert!(p.grad().is_none());
    }

    #[test]
    fn detach_breaks_history_but_keeps_values() {
        let p = Tensor::param_from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let d = p.detach();
        assert_eq!(d.to_vec(), vec![1.0, 2.0]);
        assert!(!d.requires_grad());
    }

    #[test]
    fn set_and_update_data() {
        let t = Tensor::zeros(&[2]);
        t.set_data(&[1.0, 2.0]);
        assert_eq!(t.to_vec(), vec![1.0, 2.0]);
        t.update_data(|d| d.iter_mut().for_each(|v| *v *= 2.0));
        assert_eq!(t.to_vec(), vec![2.0, 4.0]);
    }

    #[test]
    fn uniform_respects_bounds() {
        let t = Tensor::rand_uniform(&mut seeded(7), &[100], -0.5, 0.5);
        assert!(t.data().iter().all(|v| (-0.5..0.5).contains(v)));
    }
}
