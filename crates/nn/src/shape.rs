//! Tensor shapes, strides and NumPy-style broadcasting rules.

use std::fmt;

/// The shape of a dense row-major tensor.
///
/// A shape is a list of dimension sizes; the empty list denotes a scalar.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a slice of dimension sizes.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Scalar shape (zero dimensions, one element).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Size of dimension `axis`. Panics if out of range.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Row-major strides (in elements).
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0usize; self.ndim()];
        let mut acc = 1usize;
        for i in (0..self.ndim()).rev() {
            strides[i] = acc;
            acc *= self.0[i];
        }
        strides
    }

    /// Broadcasts two shapes together following NumPy rules.
    ///
    /// Dimensions are aligned from the right; each pair must be equal or one
    /// of them must be 1. Panics with a descriptive message on mismatch —
    /// broadcasting failures are programmer errors.
    pub fn broadcast(a: &Shape, b: &Shape) -> Shape {
        let ndim = a.ndim().max(b.ndim());
        let mut out = vec![0usize; ndim];
        for i in 0..ndim {
            let da = a.dim_from_right(i);
            let db = b.dim_from_right(i);
            out[ndim - 1 - i] = if da == db {
                da
            } else if da == 1 {
                db
            } else if db == 1 {
                da
            } else {
                panic!("cannot broadcast shapes {a} and {b}");
            };
        }
        Shape(out)
    }

    /// Dimension size counting from the right; missing dims act as 1.
    fn dim_from_right(&self, i: usize) -> usize {
        if i < self.ndim() {
            self.0[self.ndim() - 1 - i]
        } else {
            1
        }
    }

    /// Strides of `self` viewed as `out` (broadcast dims get stride 0).
    ///
    /// Panics if `self` does not broadcast to `out`.
    pub fn broadcast_strides_to(&self, out: &Shape) -> Vec<usize> {
        assert!(
            out.ndim() >= self.ndim(),
            "cannot broadcast {self} to smaller-rank {out}"
        );
        let own = self.strides();
        let mut strides = vec![0usize; out.ndim()];
        for i in 0..out.ndim() {
            let od = out.0[out.ndim() - 1 - i];
            let sd = self.dim_from_right(i);
            let slot = out.ndim() - 1 - i;
            if sd == od {
                if i < self.ndim() {
                    strides[slot] = own[self.ndim() - 1 - i];
                }
            } else if sd == 1 {
                strides[slot] = 0;
            } else {
                panic!("cannot broadcast {self} to {out}");
            }
        }
        strides
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

/// Iterates over every output index of a broadcast binary operation,
/// yielding `(out_idx, a_idx, b_idx)` linear offsets.
pub(crate) fn for_each_broadcast3(
    out: &Shape,
    a: &Shape,
    b: &Shape,
    mut f: impl FnMut(usize, usize, usize),
) {
    let n = out.numel();
    if n == 0 {
        return;
    }
    // Fast path: identical shapes.
    if a == out && b == out {
        for i in 0..n {
            f(i, i, i);
        }
        return;
    }
    let sa = a.broadcast_strides_to(out);
    let sb = b.broadcast_strides_to(out);
    let dims = out.dims();
    let ndim = dims.len();
    let mut idx = vec![0usize; ndim];
    let (mut ia, mut ib) = (0usize, 0usize);
    for i in 0..n {
        f(i, ia, ib);
        // Increment the multi-index, updating ia/ib incrementally.
        for d in (0..ndim).rev() {
            idx[d] += 1;
            ia += sa[d];
            ib += sb[d];
            if idx[d] < dims[d] {
                break;
            }
            ia -= sa[d] * dims[d];
            ib -= sb[d] * dims[d];
            idx[d] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.numel(), 24);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.ndim(), 0);
        assert_eq!(s.numel(), 1);
        assert!(s.strides().is_empty());
    }

    #[test]
    fn broadcast_basic() {
        let a = Shape::new(&[3, 1]);
        let b = Shape::new(&[1, 4]);
        assert_eq!(Shape::broadcast(&a, &b), Shape::new(&[3, 4]));
    }

    #[test]
    fn broadcast_rank_extension() {
        let a = Shape::new(&[5, 3]);
        let b = Shape::new(&[3]);
        assert_eq!(Shape::broadcast(&a, &b), Shape::new(&[5, 3]));
    }

    #[test]
    #[should_panic(expected = "cannot broadcast")]
    fn broadcast_mismatch_panics() {
        Shape::broadcast(&Shape::new(&[2, 3]), &Shape::new(&[4]));
    }

    #[test]
    fn broadcast_strides() {
        let s = Shape::new(&[3]);
        let out = Shape::new(&[2, 3]);
        assert_eq!(s.broadcast_strides_to(&out), vec![0, 1]);
    }

    #[test]
    fn for_each_broadcast_row_plus_col() {
        let out = Shape::new(&[2, 3]);
        let a = Shape::new(&[2, 1]);
        let b = Shape::new(&[3]);
        let mut triples = Vec::new();
        for_each_broadcast3(&out, &a, &b, |o, ia, ib| triples.push((o, ia, ib)));
        assert_eq!(
            triples,
            vec![
                (0, 0, 0),
                (1, 0, 1),
                (2, 0, 2),
                (3, 1, 0),
                (4, 1, 1),
                (5, 1, 2)
            ]
        );
    }
}
