//! Length-prefixed binary wire protocol of the serving layer.
//!
//! Every message — request or response — travels in one *frame*:
//!
//! | bytes     | field                                                |
//! |-----------|------------------------------------------------------|
//! | `0..2`    | magic `b"IW"`                                        |
//! | `2`       | protocol version (currently [`WIRE_VERSION`])        |
//! | `3`       | message kind (see [`kind`])                          |
//! | `4..8`    | payload length, `u32` little-endian                  |
//! | `8..12`   | CRC32 of `version ‖ kind ‖ payload`, little-endian   |
//! | `12..`    | payload                                              |
//!
//! The CRC covers the version and kind bytes as well as the payload, so
//! *any* single corrupted byte outside the magic and length fields is
//! caught as [`WireError::CrcMismatch`]; corrupted magic surfaces as
//! [`WireError::BadMagic`] and corrupted lengths as truncation, trailing
//! bytes or a CRC mismatch. Decoding never panics on hostile input — the
//! `serve_protocol` property suite flips every byte to enforce this.
//!
//! Payload layouts are fixed little-endian structs (no self-describing
//! envelope); see the `encode_payload`/`decode` pairs on [`Request`] and
//! [`Response`]. NaN cells inside a score request declare missing values,
//! exactly as in [`imdiffusion::StreamingMonitor::push_batch`].

use std::fmt;
use std::io::{Read, Write};

use imdiff_nn::serialize::{crc32_finish, crc32_update, CRC32_INIT};

/// Current protocol version byte. v2 added the idempotency sequence id on
/// score requests and the replication control kinds
/// ([`kind::ADOPT`]/[`kind::SNAPSHOT`]); v3 added the typed reload answer
/// ([`kind::RELOAD_STATUS`], carrying the active generation and the last
/// promotion/rollback verdict) and the drift fields of [`TenantHealth`];
/// v4 added the active detector-family name to [`TenantHealth`] and
/// [`Response::ReloadStatus`], so clients can observe which registry
/// family (z-score, IForest, ImDiffusion, ...) is serving a tenant.
/// Older peers are refused with [`WireError::UnsupportedVersion`] rather
/// than mis-parsed.
pub const WIRE_VERSION: u8 = 4;

/// Frame magic: "Imdiffusion Wire".
pub const MAGIC: [u8; 2] = *b"IW";

/// Hard cap on payload size (16 MiB): a corrupted or hostile length field
/// can never force a large allocation.
pub const MAX_PAYLOAD: u32 = 16 << 20;

/// Frame header size in bytes (magic + version + kind + len + crc).
pub const HEADER_LEN: usize = 12;

/// Largest single allocation step while reading an unverified payload:
/// the buffer grows with the bytes the peer actually delivers instead of
/// trusting the length prefix up front.
pub const PAYLOAD_READ_CHUNK: usize = 64 << 10;

/// Message kind bytes. Requests are `< 128`, responses `>= 128`.
pub mod kind {
    /// Score a chunk of rows for one tenant.
    pub const SCORE: u8 = 1;
    /// Report every tenant's health and model generation.
    pub const HEALTH: u8 = 2;
    /// Export the server's observability snapshot (imdiff-obs-v1 JSON).
    pub const OBS_SNAPSHOT: u8 = 3;
    /// Force a checkpoint reload check for one tenant.
    pub const RELOAD: u8 = 4;
    /// Begin a graceful drain: finish queued work, stop accepting new.
    pub const DRAIN: u8 = 5;
    /// Liveness probe.
    pub const PING: u8 = 6;
    /// Activate one tenant on a replica, restoring its streaming state
    /// from the IMSM sidecar when one exists (failover adoption).
    pub const ADOPT: u8 = 7;
    /// Force an immediate IMSM sidecar write for one tenant.
    pub const SNAPSHOT: u8 = 8;

    /// Per-point verdicts for a score request.
    pub const VERDICTS: u8 = 128;
    /// Typed refusal or failure.
    pub const ERROR: u8 = 129;
    /// Health report for all tenants.
    pub const HEALTH_REPORT: u8 = 130;
    /// Observability snapshot JSON.
    pub const OBS_JSON: u8 = 131;
    /// Bare acknowledgement.
    pub const OK: u8 = 132;
    /// Typed answer to a `RELOAD` request: the tenant's active model
    /// generation plus the last promotion/rollback verdict.
    pub const RELOAD_STATUS: u8 = 133;
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Everything that can go wrong while framing or parsing a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Underlying transport failure.
    Io(String),
    /// The two magic bytes were wrong.
    BadMagic([u8; 2]),
    /// The version byte named a protocol we do not speak.
    UnsupportedVersion(u8),
    /// The length field exceeds [`MAX_PAYLOAD`].
    TooLarge(u32),
    /// The buffer or stream ended before the declared frame did.
    Truncated,
    /// Bytes remained after the declared frame (buffer decode only).
    TrailingBytes(usize),
    /// The payload checksum did not match the header.
    CrcMismatch {
        /// Checksum stored in the frame header.
        stored: u32,
        /// Checksum computed over the received bytes.
        actual: u32,
    },
    /// The kind byte is not a known message type.
    UnknownKind(u8),
    /// The frame was intact but its payload did not parse.
    Malformed(String),
    /// No frame arrived before the socket read timeout (only reported
    /// when *zero* bytes of the next frame had been read — a timeout
    /// mid-frame is an [`WireError::Io`] error).
    Idle,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(msg) => write!(f, "wire I/O error: {msg}"),
            WireError::BadMagic(m) => {
                write!(f, "bad frame magic {:#04x}{:#04x}", m[0], m[1])
            }
            WireError::UnsupportedVersion(v) => {
                write!(f, "unsupported wire version {v}")
            }
            WireError::TooLarge(n) => {
                write!(f, "declared payload of {n} bytes exceeds the {MAX_PAYLOAD} cap")
            }
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after the frame")
            }
            WireError::CrcMismatch { stored, actual } => write!(
                f,
                "frame CRC mismatch: header {stored:#010x}, payload {actual:#010x}"
            ),
            WireError::UnknownKind(k) => write!(f, "unknown message kind {k}"),
            WireError::Malformed(msg) => write!(f, "malformed payload: {msg}"),
            WireError::Idle => write!(f, "no frame before read timeout"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Message types
// ---------------------------------------------------------------------------

/// A client→server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Score `rows` (rectangular, NaN = declared missing) for `tenant`,
    /// after `gap_before` rows lost by the transport.
    Score {
        /// Stream id the rows belong to.
        tenant: String,
        /// Per-tenant idempotency sequence id. `0` opts out of
        /// deduplication; non-zero ids must be assigned monotonically by
        /// a single writer per tenant. A replayed id is answered from the
        /// server's reply cache without re-ingesting the rows, making
        /// reconnect-and-replay after a transport loss safe.
        seq: u64,
        /// Stream-position guard: the global row index this chunk starts
        /// at, or [`u64::MAX`] to skip the check. When set, the server
        /// refuses the chunk with a typed `Unavailable` unless its
        /// monitor is at exactly this position — so a client whose
        /// stream state raced a failover (the replica restored from an
        /// older snapshot) gets an explicit "resync" signal instead of
        /// silently feeding rows into the wrong position.
        start_row: u64,
        /// Rows dropped immediately before this chunk.
        gap_before: u32,
        /// Observed rows in stream order; all rows share one length.
        rows: Vec<Vec<f32>>,
    },
    /// Ask for every tenant's health report.
    Health,
    /// Ask for the observability snapshot.
    ObsSnapshot,
    /// Force a checkpoint reload check for `tenant`.
    Reload {
        /// Stream id whose checkpoint should be re-examined.
        tenant: String,
    },
    /// Begin a graceful drain.
    Drain,
    /// Liveness probe.
    Ping,
    /// Activate `tenant` on this replica (failover adoption): restore its
    /// streaming state from the IMSM sidecar when present, fall back to a
    /// fresh (re-warming) load when the sidecar is absent or damaged.
    /// Internal supervisor→replica traffic — routers refuse it from
    /// external clients.
    Adopt {
        /// Stream id to activate.
        tenant: String,
    },
    /// Force an immediate IMSM sidecar write for `tenant`, giving callers
    /// a deterministic recovery point.
    Snapshot {
        /// Stream id to snapshot.
        tenant: String,
    },
}

/// Machine-readable refusal/failure category (the `code` byte of an
/// error response).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Admission control rejected the request: queue full. Retry with
    /// backoff; the rows were **not** ingested.
    Overloaded = 1,
    /// The request exceeded its queueing deadline before a worker picked
    /// it up. The rows were **not** ingested.
    Timeout = 2,
    /// No tenant with the given id is registered.
    UnknownTenant = 3,
    /// The request itself was invalid (wrong channel count, non-finite
    /// values outside declared-missing, empty rows, ...).
    BadRequest = 4,
    /// The server is draining and accepts no new scoring work.
    Draining = 5,
    /// Unexpected server-side failure.
    Internal = 6,
    /// The request was **refused before ingestion** — the tenant is
    /// mid-failover, not placed on this replica, or its stream-position
    /// guard did not match. The rows were **not** applied, so retrying
    /// (even under a fresh sequence id) cannot double-ingest.
    Unavailable = 7,
    /// The request was **interrupted in flight** and its applied state is
    /// unknown (a connection to the replica died mid-exchange), or it was
    /// applied but its cached reply is gone. Retry with the **same**
    /// sequence id — the replica's dedup resolves the ambiguity; a fresh
    /// sequence id would bypass it and risk ingesting the rows twice.
    Interrupted = 8,
}

impl ErrorCode {
    fn from_u8(b: u8) -> Option<ErrorCode> {
        Some(match b {
            1 => ErrorCode::Overloaded,
            2 => ErrorCode::Timeout,
            3 => ErrorCode::UnknownTenant,
            4 => ErrorCode::BadRequest,
            5 => ErrorCode::Draining,
            6 => ErrorCode::Internal,
            7 => ErrorCode::Unavailable,
            8 => ErrorCode::Interrupted,
            _ => return None,
        })
    }

    /// Whether retrying the same request (same sequence id) can succeed.
    /// Mirrors [`imdiff_data::DetectorError::is_retryable`]: transient
    /// refusals ([`ErrorCode::Overloaded`], [`ErrorCode::Timeout`]),
    /// replica loss ([`ErrorCode::Unavailable`], which clears once
    /// failover re-places the tenant) and in-flight interruptions
    /// ([`ErrorCode::Interrupted`]) are retryable; caller bugs, unknown
    /// tenants, drains and internal failures are not.
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::Overloaded
                | ErrorCode::Timeout
                | ErrorCode::Unavailable
                | ErrorCode::Interrupted
        )
    }

    /// Whether the request **may already have been applied** despite the
    /// error. `true` only for [`ErrorCode::Interrupted`]: the reply was
    /// lost, not the refusal decided. Such a request must be replayed
    /// under its **original** sequence id (so the replica's dedup can
    /// answer it idempotently) — never re-submitted under a fresh one,
    /// which would ingest the rows a second time. Every other code is a
    /// refusal issued *before* ingestion, safe to retry fresh.
    pub fn may_be_applied(self) -> bool {
        matches!(self, ErrorCode::Interrupted)
    }
}

/// One scored observation as it travels over the wire (mirrors
/// [`imdiffusion::PointVerdict`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireVerdict {
    /// Global stream index of the observation.
    pub index: u64,
    /// Continuous anomaly score.
    pub score: f64,
    /// Ensemble votes received (0 when degraded).
    pub votes: u32,
    /// Voted anomaly label.
    pub anomalous: bool,
    /// Served by the z-score fallback rather than full inference.
    pub degraded: bool,
}

/// Health state byte on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum WireHealthState {
    /// Full ensemble inference.
    Healthy = 0,
    /// Fallback verdicts.
    Degraded = 1,
    /// Buffer (re)filling.
    Warming = 2,
}

impl WireHealthState {
    fn from_u8(b: u8) -> Option<WireHealthState> {
        Some(match b {
            0 => WireHealthState::Healthy,
            1 => WireHealthState::Degraded,
            2 => WireHealthState::Warming,
            _ => return None,
        })
    }
}

/// Outcome of a tenant's most recent promotion attempt, as carried by
/// [`Response::ReloadStatus`]. The server records one per tenant and
/// overwrites it on every reload attempt or automatic rollback, so a
/// `Reload` round-trip always reports the *latest* decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PromotionVerdict {
    /// No reload has been attempted since startup.
    NoAttempt = 0,
    /// The candidate passed validation and is now serving.
    Promoted = 1,
    /// The candidate loaded but lost to the incumbent on the held-out
    /// validation slice; the incumbent keeps serving.
    RejectedGate = 2,
    /// The candidate checkpoint failed to load or to swap (CRC mismatch,
    /// truncation, geometry drift); the incumbent keeps serving.
    RejectedCorrupt = 3,
    /// A promoted candidate regressed in production and the archived
    /// incumbent was automatically restored.
    RolledBack = 4,
}

impl PromotionVerdict {
    fn from_u8(b: u8) -> Option<PromotionVerdict> {
        Some(match b {
            0 => PromotionVerdict::NoAttempt,
            1 => PromotionVerdict::Promoted,
            2 => PromotionVerdict::RejectedGate,
            3 => PromotionVerdict::RejectedCorrupt,
            4 => PromotionVerdict::RolledBack,
            _ => return None,
        })
    }
}

/// Per-tenant entry of a health report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantHealth {
    /// Stream id.
    pub id: String,
    /// Current health state.
    pub state: WireHealthState,
    /// Model generation (bumps on every successful hot reload).
    pub generation: u64,
    /// Observations consumed.
    pub rows_seen: u64,
    /// Rows rejected at ingestion.
    pub rows_rejected: u64,
    /// Evaluations served by the fallback.
    pub degraded_evals: u64,
    /// Long gaps that forced a re-warm.
    pub rewarms: u64,
    /// Degraded → Healthy transitions.
    pub recoveries: u64,
    /// Score requests currently queued for this tenant.
    pub queue_depth: u32,
    /// Whether the drift detector is currently latched (the live input
    /// distribution has left the training-time envelope).
    pub drifted: bool,
    /// Debounced drift trips over the monitor's lifetime.
    pub drift_trips: u64,
    /// Name of the detector family currently serving the tenant
    /// (`"ZScore"`, `"IForest"`, `"ImDiffusion"`, ...). Changes when the
    /// escalation router moves the tenant to a different rung.
    pub family: String,
}

/// A server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Verdicts earned by a score request. `generation` is the model
    /// generation that produced **all** of them — one batch never mixes
    /// generations.
    Verdicts {
        /// Model generation at evaluation time.
        generation: u64,
        /// Per-point verdicts, in stream order.
        verdicts: Vec<WireVerdict>,
    },
    /// Typed refusal or failure.
    Error {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Health report for all tenants, sorted by id.
    Health {
        /// One entry per registered tenant.
        tenants: Vec<TenantHealth>,
    },
    /// Observability snapshot (imdiff-obs-v1 JSON document).
    ObsJson {
        /// The snapshot text.
        json: String,
    },
    /// Bare acknowledgement.
    Ok,
    /// Typed answer to a `Reload` request: the tenant's **active** model
    /// generation (after any swap the reload caused — the server answers
    /// once the swap has landed, not when it was queued) and the last
    /// promotion/rollback verdict with its human-readable detail.
    ReloadStatus {
        /// Model generation currently serving the tenant.
        generation: u64,
        /// Latest promotion/rollback decision.
        verdict: PromotionVerdict,
        /// Human-readable explanation (gate scores, rollback cause, ...).
        detail: String,
        /// Name of the detector family currently serving the tenant.
        family: String,
    },
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

fn frame_crc(version: u8, kind: u8, payload: &[u8]) -> u32 {
    // Streamed over header bytes then payload: no concatenation copy.
    let state = crc32_update(CRC32_INIT, &[version, kind]);
    crc32_finish(crc32_update(state, payload))
}

/// Assembles a complete frame for `kind` around `payload`.
pub fn frame_bytes(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    append_frame(&mut out, kind, payload);
    out
}

/// Appends a complete frame for `kind` to `out` — [`frame_bytes`]
/// without the intermediate allocation, for write-buffered event loops.
pub fn append_frame(out: &mut Vec<u8>, kind: u8, payload: &[u8]) {
    assert!(payload.len() as u64 <= MAX_PAYLOAD as u64, "payload over cap");
    out.extend_from_slice(&MAGIC);
    out.push(WIRE_VERSION);
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame_crc(WIRE_VERSION, kind, payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Incrementally scans for one frame at the head of `buf`, which may
/// hold a partial frame or several frames back to back (a connection's
/// read buffer). Returns `Ok(None)` when the buffer ends mid-frame —
/// read more and rescan — and `Ok(Some((kind, total)))` once a whole
/// CRC-checked frame is present, where `total` is the frame length
/// including the header: the payload is `&buf[HEADER_LEN..total]`,
/// borrowed straight from the read buffer with no per-frame allocation.
/// Header fields are validated as soon as the 12 header bytes exist, so
/// a hostile magic/version/length prefix is rejected before any payload
/// accumulates.
pub fn scan_frame(buf: &[u8]) -> Result<Option<(u8, usize)>, WireError> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    if buf[0..2] != MAGIC {
        return Err(WireError::BadMagic([buf[0], buf[1]]));
    }
    let version = buf[2];
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let kind = buf[3];
    let len = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    if len > MAX_PAYLOAD {
        return Err(WireError::TooLarge(len));
    }
    let total = HEADER_LEN + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let stored = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
    let actual = frame_crc(version, kind, &buf[HEADER_LEN..total]);
    if stored != actual {
        return Err(WireError::CrcMismatch { stored, actual });
    }
    Ok(Some((kind, total)))
}

/// Routing peek: the tenant id of a tenant-addressed request, borrowed
/// straight from the payload — no row materialization, no allocation.
/// `Ok(None)` for request kinds that carry no tenant; `Err` for unknown
/// kinds and malformed payloads.
///
/// This is also a **complete structural validation** of the payload (it
/// checks everything [`Request::decode`] would reject: string bounds,
/// field sizes, the score row grid — `f32` decoding itself is
/// infallible), so a frame that passes `peek_tenant` can be forwarded
/// verbatim to a replica with no risk of a decode error there. The
/// router depends on this: a shared upstream connection must never be
/// poisoned by one client's malformed frame.
pub fn peek_tenant(kind_byte: u8, payload: &[u8]) -> Result<Option<&str>, WireError> {
    let early = || WireError::Malformed("payload ended early".into());
    let short_str = |payload: &[u8]| -> Result<(usize, usize), WireError> {
        if payload.len() < 2 {
            return Err(early());
        }
        let n = u16::from_le_bytes([payload[0], payload[1]]) as usize;
        if payload.len() < 2 + n {
            return Err(early());
        }
        Ok((2, 2 + n))
    };
    match kind_byte {
        kind::SCORE => {
            let (start, end) = short_str(payload)?;
            let tenant = std::str::from_utf8(&payload[start..end])
                .map_err(|_| WireError::Malformed("string is not UTF-8".into()))?;
            // tenant ‖ seq:u64 ‖ start_row:u64 ‖ gap:u32 ‖ n:u32 ‖ c:u32 ‖ cells
            let fixed = end.checked_add(8 + 8 + 4 + 4 + 4).ok_or_else(early)?;
            if payload.len() < fixed {
                return Err(early());
            }
            let grid = &payload[fixed - 8..fixed];
            let n_rows = u32::from_le_bytes(grid[0..4].try_into().expect("4 bytes")) as usize;
            let channels = u32::from_le_bytes(grid[4..8].try_into().expect("4 bytes")) as usize;
            let ok = n_rows
                .checked_mul(channels)
                .and_then(|cells| cells.checked_mul(4))
                .map(|bytes| bytes == payload.len() - fixed)
                .unwrap_or(false);
            if !ok {
                return Err(WireError::Malformed(
                    "row grid does not match payload size".into(),
                ));
            }
            Ok(Some(tenant))
        }
        kind::RELOAD | kind::ADOPT | kind::SNAPSHOT => {
            let (start, end) = short_str(payload)?;
            if end != payload.len() {
                return Err(WireError::Malformed(format!(
                    "{} unexpected bytes after payload",
                    payload.len() - end
                )));
            }
            std::str::from_utf8(&payload[start..end])
                .map(Some)
                .map_err(|_| WireError::Malformed("string is not UTF-8".into()))
        }
        kind::HEALTH | kind::OBS_SNAPSHOT | kind::DRAIN | kind::PING => {
            if !payload.is_empty() {
                return Err(WireError::Malformed(format!(
                    "{} unexpected bytes after payload",
                    payload.len()
                )));
            }
            Ok(None)
        }
        other => Err(WireError::UnknownKind(other)),
    }
}

/// Parses one frame from `buf`, requiring the buffer to contain exactly
/// one frame. Returns the kind byte and the payload slice.
pub fn parse_frame(buf: &[u8]) -> Result<(u8, &[u8]), WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Truncated);
    }
    if buf[0..2] != MAGIC {
        return Err(WireError::BadMagic([buf[0], buf[1]]));
    }
    let version = buf[2];
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let kind = buf[3];
    let len = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    if len > MAX_PAYLOAD {
        return Err(WireError::TooLarge(len));
    }
    let stored = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
    let end = HEADER_LEN + len as usize;
    if buf.len() < end {
        return Err(WireError::Truncated);
    }
    if buf.len() > end {
        return Err(WireError::TrailingBytes(buf.len() - end));
    }
    let payload = &buf[HEADER_LEN..end];
    let actual = frame_crc(version, kind, payload);
    if stored != actual {
        return Err(WireError::CrcMismatch { stored, actual });
    }
    Ok((kind, payload))
}

/// Reads one frame from `r`. `Ok(None)` means the peer closed the
/// connection cleanly (EOF before any byte of a frame);
/// [`WireError::Idle`] means a read timeout fired before any byte
/// arrived — the connection is still healthy.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<(u8, Vec<u8>)>, WireError> {
    let mut header = [0u8; HEADER_LEN];
    let mut got = 0usize;
    while got < HEADER_LEN {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(WireError::Truncated),
            Ok(n) => got += n,
            Err(e)
                if got == 0
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                return Err(WireError::Idle)
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e.to_string())),
        }
    }
    if header[0..2] != MAGIC {
        return Err(WireError::BadMagic([header[0], header[1]]));
    }
    let version = header[2];
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let kind = header[3];
    let len = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len > MAX_PAYLOAD {
        return Err(WireError::TooLarge(len));
    }
    let stored = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    // The length prefix is untrusted until the CRC passes: grow the
    // payload buffer only as bytes actually arrive, in bounded chunks,
    // so a garbage header claiming the 16 MiB cap cannot force a
    // cap-sized allocation from a peer that never delivers the bytes.
    let len = len as usize;
    let mut payload: Vec<u8> = Vec::new();
    let mut filled = 0usize;
    while filled < len {
        let want = (len - filled).min(PAYLOAD_READ_CHUNK);
        payload.resize(filled + want, 0);
        match r.read(&mut payload[filled..filled + want]) {
            Ok(0) => return Err(WireError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e.to_string())),
        }
    }
    payload.truncate(len);
    let actual = frame_crc(version, kind, &payload);
    if stored != actual {
        return Err(WireError::CrcMismatch { stored, actual });
    }
    Ok(Some((kind, payload)))
}

/// Writes a complete frame to `w`.
pub fn write_frame<W: Write>(w: &mut W, kind: u8, payload: &[u8]) -> Result<(), WireError> {
    w.write_all(&frame_bytes(kind, payload))
        .and_then(|()| w.flush())
        .map_err(|e| WireError::Io(e.to_string()))
}

// ---------------------------------------------------------------------------
// Payload cursor
// ---------------------------------------------------------------------------

struct Cur<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Cur<'a> {
    fn new(b: &'a [u8]) -> Cur<'a> {
        Cur { b, i: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .i
            .checked_add(n)
            .filter(|&e| e <= self.b.len())
            .ok_or_else(|| WireError::Malformed("payload ended early".into()))?;
        let s = &self.b[self.i..end];
        self.i = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// A `u16` length-prefixed UTF-8 string (tenant ids).
    fn short_str(&mut self) -> Result<String, WireError> {
        let n = self.u16()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed("string is not UTF-8".into()))
    }

    /// A `u32` length-prefixed UTF-8 string (messages, JSON).
    fn long_str(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed("string is not UTF-8".into()))
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.i == self.b.len() {
            Ok(())
        } else {
            Err(WireError::Malformed(format!(
                "{} unexpected bytes after payload",
                self.b.len() - self.i
            )))
        }
    }
}

fn put_short_str(out: &mut Vec<u8>, s: &str) {
    assert!(s.len() <= u16::MAX as usize, "string too long for u16 prefix");
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_long_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------------
// Request codec
// ---------------------------------------------------------------------------

impl Request {
    /// The kind byte of this request.
    pub fn kind(&self) -> u8 {
        match self {
            Request::Score { .. } => kind::SCORE,
            Request::Health => kind::HEALTH,
            Request::ObsSnapshot => kind::OBS_SNAPSHOT,
            Request::Reload { .. } => kind::RELOAD,
            Request::Drain => kind::DRAIN,
            Request::Ping => kind::PING,
            Request::Adopt { .. } => kind::ADOPT,
            Request::Snapshot { .. } => kind::SNAPSHOT,
        }
    }

    /// Encodes the payload (without the frame header).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Score {
                tenant,
                seq,
                start_row,
                gap_before,
                rows,
            } => {
                put_short_str(&mut out, tenant);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&start_row.to_le_bytes());
                out.extend_from_slice(&gap_before.to_le_bytes());
                let channels = rows.first().map_or(0, Vec::len);
                assert!(
                    rows.iter().all(|r| r.len() == channels),
                    "score rows must be rectangular"
                );
                out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                out.extend_from_slice(&(channels as u32).to_le_bytes());
                for row in rows {
                    for v in row {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
            Request::Reload { tenant }
            | Request::Adopt { tenant }
            | Request::Snapshot { tenant } => put_short_str(&mut out, tenant),
            Request::Health | Request::ObsSnapshot | Request::Drain | Request::Ping => {}
        }
        out
    }

    /// Serializes the request as one complete frame.
    pub fn to_bytes(&self) -> Vec<u8> {
        frame_bytes(self.kind(), &self.encode_payload())
    }

    /// Parses a request from an exact frame buffer.
    pub fn from_bytes(buf: &[u8]) -> Result<Request, WireError> {
        let (kind, payload) = parse_frame(buf)?;
        Request::decode(kind, payload)
    }

    /// Decodes a request payload for `kind`.
    pub fn decode(kind_byte: u8, payload: &[u8]) -> Result<Request, WireError> {
        let mut c = Cur::new(payload);
        let req = match kind_byte {
            kind::SCORE => {
                let tenant = c.short_str()?;
                let seq = c.u64()?;
                let start_row = c.u64()?;
                let gap_before = c.u32()?;
                let n_rows = c.u32()? as usize;
                let channels = c.u32()? as usize;
                let cells = n_rows
                    .checked_mul(channels)
                    .filter(|&n| n * 4 == payload.len() - c.i)
                    .ok_or_else(|| {
                        WireError::Malformed("row grid does not match payload size".into())
                    })?;
                let _ = cells;
                let mut rows = Vec::with_capacity(n_rows);
                for _ in 0..n_rows {
                    let mut row = Vec::with_capacity(channels);
                    for _ in 0..channels {
                        row.push(c.f32()?);
                    }
                    rows.push(row);
                }
                Request::Score {
                    tenant,
                    seq,
                    start_row,
                    gap_before,
                    rows,
                }
            }
            kind::HEALTH => Request::Health,
            kind::OBS_SNAPSHOT => Request::ObsSnapshot,
            kind::RELOAD => Request::Reload {
                tenant: c.short_str()?,
            },
            kind::DRAIN => Request::Drain,
            kind::PING => Request::Ping,
            kind::ADOPT => Request::Adopt {
                tenant: c.short_str()?,
            },
            kind::SNAPSHOT => Request::Snapshot {
                tenant: c.short_str()?,
            },
            other => return Err(WireError::UnknownKind(other)),
        };
        c.finish()?;
        Ok(req)
    }
}

// ---------------------------------------------------------------------------
// Response codec
// ---------------------------------------------------------------------------

impl Response {
    /// The kind byte of this response.
    pub fn kind(&self) -> u8 {
        match self {
            Response::Verdicts { .. } => kind::VERDICTS,
            Response::Error { .. } => kind::ERROR,
            Response::Health { .. } => kind::HEALTH_REPORT,
            Response::ObsJson { .. } => kind::OBS_JSON,
            Response::Ok => kind::OK,
            Response::ReloadStatus { .. } => kind::RELOAD_STATUS,
        }
    }

    /// Encodes the payload (without the frame header).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Verdicts {
                generation,
                verdicts,
            } => {
                out.extend_from_slice(&generation.to_le_bytes());
                out.extend_from_slice(&(verdicts.len() as u32).to_le_bytes());
                for v in verdicts {
                    out.extend_from_slice(&v.index.to_le_bytes());
                    out.extend_from_slice(&v.score.to_le_bytes());
                    out.extend_from_slice(&v.votes.to_le_bytes());
                    out.push(u8::from(v.anomalous) | (u8::from(v.degraded) << 1));
                }
            }
            Response::Error { code, message } => {
                out.push(*code as u8);
                put_long_str(&mut out, message);
            }
            Response::Health { tenants } => {
                out.extend_from_slice(&(tenants.len() as u32).to_le_bytes());
                for t in tenants {
                    put_short_str(&mut out, &t.id);
                    out.push(t.state as u8);
                    out.extend_from_slice(&t.generation.to_le_bytes());
                    out.extend_from_slice(&t.rows_seen.to_le_bytes());
                    out.extend_from_slice(&t.rows_rejected.to_le_bytes());
                    out.extend_from_slice(&t.degraded_evals.to_le_bytes());
                    out.extend_from_slice(&t.rewarms.to_le_bytes());
                    out.extend_from_slice(&t.recoveries.to_le_bytes());
                    out.extend_from_slice(&t.queue_depth.to_le_bytes());
                    out.push(u8::from(t.drifted));
                    out.extend_from_slice(&t.drift_trips.to_le_bytes());
                    put_short_str(&mut out, &t.family);
                }
            }
            Response::ObsJson { json } => put_long_str(&mut out, json),
            Response::Ok => {}
            Response::ReloadStatus {
                generation,
                verdict,
                detail,
                family,
            } => {
                out.extend_from_slice(&generation.to_le_bytes());
                out.push(*verdict as u8);
                put_long_str(&mut out, detail);
                put_short_str(&mut out, family);
            }
        }
        out
    }

    /// Serializes the response as one complete frame.
    pub fn to_bytes(&self) -> Vec<u8> {
        frame_bytes(self.kind(), &self.encode_payload())
    }

    /// Parses a response from an exact frame buffer.
    pub fn from_bytes(buf: &[u8]) -> Result<Response, WireError> {
        let (kind, payload) = parse_frame(buf)?;
        Response::decode(kind, payload)
    }

    /// Decodes a response payload for `kind`.
    pub fn decode(kind_byte: u8, payload: &[u8]) -> Result<Response, WireError> {
        let mut c = Cur::new(payload);
        let resp = match kind_byte {
            kind::VERDICTS => {
                let generation = c.u64()?;
                let n = c.u32()? as usize;
                // 8 + 8 + 4 + 1 bytes per verdict: reject absurd counts
                // before allocating.
                if n.checked_mul(21) != Some(payload.len().saturating_sub(12)) {
                    return Err(WireError::Malformed(
                        "verdict count does not match payload size".into(),
                    ));
                }
                let mut verdicts = Vec::with_capacity(n);
                for _ in 0..n {
                    let index = c.u64()?;
                    let score = c.f64()?;
                    let votes = c.u32()?;
                    let flags = c.u8()?;
                    if flags & !0b11 != 0 {
                        return Err(WireError::Malformed(format!(
                            "unknown verdict flags {flags:#04x}"
                        )));
                    }
                    verdicts.push(WireVerdict {
                        index,
                        score,
                        votes,
                        anomalous: flags & 0b01 != 0,
                        degraded: flags & 0b10 != 0,
                    });
                }
                Response::Verdicts {
                    generation,
                    verdicts,
                }
            }
            kind::ERROR => {
                let code_byte = c.u8()?;
                let code = ErrorCode::from_u8(code_byte).ok_or_else(|| {
                    WireError::Malformed(format!("unknown error code {code_byte}"))
                })?;
                Response::Error {
                    code,
                    message: c.long_str()?,
                }
            }
            kind::HEALTH_REPORT => {
                let n = c.u32()? as usize;
                // Each entry is at least 64 bytes (empty id).
                if n.checked_mul(64).is_none_or(|min| min > payload.len()) {
                    return Err(WireError::Malformed(
                        "tenant count does not fit payload".into(),
                    ));
                }
                let mut tenants = Vec::with_capacity(n);
                for _ in 0..n {
                    let id = c.short_str()?;
                    let state_byte = c.u8()?;
                    let state = WireHealthState::from_u8(state_byte).ok_or_else(|| {
                        WireError::Malformed(format!("unknown health state {state_byte}"))
                    })?;
                    let generation = c.u64()?;
                    let rows_seen = c.u64()?;
                    let rows_rejected = c.u64()?;
                    let degraded_evals = c.u64()?;
                    let rewarms = c.u64()?;
                    let recoveries = c.u64()?;
                    let queue_depth = c.u32()?;
                    let drifted_byte = c.u8()?;
                    if drifted_byte > 1 {
                        return Err(WireError::Malformed(format!(
                            "bad drifted flag {drifted_byte}"
                        )));
                    }
                    tenants.push(TenantHealth {
                        id,
                        state,
                        generation,
                        rows_seen,
                        rows_rejected,
                        degraded_evals,
                        rewarms,
                        recoveries,
                        queue_depth,
                        drifted: drifted_byte == 1,
                        drift_trips: c.u64()?,
                        family: c.short_str()?,
                    });
                }
                Response::Health { tenants }
            }
            kind::OBS_JSON => Response::ObsJson {
                json: c.long_str()?,
            },
            kind::OK => Response::Ok,
            kind::RELOAD_STATUS => {
                let generation = c.u64()?;
                let verdict_byte = c.u8()?;
                let verdict = PromotionVerdict::from_u8(verdict_byte).ok_or_else(|| {
                    WireError::Malformed(format!(
                        "unknown promotion verdict {verdict_byte}"
                    ))
                })?;
                Response::ReloadStatus {
                    generation,
                    verdict,
                    detail: c.long_str()?,
                    family: c.short_str()?,
                }
            }
            other => return Err(WireError::UnknownKind(other)),
        };
        c.finish()?;
        Ok(resp)
    }
}

/// Reads one request frame from `r` (server side).
pub fn read_request<R: Read>(r: &mut R) -> Result<Option<Request>, WireError> {
    match read_frame(r)? {
        None => Ok(None),
        Some((kind, payload)) => Request::decode(kind, &payload).map(Some),
    }
}

/// Reads one response frame from `r` (client side).
pub fn read_response<R: Read>(r: &mut R) -> Result<Option<Response>, WireError> {
    match read_frame(r)? {
        None => Ok(None),
        Some((kind, payload)) => Response::decode(kind, &payload).map(Some),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `scan_frame` finds whole frames at every split point: for any
    /// prefix short of the full frame it reports "incomplete" (never an
    /// error, never a frame), and at the exact boundary it yields the
    /// same kind/payload as the strict parser.
    #[test]
    fn scan_frame_handles_every_split_point() {
        for req in sample_requests() {
            let bytes = req.to_bytes();
            for cut in 0..bytes.len() {
                assert_eq!(
                    scan_frame(&bytes[..cut]).expect("prefix never errors"),
                    None,
                    "cut={cut}"
                );
            }
            let (kind, total) = scan_frame(&bytes).expect("scan").expect("complete");
            assert_eq!(total, bytes.len());
            let (pkind, payload) = parse_frame(&bytes).expect("parse");
            assert_eq!(kind, pkind);
            assert_eq!(&bytes[HEADER_LEN..total], payload);
        }
    }

    /// `scan_frame` tolerates trailing bytes (the next pipelined frame)
    /// and reports the first frame's exact extent so the caller can
    /// consume and rescan.
    #[test]
    fn scan_frame_tolerates_pipelined_frames() {
        let a = Request::Ping.to_bytes();
        let b = Request::Health.to_bytes();
        let mut buf = a.clone();
        buf.extend_from_slice(&b);
        let (kind, total) = scan_frame(&buf).expect("scan").expect("first frame");
        assert_eq!(kind, kind::PING);
        assert_eq!(total, a.len());
        let (kind2, total2) = scan_frame(&buf[total..]).expect("scan").expect("second");
        assert_eq!(kind2, kind::HEALTH);
        assert_eq!(total2, b.len());
    }

    /// Hostile headers are rejected as soon as the 12 header bytes are
    /// present — bad magic, unknown version, oversized length — without
    /// waiting for (or allocating) the claimed payload.
    #[test]
    fn scan_frame_rejects_hostile_headers_early() {
        let mut bad_magic = Request::Ping.to_bytes();
        bad_magic[0] = b'X';
        assert!(matches!(
            scan_frame(&bad_magic[..HEADER_LEN]),
            Err(WireError::BadMagic(_))
        ));

        let mut bad_version = Request::Ping.to_bytes();
        bad_version[2] = 99;
        assert!(matches!(
            scan_frame(&bad_version[..HEADER_LEN]),
            Err(WireError::UnsupportedVersion(99))
        ));

        let mut huge = Vec::new();
        huge.extend_from_slice(&MAGIC);
        huge.push(WIRE_VERSION);
        huge.push(kind::SCORE);
        huge.extend_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        huge.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(scan_frame(&huge), Err(WireError::TooLarge(_))));

        // Ping has no payload; flip a CRC byte.
        let mut flipped = Request::Ping.to_bytes();
        flipped[HEADER_LEN - 1] ^= 0x40;
        assert!(matches!(
            scan_frame(&flipped),
            Err(WireError::CrcMismatch { .. })
        ));
    }

    /// `peek_tenant` must agree with the full decoder in both
    /// directions: same tenant on every well-formed request, and a
    /// rejection wherever `Request::decode` would reject — a frame the
    /// router forwards on the strength of a successful peek must never
    /// fail decode at the replica.
    #[test]
    fn peek_tenant_matches_full_decode() {
        for req in sample_requests() {
            let payload = req.encode_payload();
            let expected = match &req {
                Request::Score { tenant, .. }
                | Request::Reload { tenant }
                | Request::Adopt { tenant }
                | Request::Snapshot { tenant } => Some(tenant.as_str()),
                _ => None,
            };
            assert_eq!(
                peek_tenant(req.kind(), &payload).expect("well-formed"),
                expected
            );
        }
        // Truncations and trailing garbage reject exactly like decode.
        for req in sample_requests() {
            let payload = req.encode_payload();
            for cut in 0..payload.len() {
                let truncated = &payload[..cut];
                assert_eq!(
                    peek_tenant(req.kind(), truncated).is_err(),
                    Request::decode(req.kind(), truncated).is_err(),
                    "kind {} cut at {cut}",
                    req.kind()
                );
            }
            let mut padded = payload.clone();
            padded.push(0);
            assert!(peek_tenant(req.kind(), &padded).is_err());
            assert!(Request::decode(req.kind(), &padded).is_err());
        }
        assert!(matches!(
            peek_tenant(kind::VERDICTS, &[]),
            Err(WireError::UnknownKind(_))
        ));
    }

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Score {
                tenant: "smd-1".into(),
                seq: 42,
                start_row: 1024,
                gap_before: 3,
                rows: vec![vec![1.0, f32::NAN, -2.5], vec![0.0, 4.25, 1e-3]],
            },
            Request::Score {
                tenant: "".into(),
                seq: 0,
                start_row: u64::MAX,
                gap_before: 0,
                rows: vec![],
            },
            Request::Health,
            Request::ObsSnapshot,
            Request::Reload { tenant: "gcp-θ".into() },
            Request::Drain,
            Request::Ping,
            Request::Adopt {
                tenant: "smd-1".into(),
            },
            Request::Snapshot {
                tenant: "gcp-θ".into(),
            },
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Verdicts {
                generation: 7,
                verdicts: vec![
                    WireVerdict {
                        index: 41,
                        score: 0.75,
                        votes: 3,
                        anomalous: true,
                        degraded: false,
                    },
                    WireVerdict {
                        index: 42,
                        score: f64::INFINITY,
                        votes: 0,
                        anomalous: false,
                        degraded: true,
                    },
                ],
            },
            Response::Error {
                code: ErrorCode::Overloaded,
                message: "request queue full (64/64); retry with backoff".into(),
            },
            Response::Error {
                code: ErrorCode::Unavailable,
                message: "replica lost; failover in progress".into(),
            },
            Response::Error {
                code: ErrorCode::Interrupted,
                message: "replica connection lost; retry with the same seq".into(),
            },
            Response::Health {
                tenants: vec![TenantHealth {
                    id: "smd-1".into(),
                    state: WireHealthState::Healthy,
                    generation: 2,
                    rows_seen: 1000,
                    rows_rejected: 1,
                    degraded_evals: 3,
                    rewarms: 0,
                    recoveries: 3,
                    queue_depth: 5,
                    drifted: true,
                    drift_trips: 2,
                    family: "ImDiffusion".into(),
                }],
            },
            Response::ObsJson {
                json: "{\"schema\": \"imdiff-obs-v1\"}".into(),
            },
            Response::Ok,
            Response::ReloadStatus {
                generation: 3,
                verdict: PromotionVerdict::Promoted,
                detail: "candidate F1 0.91 vs incumbent 0.74 on 6 holdout windows".into(),
                family: "ImDiffusion".into(),
            },
            Response::ReloadStatus {
                generation: 2,
                verdict: PromotionVerdict::RolledBack,
                detail: "post-promotion anomaly rate 0.63 vs baseline 0.02".into(),
                family: "IForest".into(),
            },
        ]
    }

    #[test]
    fn requests_round_trip() {
        for req in sample_requests() {
            let bytes = req.to_bytes();
            let back = Request::from_bytes(&bytes).expect("decode");
            // NaN cells break PartialEq; compare via bit patterns.
            match (&req, &back) {
                (
                    Request::Score { rows: a, .. },
                    Request::Score {
                        tenant,
                        seq,
                        start_row,
                        gap_before,
                        rows: b,
                    },
                ) => {
                    if let Request::Score {
                        tenant: ta,
                        seq: sa,
                        start_row: ra,
                        gap_before: ga,
                        ..
                    } = &req
                    {
                        assert_eq!(ta, tenant);
                        assert_eq!(sa, seq);
                        assert_eq!(ra, start_row);
                        assert_eq!(ga, gap_before);
                    }
                    assert_eq!(a.len(), b.len());
                    for (ra, rb) in a.iter().zip(b) {
                        let ba: Vec<u32> = ra.iter().map(|v| v.to_bits()).collect();
                        let bb: Vec<u32> = rb.iter().map(|v| v.to_bits()).collect();
                        assert_eq!(ba, bb);
                    }
                }
                _ => assert_eq!(req, back),
            }
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in sample_responses() {
            let bytes = resp.to_bytes();
            assert_eq!(Response::from_bytes(&bytes).expect("decode"), resp);
        }
    }

    #[test]
    fn stream_read_matches_buffer_decode() {
        let mut wire = Vec::new();
        for req in sample_requests() {
            wire.extend_from_slice(&req.to_bytes());
        }
        let mut cursor = std::io::Cursor::new(wire);
        let mut seen = 0;
        while let Some(req) = read_request(&mut cursor).expect("read") {
            let _ = req;
            seen += 1;
        }
        assert_eq!(seen, sample_requests().len());
    }

    #[test]
    fn truncated_and_trailing_frames_rejected() {
        let bytes = Request::Ping.to_bytes();
        for cut in 0..bytes.len() {
            assert!(Request::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert_eq!(
            Request::from_bytes(&extended),
            Err(WireError::TrailingBytes(1))
        );
    }

    #[test]
    fn kind_byte_corruption_caught_by_crc() {
        // Ping and Health both carry empty payloads, so without the kind
        // byte under the CRC a one-byte flip would silently turn one into
        // the other.
        let mut bytes = Request::Ping.to_bytes();
        bytes[3] = kind::HEALTH;
        assert!(matches!(
            Request::from_bytes(&bytes),
            Err(WireError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn oversized_length_field_rejected_before_allocation() {
        let mut bytes = Request::Ping.to_bytes();
        bytes[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(Request::from_bytes(&bytes), Err(WireError::TooLarge(u32::MAX)));
    }

    #[test]
    fn old_version_frames_refused_not_misparsed() {
        // The version byte precedes the CRC check, so an old peer gets a
        // typed version error instead of a confusing checksum failure.
        for old in [1u8, 2, 3] {
            let mut bytes = Request::Ping.to_bytes();
            bytes[2] = old;
            assert_eq!(
                Request::from_bytes(&bytes),
                Err(WireError::UnsupportedVersion(old))
            );
        }
    }

    #[test]
    fn unknown_promotion_verdict_rejected() {
        let resp = Response::ReloadStatus {
            generation: 1,
            verdict: PromotionVerdict::NoAttempt,
            detail: String::new(),
            family: String::new(),
        };
        let mut payload = resp.encode_payload();
        payload[8] = 9; // verdict byte past the known range
        assert!(matches!(
            Response::decode(kind::RELOAD_STATUS, &payload),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn error_code_retryability() {
        for (code, want) in [
            (ErrorCode::Overloaded, true),
            (ErrorCode::Timeout, true),
            (ErrorCode::Unavailable, true),
            (ErrorCode::Interrupted, true),
            (ErrorCode::UnknownTenant, false),
            (ErrorCode::BadRequest, false),
            (ErrorCode::Draining, false),
            (ErrorCode::Internal, false),
        ] {
            assert_eq!(code.is_retryable(), want, "wrong retryability for {code:?}");
        }
        // Only Interrupted leaves the applied state ambiguous: every
        // other code is a refusal issued before ingestion. A wrong `true`
        // here would make clients burn their budget replaying refusals; a
        // wrong `false` would let a fresh-seq retry double-ingest.
        for code in [
            ErrorCode::Overloaded,
            ErrorCode::Timeout,
            ErrorCode::Unavailable,
            ErrorCode::UnknownTenant,
            ErrorCode::BadRequest,
            ErrorCode::Draining,
            ErrorCode::Internal,
        ] {
            assert!(!code.may_be_applied(), "{code:?} wrongly ambiguous");
        }
        assert!(ErrorCode::Interrupted.may_be_applied());
    }

    #[test]
    fn unknown_kind_rejected() {
        let frame = frame_bytes(99, b"");
        assert_eq!(Request::from_bytes(&frame), Err(WireError::UnknownKind(99)));
        let frame = frame_bytes(200, b"");
        assert_eq!(Response::from_bytes(&frame), Err(WireError::UnknownKind(200)));
    }
}
