//! The multi-tenant scoring server.
//!
//! # Architecture
//!
//! ```text
//!             event loop (one thread)       shard workers (own the monitors)
//!  client ──► ┌─────────────────────┐      ┌───────────────────────────────┐
//!  client ──► │ poll: accept, read, │ ──►  │ shard 0: tenants {a, c, ...}  │
//!  client ──► │ frame, dispatch,    │      │ shard 1: tenants {b, d, ...}  │
//!      ...    │ flush slot-ordered  │ ◄──  └───────────────────────────────┘
//!  client ──► │ replies, backpress. │  completions  ▲ swap commands
//!             └─────────────────────┘        checkpoint watcher
//! ```
//!
//! The data plane is a single readiness-multiplexed event loop (see
//! [`crate::mux`]): non-blocking accept/read/write driven by `poll(2)`,
//! per-connection frame state machines with zero-copy payload decode,
//! and bounded write buffering with watermark backpressure. Thread count
//! is `1 (loop) + shards + watcher` regardless of connection count —
//! the old design burned two OS threads per connection.
//!
//! [`imdiffusion::StreamingMonitor`] holds `Rc`-based tensors and is not
//! `Send`, so every monitor is **created and mutated on exactly one shard
//! thread**. Everything that crosses threads is plain data: score jobs
//! (rows + a single-use [`ReplyTx`]), [`AnySpec`] envelope snapshots
//! for hot reloads, and atomically-updated health/generation counters.
//! Shards answer by posting `(connection, slot, response)` completions
//! that wake the loop; the loop flushes each connection's replies in
//! strict request order however completions interleave.
//!
//! # Batching and fidelity
//!
//! A shard coalesces up to `max_batch` queued requests **for one tenant**
//! into a single [`StreamingMonitor::push_batch`] call, waiting at most
//! `max_wait` for the batch to fill. `push_batch` is bit-identical to the
//! equivalent sequence of sequential pushes (enforced by the core test
//! suite), so batching changes throughput, never verdicts.
//!
//! # Admission control
//!
//! * queue full → immediate [`ErrorCode::Overloaded`]; rows not ingested.
//! * queued longer than `deadline` → [`ErrorCode::Timeout`]; rows not
//!   ingested. In both cases a pipelining client that moves on without
//!   resending must declare the dropped rows via `gap_before`.
//! * queued longer than `shed_after` (but within the deadline) → the
//!   request is *load-shed*: rows are ingested and verdicts returned, but
//!   any evaluation runs on the z-score fallback (flagged `degraded`)
//!   instead of paying for ensemble inference.
//!
//! # Hot reload
//!
//! The watcher polls each tenant's checkpoint file; when its (mtime, len)
//! stamp changes, the new weights are loaded and validated *off* the shard
//! thread, converted to an [`AnySpec`], and handed to the owning shard,
//! which swaps them in **between batches** and bumps the tenant's
//! generation. In-flight batches finish on the old weights; every response
//! reports the single generation that produced all of its verdicts. A
//! corrupt or mismatched checkpoint is counted and skipped — serving
//! continues on the previous generation.
//!
//! # Detector families and escalation
//!
//! Shards hold [`AnyDetector`]s, not ImDiffusion specifically: a tenant's
//! checkpoint is an IMDE registry envelope (legacy raw IMDF images load
//! as ImDiffusion), its [`TenantSpec::family`] names the expected family,
//! and health/reload answers report the family actually serving. A tenant
//! may also carry an [`EscalationSpec`] — an ordered cost ladder of rung
//! checkpoints (canonically z-score → IForest → ImDiffusion). When the
//! canonical checkpoint is missing at activation, the ladder is evaluated
//! on its labeled holdout and the cheapest rung within `f1_tolerance` of
//! the best is pinned (and persisted as the canonical envelope, so
//! failover restores the same pin). After that the router is
//! edge-triggered on the monitor's debounced drift latch: a trip swaps in
//! the ladder apex (a regime change earns the expensive model), a clear
//! re-runs the holdout evaluation so the tenant can settle back onto a
//! cheaper rung. Every repin persists the envelope and bumps the
//! generation, exactly like a hot reload.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

use imdiff_data::{DetectorError, Mts};
use imdiff_nn::obs;
use imdiff_registry::{evaluate_ladder, AnyDetector, AnySpec, DetectorKind};
use imdiffusion::{
    BatchItem, EnsembleOutput, HealthState, ImDiffusionConfig, MonitorHealth,
    StreamingMonitor, WindowScorer,
};

use crate::mux::{self, sys, Completions, Conn, FillOutcome, ReplyTx};
use crate::wire::{
    ErrorCode, PromotionVerdict, Request, Response, TenantHealth, WireHealthState,
    WireVerdict,
};

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// One stream to serve: where its fitted checkpoint lives and how to
/// rebuild the detector around it (envelopes and legacy IMDF images
/// store weights only; the architecture comes from `cfg`/`seed`, as for
/// [`AnyDetector::load`]).
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Stream id used on the wire.
    pub id: String,
    /// Path of the detector checkpoint — an IMDE registry envelope or a
    /// legacy raw IMDF image (also the hot-reload watch target).
    pub checkpoint: PathBuf,
    /// Detector configuration matching the checkpoint.
    pub cfg: ImDiffusionConfig,
    /// Detector seed matching the checkpoint.
    pub seed: u64,
    /// Channel count of the stream.
    pub channels: usize,
    /// Evaluation hop of the monitor (rows between evaluations).
    pub hop: usize,
    /// Validation gate for hot reloads: a candidate checkpoint must beat
    /// (or tie) the incumbent on this held-out replay slice before it is
    /// handed to the shard. `None` promotes every loadable candidate
    /// unconditionally (the pre-gate behavior).
    pub holdout: Option<HoldoutSpec>,
    /// Drift policy `(threshold, debounce)` armed on the monitor at load
    /// time. Arms only when the checkpoint carries a training-time drift
    /// reference; legacy weight files (and `None`) serve unarmed with
    /// bit-identical behavior.
    pub drift_policy: Option<(f64, u32)>,
    /// Detector family this tenant is configured to serve. The canonical
    /// checkpoint must carry this family — or, with an escalation ladder,
    /// any rung family — or loads and reloads are refused as corrupt.
    pub family: DetectorKind,
    /// Cost-aware escalation ladder; `None` pins the tenant to `family`
    /// forever (the pre-registry behavior).
    pub escalation: Option<EscalationSpec>,
}

impl TenantSpec {
    /// May a checkpoint of `kind` serve this tenant?
    fn allows_family(&self, kind: DetectorKind) -> bool {
        kind == self.family
            || self
                .escalation
                .as_ref()
                .is_some_and(|e| e.rungs.iter().any(|r| r.kind == kind))
    }
}

/// A cost-aware escalation ladder: ordered rungs (cheapest first,
/// canonically z-score → IForest → ImDiffusion) plus the labeled holdout
/// slice the evaluator replays to pick a pin. Rung kinds must be
/// distinct and every rung checkpoint must share one serving window —
/// repins are in-place detector swaps on a live monitor.
///
/// The decision rule lives in [`imdiff_registry::choose_rung`]: the
/// first rung whose best point-F1 on the holdout is within
/// `f1_tolerance` of the ladder's best wins. Measured cost is recorded
/// as evidence but never decides, so a mirror replaying the same ladder
/// reproduces every pin bit-exactly.
#[derive(Debug, Clone)]
pub struct EscalationSpec {
    /// The ladder, cheapest first. The last rung is the apex a drift trip
    /// escalates to.
    pub rungs: Vec<RungSpec>,
    /// How much holdout F1 a cheaper rung may give up and still win.
    pub f1_tolerance: f64,
    /// Labeled holdout rows replayed through every rung, each
    /// `channels` wide.
    pub holdout_rows: Vec<Vec<f32>>,
    /// Ground-truth anomaly flags aligned with `holdout_rows`.
    pub holdout_labels: Vec<bool>,
}

/// One rung of an escalation ladder.
#[derive(Debug, Clone)]
pub struct RungSpec {
    /// The rung's family (checked against its checkpoint's envelope tag).
    pub kind: DetectorKind,
    /// Path of the rung's fitted IMDE envelope.
    pub checkpoint: PathBuf,
}

/// A held-out replay slice for validation-gated promotion.
///
/// The gate cuts `rows` into consecutive non-overlapping windows of the
/// tenant's configured window length (a trailing partial window is
/// ignored), scores each with both the candidate and the incumbent via
/// the read-only batched inference path, and promotes only when the
/// candidate is at least as good:
///
/// * with `labels`, point F1 decides and **ties promote** — fresh weights
///   also re-baseline the drift reference, so an equally-accurate
///   candidate is strictly preferable;
/// * without labels there is no ground truth to rank by, so the gate is a
///   guard-rail instead: the candidate passes while its mean absolute
///   score deviation from the incumbent stays within `score_tolerance`
///   (a grossly divergent candidate is rejected).
#[derive(Debug, Clone)]
pub struct HoldoutSpec {
    /// Replay rows in stream order, each `channels` wide.
    pub rows: Vec<Vec<f32>>,
    /// Ground-truth point-anomaly labels aligned with `rows`.
    pub labels: Option<Vec<bool>>,
    /// Label-free bound on the candidate/incumbent mean absolute score
    /// deviation (ignored when `labels` is present).
    pub score_tolerance: f64,
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`"127.0.0.1:0"` picks a free port).
    pub addr: String,
    /// Shard worker threads; tenants are partitioned round-robin.
    pub shards: usize,
    /// Most queued requests coalesced into one `push_batch` call.
    pub max_batch: usize,
    /// Longest a shard waits for a batch to fill before flushing.
    pub max_wait: Duration,
    /// Global queued-request cap; beyond it requests are refused with
    /// [`ErrorCode::Overloaded`].
    pub max_queue: usize,
    /// Queue-latency budget; requests that waited longer are load-shed to
    /// the degraded scoring path.
    pub shed_after: Duration,
    /// Queue deadline; requests that waited longer are refused with
    /// [`ErrorCode::Timeout`] without being ingested.
    pub deadline: Duration,
    /// Checkpoint poll interval for hot reload; `None` disables the
    /// watcher (wire `Reload` requests still work).
    pub reload_poll: Option<Duration>,
    /// Closes a connection whose peer has been silent this long (no
    /// complete frame, no bytes in flight). `None` keeps silent
    /// connections forever — fine for trusted loopback tests, wrong for
    /// anything reachable by a stalled or half-open peer.
    pub idle_timeout: Option<Duration>,
    /// Per-frame progress deadline: a peer that *starts* a frame must
    /// complete it this fast or the connection is closed. Catches the
    /// slowloris case `idle_timeout` cannot see — a peer dripping one
    /// byte at a time is never "silent" but still holds a frame open
    /// indefinitely. `None` disables the check.
    pub frame_deadline: Option<Duration>,
    /// Rows between automatic IMSM sidecar snapshots per tenant; `None`
    /// disables cadenced snapshots (explicit `Snapshot` requests still
    /// work). Snapshots bound how much stream progress a failover can
    /// lose.
    pub snapshot_every: Option<u64>,
    /// Per-tenant reply-cache capacity for sequence-id deduplication: a
    /// replayed request whose reply was already evicted is answered with
    /// a typed [`ErrorCode::Interrupted`] (resync, do not re-submit
    /// fresh) instead of being re-ingested.
    pub replay_cache: usize,
    /// Post-promotion regression sentinel: verdicts observed after a hot
    /// swap before the promotion is confirmed or rolled back. The
    /// decision fires on exactly this many post-swap verdicts regardless
    /// of batch boundaries, so it is deterministic at any thread count.
    /// `0` disables the sentinel (swaps are final).
    pub regression_watch: usize,
    /// Rollback triggers when the post-swap anomaly rate exceeds
    /// `regression_factor ×` the pre-swap baseline rate.
    pub regression_factor: f64,
    /// Anomaly-rate floor for the sentinel: the post-swap rate must also
    /// exceed this absolute rate to trigger, so a near-zero baseline does
    /// not turn a single anomalous verdict into a rollback.
    pub regression_min_rate: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            shards: 2,
            max_batch: 8,
            max_wait: Duration::from_millis(4),
            max_queue: 64,
            shed_after: Duration::from_millis(250),
            deadline: Duration::from_secs(2),
            reload_poll: Some(Duration::from_millis(200)),
            idle_timeout: None,
            frame_deadline: Some(Duration::from_secs(30)),
            snapshot_every: None,
            replay_cache: 32,
            regression_watch: 64,
            regression_factor: 4.0,
            regression_min_rate: 0.25,
        }
    }
}

/// Server lifecycle failures.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure.
    Io(String),
    /// A tenant's checkpoint could not be loaded at startup.
    Tenant {
        /// Which tenant failed.
        id: String,
        /// Why.
        source: DetectorError,
    },
    /// The tenant roster was invalid (duplicate ids, empty).
    Config(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(msg) => write!(f, "server I/O error: {msg}"),
            ServeError::Tenant { id, source } => {
                write!(f, "tenant {id:?} failed to load: {source}")
            }
            ServeError::Config(msg) => write!(f, "invalid server config: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

// ---------------------------------------------------------------------------
// Shared state
// ---------------------------------------------------------------------------

/// (mtime, len) stamp of a checkpoint file, used to detect rewrites.
type FileStamp = (Option<SystemTime>, u64);

fn stamp(path: &std::path::Path) -> Option<FileStamp> {
    let meta = std::fs::metadata(path).ok()?;
    Some((meta.modified().ok(), meta.len()))
}

/// The monitor type shards own: a streaming monitor over *any* registry
/// family.
type ServeMonitor = StreamingMonitor<AnyDetector>;

/// Cross-thread view of one tenant. The monitor itself lives on the
/// owning shard thread; this is everything other threads may read.
struct TenantShared {
    spec: TenantSpec,
    shard: usize,
    /// Whether this replica currently serves the tenant. Every replica
    /// registers the full roster, but only its placed subset is active;
    /// failover activates more via `Adopt`. Never cleared — placement
    /// only grows on a replica.
    active: AtomicBool,
    /// Bumps on every successful hot swap. Generation 1 is the initial
    /// checkpoint.
    generation: AtomicU64,
    /// Score requests currently queued for this tenant.
    queue_depth: AtomicU32,
    /// Health snapshot refreshed by the shard after every batch.
    health: Mutex<MonitorHealth>,
    /// Last checkpoint stamp examined by reload (watcher or manual), so
    /// one rewrite triggers exactly one reload attempt.
    reload_stamp: Mutex<Option<FileStamp>>,
    /// Latest promotion/rollback decision, answered on `Reload` requests.
    promo: Mutex<(PromotionVerdict, String)>,
    /// Spec of the detector currently serving (what the validation gate
    /// compares candidates against). Captured at load/adoption and
    /// refreshed on every swap.
    incumbent: Mutex<Option<Box<AnySpec>>>,
    /// Pre-promotion incumbent archived for the regression sentinel;
    /// taken (one-shot) on rollback or once the watch confirms the
    /// promotion.
    rollback: Mutex<Option<Box<AnySpec>>>,
    /// Family actually serving right now. Starts as the configured
    /// [`TenantSpec::family`], then tracks every load, swap and
    /// escalation repin; reported on health and reload answers.
    family: Mutex<DetectorKind>,
}

/// The family currently serving `t`, as a wire string.
fn family_name(t: &TenantShared) -> String {
    t.family
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .name()
        .to_string()
}

/// A queued scoring request.
struct ScoreJob {
    tenant: usize,
    /// Idempotency sequence id (0 = unsequenced, no dedup).
    seq: u64,
    /// Stream-position guard (`u64::MAX` = unchecked).
    start_row: u64,
    item: BatchItem,
    enqueued: Instant,
    reply: ReplyTx,
}

/// Out-of-band command applied by a shard between batches.
enum ShardCmd {
    /// Swap in reloaded weights for a tenant this shard owns. Boxed:
    /// specs embed full weight tensors and would dominate the enum size.
    /// `reply` (wire `Reload` requests only) is answered **after** the
    /// swap lands, so the reported generation is the one now serving.
    Swap {
        tenant: usize,
        spec: Box<AnySpec>,
        reply: Option<ReplyTx>,
    },
    /// Activate a tenant (failover adoption): restore from the IMSM
    /// sidecar when present, fresh-load otherwise. Monitors hold
    /// non-`Send` tensors, so creation must happen on the shard thread.
    Adopt {
        tenant: usize,
        reply: ReplyTx,
    },
    /// Write the tenant's IMSM sidecar now (deterministic recovery
    /// point).
    Snapshot {
        tenant: usize,
        reply: ReplyTx,
    },
}

/// Ids tracked individually above [`SeqState::floor`] before the floor is
/// forced up. Bounds memory; must comfortably exceed any client's
/// pipelining depth so a *refused* id (a gap among the applied ones) is
/// still readmittable when its prompt retry arrives.
const SEQ_TRACK_WINDOW: usize = 1024;

/// Per-tenant sequence-id bookkeeping for idempotent replay. Lives on the
/// owning shard — the serialization point for the tenant's stream — so
/// dedup decisions and ingestion are atomic with respect to each other.
/// State is per replica session: after failover the adopter starts fresh
/// and the authoritative stream position is the health report's
/// `rows_seen`.
///
/// Applied ids are tracked **exactly** (contiguous floor + out-of-order
/// set), not as a running max: a refusal (deadline expiry, position
/// guard) deliberately does not spend its id, and with a max a refused
/// id below a later-applied one would be misread as "already applied"
/// on retry instead of being admitted as new work.
#[derive(Default)]
struct SeqState {
    /// Every id `<= floor` is treated as spent. Advanced by contiguous
    /// application, or forced up when `applied` outgrows
    /// [`SEQ_TRACK_WINDOW`] (an abandoned gap that old stops being
    /// readmittable — it answers as a stale replay instead, which is
    /// safe: stale replays never ingest).
    floor: u64,
    /// Applied ids above `floor` (gaps below a refused id keep ids
    /// non-contiguous).
    applied: std::collections::BTreeSet<u64>,
    /// Recent (seq, reply) pairs for answering replays bit-identically.
    cache: VecDeque<(u64, Response)>,
}

impl SeqState {
    /// Were `seq`'s rows ingested in this replica session?
    fn is_applied(&self, seq: u64) -> bool {
        seq <= self.floor || self.applied.contains(&seq)
    }

    /// Records an ingested id, advancing the contiguous floor and
    /// bounding the out-of-order set.
    fn note_applied(&mut self, seq: u64) {
        self.applied.insert(seq);
        while self.applied.remove(&(self.floor + 1)) {
            self.floor += 1;
        }
        while self.applied.len() > SEQ_TRACK_WINDOW {
            let oldest = *self.applied.iter().next().expect("non-empty");
            self.applied.remove(&oldest);
            self.floor = self.floor.max(oldest);
        }
    }
}

/// Verdicts remembered for the regression baseline (pre-swap anomaly
/// rate). Bounds memory; large enough that one noisy batch cannot skew
/// the rate.
const REGRESSION_BASELINE_WINDOW: usize = 256;

/// Shard-local post-promotion regression sentinel for one tenant. Fed
/// the tenant's verdict stream in order, so its decisions depend only on
/// that stream and the config — deterministic at any thread count or
/// batch coalescing.
#[derive(Default)]
struct PromoState {
    /// Rolling recent verdicts (`true` = anomalous) while no watch is
    /// active; their anomaly rate is the baseline a promotion must not
    /// regress from.
    recent: VecDeque<bool>,
    /// Active post-swap watch, armed by a successful promotion.
    watch: Option<RegressionWatch>,
}

struct RegressionWatch {
    /// Pre-swap anomaly rate.
    baseline: f64,
    /// Post-swap verdicts observed so far.
    seen: usize,
    /// How many of them were anomalous.
    anomalous: usize,
}

impl PromoState {
    fn baseline_rate(&self) -> f64 {
        if self.recent.is_empty() {
            0.0
        } else {
            self.recent.iter().filter(|&&b| b).count() as f64 / self.recent.len() as f64
        }
    }
}

/// Shard-local escalation-router state for one tenant: the drift latch
/// as of the previous batch, for edge detection. (Which rung is pinned
/// is not duplicated here — the monitor's detector family is the truth.)
#[derive(Default)]
struct EscState {
    was_drifted: bool,
}

#[derive(Default)]
struct ShardQueue {
    jobs: VecDeque<ScoreJob>,
    cmds: Vec<ShardCmd>,
}

#[derive(Default)]
struct Shard {
    q: Mutex<ShardQueue>,
    cv: Condvar,
}

struct ServerInner {
    cfg: ServeConfig,
    tenants: Vec<Arc<TenantShared>>,
    shards: Vec<Shard>,
    /// Global queued-job count for admission control.
    queued: AtomicUsize,
    draining: AtomicBool,
    /// Abrupt-death flag ([`Server::kill`]): shards exit *dropping*
    /// queued work instead of flushing it — a crash, not a drain.
    killed: AtomicBool,
    /// Partition flag ([`Server::isolate`]): the process keeps running
    /// but every connection is severed and new ones are refused.
    isolated: AtomicBool,
    /// Clones of accepted connection streams, so kill/isolate can sever
    /// them from outside the event loop.
    conn_streams: Mutex<Vec<TcpStream>>,
    /// Shard → event loop completion queue (also the loop's waker for
    /// drain/kill signalling).
    completions: Arc<Completions>,
}

impl ServerInner {
    fn tenant_index(&self, id: &str) -> Option<usize> {
        self.tenants.iter().position(|t| t.spec.id == id)
    }

    fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        for shard in &self.shards {
            let _g = shard.q.lock().unwrap_or_else(|e| e.into_inner());
            shard.cv.notify_all();
        }
        self.completions.wake();
    }

    fn health_report(&self) -> Response {
        let mut tenants: Vec<TenantHealth> = self
            .tenants
            .iter()
            .filter(|t| t.active.load(Ordering::SeqCst))
            .map(|t| {
                let h = *t.health.lock().unwrap_or_else(|e| e.into_inner());
                TenantHealth {
                    id: t.spec.id.clone(),
                    state: match h.state {
                        HealthState::Healthy => WireHealthState::Healthy,
                        HealthState::Degraded => WireHealthState::Degraded,
                        HealthState::Warming => WireHealthState::Warming,
                    },
                    generation: t.generation.load(Ordering::SeqCst),
                    rows_seen: h.rows_seen,
                    rows_rejected: h.rows_rejected,
                    degraded_evals: h.degraded_evals,
                    rewarms: h.rewarms,
                    recoveries: h.recoveries,
                    queue_depth: t.queue_depth.load(Ordering::SeqCst),
                    drifted: h.drifted,
                    drift_trips: h.drift_trips,
                    family: family_name(t),
                }
            })
            .collect();
        tenants.sort_by(|a, b| a.id.cmp(&b.id));
        Response::Health { tenants }
    }

    /// Loads `tenant`'s checkpoint, runs the validation gate when the
    /// tenant has one, and hands a passing candidate to its shard.
    /// Validation (CRC, shapes, holdout scoring) happens here, off the
    /// shard thread: a bad or losing candidate never interrupts serving.
    ///
    /// When `reply` is present (wire `Reload` requests) every outcome is
    /// answered through it — an unplaced tenant or a rejected candidate
    /// inline, a promoted one by the shard *after* the swap lands.
    fn reload_tenant(
        &self,
        tenant: usize,
        new_stamp: Option<FileStamp>,
        reply: Option<ReplyTx>,
    ) {
        let t = &self.tenants[tenant];
        if !t.active.load(Ordering::SeqCst) {
            if let Some(tx) = reply {
                tx.send(Response::Error {
                    code: ErrorCode::Unavailable,
                    message: format!(
                        "tenant {} is not placed on this replica",
                        t.spec.id
                    ),
                });
            }
            return;
        }
        {
            let mut guard = t.reload_stamp.lock().unwrap_or_else(|e| e.into_inner());
            *guard = new_stamp.or_else(|| stamp(&t.spec.checkpoint));
        }
        let reject = |reply: Option<ReplyTx>, verdict: PromotionVerdict, msg: String| {
            *t.promo.lock().unwrap_or_else(|e| e.into_inner()) = (verdict, msg.clone());
            if let Some(tx) = reply {
                tx.send(Response::ReloadStatus {
                    generation: t.generation.load(Ordering::SeqCst),
                    verdict,
                    detail: msg,
                    family: family_name(t),
                });
            }
        };
        let spec = match AnyDetector::load(
            &t.spec.cfg,
            t.spec.seed,
            t.spec.channels,
            &t.spec.checkpoint,
        )
        .map_err(|e| format!("cannot reload {}: {e}", t.spec.id))
        .and_then(|det| {
            // A rewrite may legitimately change the family (an escalation
            // repin, a mirrored pin from another replica) — but only to a
            // family this tenant is configured for.
            if !t.spec.allows_family(det.kind()) {
                return Err(format!(
                    "checkpoint family {} is not allowed for tenant {} (expected {} \
                     or an escalation rung)",
                    det.kind(),
                    t.spec.id,
                    t.spec.family
                ));
            }
            det.to_spec()
                .map_err(|e| format!("reloaded detector for {}: {e}", t.spec.id))
        }) {
            Ok(spec) => spec,
            Err(msg) => {
                // A corrupt rewrite (CRC mismatch, truncation, geometry
                // drift) is refused here and never reaches the shard —
                // the incumbent keeps serving without a gap.
                obs::counter("serve.reload_errors", 1);
                obs::counter("serve.promotion.rejected_corrupt", 1);
                reject(reply, PromotionVerdict::RejectedCorrupt, msg);
                return;
            }
        };
        if let Some(holdout) = &t.spec.holdout {
            let incumbent = t.incumbent.lock().unwrap_or_else(|e| e.into_inner()).clone();
            if let Some(inc) = incumbent {
                obs::counter("serve.promotion.evaluated", 1);
                if let Err(msg) = gate_candidate(&spec, &inc, holdout, &t.spec) {
                    obs::counter("serve.promotion.rejected_gate", 1);
                    reject(reply, PromotionVerdict::RejectedGate, msg);
                    return;
                }
            }
        }
        let shard = &self.shards[t.shard];
        {
            let mut q = shard.q.lock().unwrap_or_else(|e| e.into_inner());
            // One pending swap per tenant is enough; newest wins. A
            // superseded reload's requester still gets an answer.
            let mut superseded: Vec<ReplyTx> = Vec::new();
            q.cmds.retain_mut(|cmd| match cmd {
                ShardCmd::Swap {
                    tenant: i, reply, ..
                } if *i == tenant => {
                    superseded.extend(reply.take());
                    false
                }
                _ => true,
            });
            for tx in superseded {
                let verdict = t.promo.lock().unwrap_or_else(|e| e.into_inner()).0;
                tx.send(Response::ReloadStatus {
                    generation: t.generation.load(Ordering::SeqCst),
                    verdict,
                    detail: "superseded by a newer reload of the same tenant".into(),
                    family: family_name(t),
                });
            }
            q.cmds.push(ShardCmd::Swap {
                tenant,
                spec: Box::new(spec),
                reply,
            });
        }
        shard.cv.notify_all();
    }
}

/// The validation gate: scores the tenant's held-out replay slice with
/// both the candidate and the incumbent (read-only batched inference —
/// serving is never paused) and decides the promotion. `Ok(detail)`
/// promotes, `Err(detail)` keeps the incumbent. Fail-closed: a holdout
/// too short for one window, mis-shaped rows, or a scoring failure all
/// reject — loudly, via the reload verdict — rather than promoting an
/// unvalidated candidate.
fn gate_candidate(
    candidate: &AnySpec,
    incumbent: &AnySpec,
    holdout: &HoldoutSpec,
    spec: &TenantSpec,
) -> Result<String, String> {
    let _span = obs::span("serve.promotion.gate");
    let cand = candidate
        .build()
        .map_err(|e| format!("candidate failed to rebuild: {e}"))?;
    let inc = incumbent
        .build()
        .map_err(|e| format!("incumbent failed to rebuild: {e}"))?;
    // Holdout windows must fit both scorers: families may serve windows
    // wider than the configured one, so the *built* detectors decide.
    let (w, k) = (cand.window(), spec.channels);
    if inc.window() != w {
        return Err(format!(
            "candidate serving window {w} != incumbent window {}; cannot compare \
             on one holdout slicing",
            inc.window()
        ));
    }
    if holdout.rows.iter().any(|r| r.len() != k) {
        return Err(format!("holdout rows must all be {k} channels wide"));
    }
    let n_win = holdout.rows.len() / w;
    if n_win == 0 {
        return Err(format!(
            "holdout has {} rows, shorter than one {w}-row window; refusing to \
             promote unvalidated",
            holdout.rows.len()
        ));
    }
    let windows: Vec<Mts> = (0..n_win)
        .map(|i| {
            let mut data = Vec::with_capacity(w * k);
            for row in &holdout.rows[i * w..(i + 1) * w] {
                data.extend_from_slice(row);
            }
            Mts::new(data, w, k)
        })
        .collect();
    let refs: Vec<(&Mts, Option<&[bool]>)> = windows.iter().map(|m| (m, None)).collect();
    let cand_out = cand
        .score_windows(&refs)
        .map_err(|e| format!("candidate failed holdout scoring: {e}"))?;
    let inc_out = inc
        .score_windows(&refs)
        .map_err(|e| format!("incumbent failed holdout scoring: {e}"))?;
    match &holdout.labels {
        Some(labels) => {
            if labels.len() < n_win * w {
                return Err(format!(
                    "holdout labels cover {} of {} scored rows",
                    labels.len(),
                    n_win * w
                ));
            }
            let truth = &labels[..n_win * w];
            let cand_f1 = point_f1(&verdict_flags(&cand_out), truth);
            let inc_f1 = point_f1(&verdict_flags(&inc_out), truth);
            // Ties promote: equal accuracy plus a fresh drift baseline
            // beats equal accuracy alone.
            if cand_f1 + 1e-12 >= inc_f1 {
                Ok(format!(
                    "candidate F1 {cand_f1:.4} vs incumbent {inc_f1:.4} over {n_win} \
                     holdout windows"
                ))
            } else {
                Err(format!(
                    "candidate F1 {cand_f1:.4} lost to incumbent {inc_f1:.4} over \
                     {n_win} holdout windows"
                ))
            }
        }
        None => {
            let mut dev = 0.0f64;
            let mut n = 0usize;
            for (c, i) in cand_out.iter().zip(&inc_out) {
                for (a, b) in c.scores.iter().zip(&i.scores) {
                    dev += (a - b).abs();
                    n += 1;
                }
            }
            let mean = if n == 0 { 0.0 } else { dev / n as f64 };
            if mean.is_finite() && mean <= holdout.score_tolerance {
                Ok(format!(
                    "candidate score deviation {mean:.4} within tolerance {:.4} over \
                     {n_win} holdout windows",
                    holdout.score_tolerance
                ))
            } else {
                Err(format!(
                    "candidate score deviation {mean:.4} exceeds tolerance {:.4} over \
                     {n_win} holdout windows",
                    holdout.score_tolerance
                ))
            }
        }
    }
}

/// Concatenated per-point voted labels of a holdout scoring pass.
fn verdict_flags(outs: &[EnsembleOutput]) -> Vec<bool> {
    outs.iter().flat_map(|o| o.labels.iter().copied()).collect()
}

/// Point F1 with the convention that perfect agreement on "no anomalies
/// anywhere" scores 1.0 (both models may legitimately flag nothing).
fn point_f1(pred: &[bool], truth: &[bool]) -> f64 {
    let (mut tp, mut fp, mut fn_) = (0u64, 0u64, 0u64);
    for (&p, &t) in pred.iter().zip(truth) {
        match (p, t) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => {}
        }
    }
    let denom = 2 * tp + fp + fn_;
    if denom == 0 {
        1.0
    } else {
        2.0 * tp as f64 / denom as f64
    }
}

// ---------------------------------------------------------------------------
// Shard worker
// ---------------------------------------------------------------------------

/// Builds every rung of an escalation ladder from its envelope
/// checkpoint, verifying the configured family and that all rungs share
/// one serving window (repins are in-place swaps on a live monitor).
fn build_rungs(
    esc: &EscalationSpec,
    spec: &TenantSpec,
) -> Result<Vec<AnyDetector>, DetectorError> {
    if esc.rungs.is_empty() {
        return Err(DetectorError::InvalidTrainingData(format!(
            "tenant {} has an empty escalation ladder",
            spec.id
        )));
    }
    let mut dets = Vec::with_capacity(esc.rungs.len());
    for rung in &esc.rungs {
        let det = AnyDetector::load(&spec.cfg, spec.seed, spec.channels, &rung.checkpoint)?;
        if det.kind() != rung.kind {
            return Err(DetectorError::CorruptCheckpoint(format!(
                "rung checkpoint {} carries family {}, ladder declares {}",
                rung.checkpoint.display(),
                det.kind(),
                rung.kind
            )));
        }
        if dets
            .iter()
            .any(|d: &AnyDetector| d.kind() == det.kind() || d.window() != det.window())
        {
            return Err(DetectorError::InvalidTrainingData(format!(
                "escalation rungs for {} must have distinct families and one shared \
                 serving window",
                spec.id
            )));
        }
        dets.push(det);
    }
    Ok(dets)
}

/// Packs escalation holdout rows into a series.
fn holdout_mts(rows: &[Vec<f32>], channels: usize) -> Result<Mts, DetectorError> {
    if rows.is_empty() || rows.iter().any(|r| r.len() != channels) {
        return Err(DetectorError::InvalidTrainingData(format!(
            "escalation holdout must be non-empty rows of {channels} channels"
        )));
    }
    let mut flat = Vec::with_capacity(rows.len() * channels);
    for row in rows {
        flat.extend_from_slice(row);
    }
    Ok(Mts::new(flat, rows.len(), channels))
}

/// Evaluates the full ladder on its labeled holdout and returns the
/// chosen rung's detector. Deterministic: ladder order + F1 only.
fn evaluate_and_choose(
    esc: &EscalationSpec,
    spec: &TenantSpec,
) -> Result<AnyDetector, DetectorError> {
    let _span = obs::span("serve.escalation.evaluate");
    let rungs = build_rungs(esc, spec)?;
    let holdout = holdout_mts(&esc.holdout_rows, spec.channels)?;
    let refs: Vec<&AnyDetector> = rungs.iter().collect();
    let decision = evaluate_ladder(&refs, &holdout, &esc.holdout_labels, esc.f1_tolerance)?;
    obs::counter("serve.escalation.evaluations", 1);
    let chosen = decision.chosen;
    Ok(rungs
        .into_iter()
        .nth(chosen)
        .expect("chosen index is in ladder range"))
}

/// Loads the tenant's detector from its canonical checkpoint. When the
/// checkpoint exists, its envelope family **is** the pinned rung — this
/// is what lets a failover or restart resume the exact pin the dead
/// replica persisted. When it is missing (or unreadable) and an
/// escalation ladder is configured, the ladder is evaluated instead and
/// the winner is persisted as the new canonical envelope before serving.
fn load_or_escalate(spec: &TenantSpec) -> Result<AnyDetector, DetectorError> {
    match AnyDetector::load(&spec.cfg, spec.seed, spec.channels, &spec.checkpoint) {
        Ok(det) => {
            if !spec.allows_family(det.kind()) {
                return Err(DetectorError::CorruptCheckpoint(format!(
                    "checkpoint family {} is not allowed for tenant {} (expected {} \
                     or an escalation rung)",
                    det.kind(),
                    spec.id,
                    spec.family
                )));
            }
            Ok(det)
        }
        Err(e) => {
            let Some(esc) = &spec.escalation else {
                return Err(e);
            };
            let winner = evaluate_and_choose(esc, spec)?;
            obs::counter("serve.escalation.initial_pins", 1);
            winner.save(&spec.checkpoint)?;
            Ok(winner)
        }
    }
}

/// Builds the serving monitor for one tenant: restore from the IMSM
/// sidecar when one exists (failover adoption, replica restart) so the
/// verdict stream resumes without re-warming; fall back to a fresh
/// (warming) load when the sidecar is absent. A *damaged* sidecar is a
/// typed, counted event — [`DetectorError::CorruptCheckpoint`] — that
/// degrades to a fresh load rather than refusing the tenant: losing warm
/// state is recoverable, losing the tenant is not. Weight-file failures
/// still propagate.
fn load_monitor(
    spec: &TenantSpec,
    snapshot_every: Option<u64>,
) -> Result<ServeMonitor, DetectorError> {
    let t0 = Instant::now();
    let det = load_or_escalate(spec)?;
    let mut monitor = match StreamingMonitor::restore_with(det, &spec.checkpoint) {
        Ok(m) => {
            obs::counter("serve.failover.sidecar_restores", 1);
            obs::histogram(
                "serve.failover.sidecar_restore_ms",
                t0.elapsed().as_secs_f64() * 1e3,
            );
            m
        }
        Err(e) => {
            if !matches!(e, DetectorError::Io(_)) {
                // Sidecar present but unusable (CRC mismatch, bad tag,
                // geometry drift): surface the typed corruption, then
                // re-warm from weights alone. `restore_with` consumed the
                // detector, so reload it — the canonical checkpoint is
                // guaranteed present now (load_or_escalate persisted any
                // fresh pin).
                obs::counter("serve.failover.sidecar_corrupt", 1);
            }
            let det = load_or_escalate(spec)?;
            StreamingMonitor::new(det, spec.channels, spec.hop)?
        }
    };
    monitor.set_snapshot_cadence(snapshot_every);
    if let Some((threshold, debounce)) = spec.drift_policy {
        // Arms only when the checkpoint carries a training-time drift
        // reference; legacy weight files keep serving unarmed (and
        // bit-identically to the pre-drift code).
        let _ = monitor.set_drift_policy(threshold, debounce);
    }
    Ok(monitor)
}

/// Loads the monitors this shard owns, then serves its queue until the
/// server drains. `ready` reports startup success or the first load error.
fn shard_main(
    inner: Arc<ServerInner>,
    shard_idx: usize,
    ready: mpsc::Sender<Result<(), ServeError>>,
) {
    let mut monitors: Vec<Option<ServeMonitor>> = Vec::new();
    let mut seqs: Vec<SeqState> = Vec::new();
    let mut promos: Vec<PromoState> = Vec::new();
    let mut escs: Vec<EscState> = Vec::new();
    for t in &inner.tenants {
        seqs.push(SeqState::default());
        promos.push(PromoState::default());
        escs.push(EscState::default());
        if t.shard != shard_idx || !t.active.load(Ordering::SeqCst) {
            monitors.push(None);
            continue;
        }
        match load_monitor(&t.spec, inner.cfg.snapshot_every) {
            Ok(monitor) => {
                *t.health.lock().unwrap_or_else(|e| e.into_inner()) = monitor.health();
                *t.incumbent.lock().unwrap_or_else(|e| e.into_inner()) =
                    monitor.detector().to_spec().ok().map(Box::new);
                *t.family.lock().unwrap_or_else(|e| e.into_inner()) =
                    monitor.detector().kind();
                // An escalation pin may have just rewritten the canonical
                // checkpoint; refresh the stamp so the watcher does not
                // reload what this shard just loaded.
                *t.reload_stamp.lock().unwrap_or_else(|e| e.into_inner()) =
                    stamp(&t.spec.checkpoint);
                escs.last_mut().expect("just pushed").was_drifted =
                    monitor.drift_status().drifted;
                monitors.push(Some(monitor));
            }
            Err(source) => {
                let _ = ready.send(Err(ServeError::Tenant {
                    id: t.spec.id.clone(),
                    source,
                }));
                return;
            }
        }
    }
    let _ = ready.send(Ok(()));
    drop(ready);

    let shard = &inner.shards[shard_idx];
    loop {
        match next_work(&inner, shard) {
            Work::Exit => return,
            // Reloads apply strictly between batches: a batch never
            // observes two generations.
            Work::Cmds(cmds) => {
                for cmd in cmds {
                    apply_cmd(
                        &inner,
                        &mut monitors,
                        &mut seqs,
                        &mut promos,
                        &mut escs,
                        cmd,
                    );
                }
            }
            Work::Batch { tenant, jobs } => {
                run_batch(
                    &inner,
                    &mut monitors,
                    &mut seqs,
                    &mut promos,
                    &mut escs,
                    tenant,
                    jobs,
                );
            }
        }
    }
}

/// What a shard found on its queue.
enum Work {
    /// Draining and nothing left to do.
    Exit,
    /// Pending swap commands (always delivered before the next batch).
    Cmds(Vec<ShardCmd>),
    /// A coalesced batch of score jobs for one tenant, oldest first.
    Batch {
        tenant: usize,
        jobs: Vec<ScoreJob>,
    },
}

/// Blocks until the shard has commands, a flushable batch, or is fully
/// drained. A batch flushes when `max_batch` jobs for **some** tenant
/// are queued, the oldest job of some tenant has waited `max_wait`, or
/// the server is draining.
///
/// Every queued tenant is considered, not just the head of the FIFO:
/// the old head-only heuristic head-of-line blocked a full batch for
/// tenant B behind tenant A's still-filling batching window, which is
/// how the micro-batching throughput curve went non-monotonic. Per
/// tenant, jobs still flush strictly in arrival order, so verdict
/// streams are unchanged — only cross-tenant scheduling differs.
fn next_work(inner: &ServerInner, shard: &Shard) -> Work {
    let mut q = shard.q.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        if inner.killed.load(Ordering::SeqCst) {
            // Abrupt death: queued jobs are *dropped*, not flushed. Their
            // reply senders fall out of scope, which the transport layer
            // surfaces as a typed connection loss upstream.
            return Work::Exit;
        }
        if !q.cmds.is_empty() {
            return Work::Cmds(std::mem::take(&mut q.cmds));
        }
        let draining = inner.draining.load(Ordering::SeqCst);
        if q.jobs.is_empty() {
            if draining {
                return Work::Exit;
            }
            let (guard, _) = shard
                .cv
                .wait_timeout(q, Duration::from_millis(100))
                .unwrap_or_else(|e| e.into_inner());
            q = guard;
            continue;
        }
        // Per-tenant (count, head arrival). BTreeMap keyed by tenant
        // index + strict comparisons make tie-breaks deterministic.
        let mut per_tenant: BTreeMap<usize, (usize, Instant)> = BTreeMap::new();
        for job in &q.jobs {
            per_tenant
                .entry(job.tenant)
                .and_modify(|e| e.0 += 1)
                .or_insert((1, job.enqueued));
        }
        let mut full: Option<(usize, Instant)> = None;
        let mut oldest: Option<(usize, Instant)> = None;
        for (&tenant, &(count, head)) in &per_tenant {
            if count >= inner.cfg.max_batch
                && full.is_none_or(|(_, h)| head < h)
            {
                full = Some((tenant, head));
            }
            if oldest.is_none_or(|(_, h)| head < h) {
                oldest = Some((tenant, head));
            }
        }
        // A full batch is ready now; otherwise the tenant whose head has
        // waited longest decides whether to flush or sleep the residue
        // of its batching window.
        let (tenant, head) = full.or(oldest).expect("jobs is non-empty");
        let age = head.elapsed();
        if full.is_none() && !draining && age < inner.cfg.max_wait {
            let (guard, _) = shard
                .cv
                .wait_timeout(q, inner.cfg.max_wait - age)
                .unwrap_or_else(|e| e.into_inner());
            q = guard;
            continue;
        }
        let pending = per_tenant[&tenant].0;
        let mut jobs = Vec::with_capacity(pending.min(inner.cfg.max_batch));
        let mut kept = VecDeque::with_capacity(q.jobs.len());
        for job in q.jobs.drain(..) {
            if job.tenant == tenant && jobs.len() < inner.cfg.max_batch {
                jobs.push(job);
            } else {
                kept.push_back(job);
            }
        }
        q.jobs = kept;
        return Work::Batch { tenant, jobs };
    }
}

/// Applies dequeue-time admission control and sequence-id deduplication,
/// runs one coalesced `push_batch`, and answers every job.
fn run_batch(
    inner: &ServerInner,
    monitors: &mut [Option<ServeMonitor>],
    seqs: &mut [SeqState],
    promos: &mut [PromoState],
    escs: &mut [EscState],
    tenant: usize,
    jobs: Vec<ScoreJob>,
) {
    inner.queued.fetch_sub(jobs.len(), Ordering::SeqCst);
    let shared = &inner.tenants[tenant];
    shared
        .queue_depth
        .fetch_sub(jobs.len() as u32, Ordering::SeqCst);

    // Expired jobs are refused un-ingested; over-budget jobs are shed to
    // the degraded path but still ingested and answered. Sequenced jobs
    // whose id was already applied are answered from the reply cache
    // without re-ingesting (idempotent replay); a duplicate of a request
    // *in this very batch* is deferred and answered from the cache once
    // the original's reply lands there.
    let mut senders = Vec::with_capacity(jobs.len());
    let mut admitted_seqs = Vec::with_capacity(jobs.len());
    let mut admitted_starts = Vec::with_capacity(jobs.len());
    let mut items = Vec::with_capacity(jobs.len());
    let mut deferred_dups: Vec<(u64, ReplyTx)> = Vec::new();
    for job in jobs {
        if job.seq != 0 && seqs[tenant].is_applied(job.seq) {
            obs::counter("serve.failover.replay_hits", 1);
            let cached = seqs[tenant]
                .cache
                .iter()
                .find(|(s, _)| *s == job.seq)
                .map(|(_, resp)| resp.clone());
            // `Interrupted`, not `Unavailable`: the rows WERE ingested,
            // so the client must not re-submit them under a fresh id —
            // only resync. (A same-id retry just gets this answer again,
            // bounded by the client's budget.)
            job.reply.send(cached.unwrap_or_else(|| Response::Error {
                code: ErrorCode::Interrupted,
                message: format!(
                    "sequence id {} was already applied but its reply left the \
                     cache; resync from the health report's rows_seen",
                    job.seq
                ),
            }));
            continue;
        }
        if job.seq != 0 && admitted_seqs.contains(&job.seq) {
            obs::counter("serve.failover.replay_hits", 1);
            deferred_dups.push((job.seq, job.reply));
            continue;
        }
        let waited = job.enqueued.elapsed();
        obs::histogram("serve.queue_wait_s", waited.as_secs_f64());
        if waited > inner.cfg.deadline {
            obs::counter("serve.timeouts", 1);
            // Not ingested and not applied: a retry with the same
            // sequence id is admitted as new work.
            job.reply.send(Response::Error {
                code: ErrorCode::Timeout,
                message: DetectorError::Timeout {
                    waited_ms: waited.as_millis() as u64,
                }
                .to_string(),
            });
            continue;
        }
        let mut item = job.item;
        if waited > inner.cfg.shed_after {
            obs::counter("serve.shed", 1);
            item.shed = true;
        }
        items.push(item);
        admitted_seqs.push(job.seq);
        admitted_starts.push(job.start_row);
        senders.push(job.reply);
    }

    let monitor = monitors[tenant].as_mut().expect("shard owns this tenant");

    // Stream-position guard: a guarded chunk must start exactly where
    // the monitor is once its predecessors in this batch have landed.
    // After a failover the restored monitor sits at the snapshot
    // position while the client may be ahead — without this check its
    // rows would be silently ingested at the wrong offset, corrupting
    // the stream instead of failing it. Refused jobs do not spend their
    // sequence id, so the client's resync-and-resend is admitted fresh.
    if admitted_starts.iter().any(|&s| s != u64::MAX) {
        let mut expected = monitor.seen();
        // `None` = keep; `Some(at)` = refuse, stream was at `at`.
        let mut refuse: Vec<Option<u64>> = vec![None; items.len()];
        for (i, item) in items.iter().enumerate() {
            if admitted_starts[i] != u64::MAX && admitted_starts[i] != expected {
                refuse[i] = Some(expected);
                obs::counter("serve.failover.position_refusals", 1);
                continue;
            }
            // Bridged gap rows advance the stream position too; a gap
            // large enough to re-warm resets the buffer but still
            // advances `seen`, so this prediction holds either way.
            expected += item.gap_before as u64 + item.rows.len() as u64;
        }
        if refuse.iter().any(Option::is_some) {
            let mut kept_items = Vec::with_capacity(items.len());
            let mut kept_seqs = Vec::with_capacity(items.len());
            let mut kept_senders = Vec::with_capacity(items.len());
            for (i, (item, (seq, sender))) in items
                .into_iter()
                .zip(admitted_seqs.into_iter().zip(senders))
                .enumerate()
            {
                match refuse[i] {
                    None => {
                        kept_items.push(item);
                        kept_seqs.push(seq);
                        kept_senders.push(sender);
                    }
                    Some(at) => {
                        sender.send(Response::Error {
                            code: ErrorCode::Unavailable,
                            message: format!(
                                "stream position mismatch for {}: request claims \
                                 row {}, stream is at {at}; resync from the \
                                 health report's rows_seen and re-send",
                                shared.spec.id, admitted_starts[i]
                            ),
                        });
                    }
                }
            }
            items = kept_items;
            admitted_seqs = kept_seqs;
            senders = kept_senders;
        }
    }
    if senders.is_empty() {
        answer_deferred(&seqs[tenant], deferred_dups);
        return;
    }

    let generation = shared.generation.load(Ordering::SeqCst);
    let replies = {
        let _span = obs::span("serve.batch");
        monitor.push_batch(&items)
    };
    obs::counter("serve.batches", 1);
    obs::counter("serve.batch_items", items.len() as u64);
    obs::histogram("serve.batch_size", items.len() as f64);
    *shared.health.lock().unwrap_or_else(|e| e.into_inner()) = monitor.health();

    // The tenant's verdict stream, in order, for the regression sentinel.
    let batch_flags: Vec<bool> = replies
        .iter()
        .filter(|r| r.error.is_none())
        .flat_map(|r| r.verdicts.iter().map(|v| v.anomalous))
        .collect();

    for ((sender, reply), seq) in senders.into_iter().zip(replies).zip(admitted_seqs) {
        let resp = match reply.error {
            Some(e) => Response::Error {
                code: match e {
                    DetectorError::DimensionMismatch { .. }
                    | DetectorError::NonFiniteInput { .. }
                    | DetectorError::InvalidTrainingData(_) => ErrorCode::BadRequest,
                    _ => ErrorCode::Internal,
                },
                message: e.to_string(),
            },
            None => Response::Verdicts {
                generation,
                verdicts: reply
                    .verdicts
                    .iter()
                    .map(|v| WireVerdict {
                        index: v.index,
                        score: v.score,
                        votes: v.votes,
                        anomalous: v.anomalous,
                        degraded: v.degraded,
                    })
                    .collect(),
            },
        };
        if seq != 0 {
            // The rows are ingested either way (push_batch answered), so
            // the id is spent: record it and cache the reply verbatim.
            let st = &mut seqs[tenant];
            st.note_applied(seq);
            st.cache.push_back((seq, resp.clone()));
            while st.cache.len() > inner.cfg.replay_cache {
                st.cache.pop_front();
            }
        }
        sender.send(resp);
    }
    answer_deferred(&seqs[tenant], deferred_dups);

    // Post-promotion regression sentinel: runs after the batch answered,
    // so a rollback lands between batches exactly like a promotion.
    observe_promotion(inner, monitor, &mut promos[tenant], shared, &batch_flags);

    // Escalation routing: edge-triggered on the drift latch, applied
    // between batches like every other swap.
    route_escalation(monitor, &mut promos[tenant], &mut escs[tenant], shared);

    // Cadenced sidecar snapshot: bounded failover loss. Runs after the
    // batch so the sidecar always captures a between-batches state.
    if monitor.snapshot_due() {
        let t0 = Instant::now();
        match monitor.checkpoint_stream(&shared.spec.checkpoint) {
            Ok(()) => {
                monitor.mark_snapshotted();
                obs::counter("serve.failover.sidecar_writes", 1);
                obs::histogram(
                    "serve.failover.sidecar_write_ms",
                    t0.elapsed().as_secs_f64() * 1e3,
                );
            }
            Err(_) => obs::counter("serve.failover.sidecar_write_errors", 1),
        }
    }
}

/// Answers same-batch duplicates from the reply cache once (if) their
/// original's reply landed there. An original refused by admission or
/// the position guard never reaches the cache, so its duplicates get a
/// typed error instead — `Interrupted`, because from here the refused
/// and the applied-then-evicted cases are indistinguishable, and a
/// same-sequence-id retry is the one response that is correct for both
/// (admitted fresh if refused, answered by dedup if applied).
fn answer_deferred(st: &SeqState, deferred: Vec<(u64, ReplyTx)>) {
    for (seq, sender) in deferred {
        let cached = st
            .cache
            .iter()
            .find(|(s, _)| *s == seq)
            .map(|(_, resp)| resp.clone());
        sender.send(cached.unwrap_or_else(|| Response::Error {
            code: ErrorCode::Interrupted,
            message: format!(
                "duplicate of in-flight sequence id {seq} could not be answered \
                 from the reply cache"
            ),
        }));
    }
}

/// Feeds the tenant's post-batch verdict stream to its regression
/// sentinel. While a watch is active, the decision fires on **exactly**
/// `regression_watch` post-swap verdicts — mid-batch if need be — so the
/// outcome is independent of batch coalescing and thread count. A tripped
/// watch swaps the archived incumbent back in, bumps the generation (the
/// rollback is itself an atomic between-batches swap: no serving gap) and
/// records a `RolledBack` verdict for the next `Reload` round-trip.
fn observe_promotion(
    inner: &ServerInner,
    monitor: &mut ServeMonitor,
    promo: &mut PromoState,
    shared: &TenantShared,
    flags: &[bool],
) {
    for &flag in flags {
        let decided = match &mut promo.watch {
            None => {
                promo.recent.push_back(flag);
                while promo.recent.len() > REGRESSION_BASELINE_WINDOW {
                    promo.recent.pop_front();
                }
                None
            }
            Some(w) => {
                w.seen += 1;
                w.anomalous += usize::from(flag);
                (w.seen >= inner.cfg.regression_watch)
                    .then_some((w.seen, w.anomalous, w.baseline))
            }
        };
        let Some((seen, anomalous, baseline)) = decided else {
            continue;
        };
        promo.watch = None;
        let rate = anomalous as f64 / seen as f64;
        let tripwire =
            (inner.cfg.regression_factor * baseline).max(inner.cfg.regression_min_rate);
        if rate <= tripwire {
            // Promotion confirmed: the archive is no longer needed and
            // the post-swap verdicts seed the next baseline.
            shared
                .rollback
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take();
            obs::counter("serve.promotion.confirmed", 1);
            continue;
        }
        let Some(prev) = shared
            .rollback
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        else {
            continue;
        };
        match prev.build().and_then(|det| monitor.swap_detector(det)) {
            Ok(()) => {
                let generation = shared.generation.fetch_add(1, Ordering::SeqCst) + 1;
                obs::counter("serve.promotion.rollbacks", 1);
                let detail = format!(
                    "post-promotion regression: anomaly rate {rate:.3} over {seen} \
                     verdicts vs pre-swap baseline {baseline:.3}; archived incumbent \
                     restored as generation {generation}"
                );
                *shared.family.lock().unwrap_or_else(|e| e.into_inner()) =
                    prev.kind().unwrap_or(shared.spec.family);
                *shared.incumbent.lock().unwrap_or_else(|e| e.into_inner()) = Some(prev);
                *shared.promo.lock().unwrap_or_else(|e| e.into_inner()) =
                    (PromotionVerdict::RolledBack, detail);
                *shared.health.lock().unwrap_or_else(|e| e.into_inner()) =
                    monitor.health();
                promo.recent.clear();
            }
            Err(_) => obs::counter("serve.reload_errors", 1),
        }
    }
}

/// The escalation router: runs after every batch, edge-triggered on the
/// monitor's debounced drift latch. A **trip** (the live distribution
/// left the pinned rung's training envelope) swaps in the ladder apex —
/// a regime change is exactly when the expensive model earns its cost. A
/// **clear** re-runs the holdout evaluation so a tenant whose regime
/// settled can de-escalate back to the cheapest adequate rung. Both
/// repins persist the new rung's envelope as the canonical checkpoint
/// (failover restores the pin) and bump the generation like any swap.
///
/// `swap_detector` resets the latch against the replacement's own drift
/// reference, so `was_drifted` is resynced from the monitor after every
/// repin rather than assumed.
fn route_escalation(
    monitor: &mut ServeMonitor,
    promo: &mut PromoState,
    esc: &mut EscState,
    shared: &TenantShared,
) {
    let Some(ladder) = &shared.spec.escalation else {
        return;
    };
    let drifted = monitor.drift_status().drifted;
    let (was, now) = (esc.was_drifted, drifted);
    esc.was_drifted = now;
    if was == now {
        return;
    }
    let serving = monitor.detector().kind();
    if now {
        let apex = ladder.rungs.last().expect("ladder validated non-empty");
        if serving == apex.kind {
            return;
        }
        obs::counter("serve.escalation.drift_escalations", 1);
        match AnyDetector::load(
            &shared.spec.cfg,
            shared.spec.seed,
            shared.spec.channels,
            &apex.checkpoint,
        ) {
            Ok(det) => repin(monitor, promo, esc, shared, det),
            Err(_) => obs::counter("serve.escalation.errors", 1),
        }
    } else {
        match evaluate_and_choose(ladder, &shared.spec) {
            Ok(det) if det.kind() != serving => {
                obs::counter("serve.escalation.deescalations", 1);
                repin(monitor, promo, esc, shared, det);
            }
            Ok(_) => {}
            Err(_) => obs::counter("serve.escalation.errors", 1),
        }
    }
}

/// Swaps `det` in as the tenant's pinned rung: between-batches swap,
/// generation bump, canonical-envelope persist (+ watcher stamp refresh
/// so the rewrite is not reloaded), family/incumbent updates, and a
/// sentinel reset — a family change invalidates both the regression
/// baseline and any archived rollback target.
fn repin(
    monitor: &mut ServeMonitor,
    promo: &mut PromoState,
    esc: &mut EscState,
    shared: &TenantShared,
    det: AnyDetector,
) {
    let kind = det.kind();
    match monitor.swap_detector(det) {
        Ok(()) => {
            shared.generation.fetch_add(1, Ordering::SeqCst);
            obs::counter("serve.escalation.repins", 1);
            match monitor.detector().save(&shared.spec.checkpoint) {
                Ok(()) => {
                    *shared.reload_stamp.lock().unwrap_or_else(|e| e.into_inner()) =
                        stamp(&shared.spec.checkpoint);
                }
                // Serving continues on the new rung either way; only the
                // failover pin is stale until the next successful write.
                Err(_) => obs::counter("serve.escalation.persist_errors", 1),
            }
            *shared.family.lock().unwrap_or_else(|e| e.into_inner()) = kind;
            *shared.incumbent.lock().unwrap_or_else(|e| e.into_inner()) =
                monitor.detector().to_spec().ok().map(Box::new);
            shared
                .rollback
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take();
            *promo = PromoState::default();
            *shared.health.lock().unwrap_or_else(|e| e.into_inner()) = monitor.health();
            esc.was_drifted = monitor.drift_status().drifted;
        }
        Err(_) => obs::counter("serve.escalation.errors", 1),
    }
}

fn apply_cmd(
    inner: &ServerInner,
    monitors: &mut [Option<ServeMonitor>],
    seqs: &mut [SeqState],
    promos: &mut [PromoState],
    escs: &mut [EscState],
    cmd: ShardCmd,
) {
    match cmd {
        ShardCmd::Swap {
            tenant,
            spec,
            reply,
        } => {
            let shared = &inner.tenants[tenant];
            let Some(monitor) = monitors[tenant].as_mut() else {
                // The tenant was never activated here (or a reload raced
                // adoption): count and skip, never panic the shard.
                obs::counter("serve.reload_errors", 1);
                if let Some(tx) = reply {
                    tx.send(Response::Error {
                        code: ErrorCode::Unavailable,
                        message: format!(
                            "tenant {} has no live monitor on this shard",
                            shared.spec.id
                        ),
                    });
                }
                return;
            };
            let kind = spec.kind();
            match spec.build().and_then(|det| monitor.swap_detector(det)) {
                Ok(()) => {
                    let generation = shared.generation.fetch_add(1, Ordering::SeqCst) + 1;
                    obs::counter("serve.reloads", 1);
                    obs::counter("serve.promotion.promoted", 1);
                    *shared.family.lock().unwrap_or_else(|e| e.into_inner()) =
                        kind.unwrap_or(shared.spec.family);
                    // The candidate is the new incumbent; archive the old
                    // one and arm the regression watch over its baseline.
                    let prev = shared
                        .incumbent
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .replace(spec);
                    if inner.cfg.regression_watch > 0 {
                        if let Some(prev) = prev {
                            promos[tenant].watch = Some(RegressionWatch {
                                baseline: promos[tenant].baseline_rate(),
                                seen: 0,
                                anomalous: 0,
                            });
                            promos[tenant].recent.clear();
                            *shared.rollback.lock().unwrap_or_else(|e| e.into_inner()) =
                                Some(prev);
                        }
                    }
                    let detail =
                        format!("promoted candidate is serving as generation {generation}");
                    *shared.promo.lock().unwrap_or_else(|e| e.into_inner()) =
                        (PromotionVerdict::Promoted, detail.clone());
                    // The swap may have re-armed or cleared the drift
                    // latch; publish the fresh health immediately, and
                    // resync the escalation router's edge detector.
                    *shared.health.lock().unwrap_or_else(|e| e.into_inner()) =
                        monitor.health();
                    escs[tenant].was_drifted = monitor.drift_status().drifted;
                    if let Some(tx) = reply {
                        tx.send(Response::ReloadStatus {
                            generation,
                            verdict: PromotionVerdict::Promoted,
                            detail,
                            family: family_name(shared),
                        });
                    }
                }
                Err(e) => {
                    obs::counter("serve.reload_errors", 1);
                    obs::counter("serve.promotion.rejected_corrupt", 1);
                    let msg = format!("swap refused for {}: {e}", shared.spec.id);
                    *shared.promo.lock().unwrap_or_else(|e| e.into_inner()) =
                        (PromotionVerdict::RejectedCorrupt, msg.clone());
                    if let Some(tx) = reply {
                        tx.send(Response::ReloadStatus {
                            generation: shared.generation.load(Ordering::SeqCst),
                            verdict: PromotionVerdict::RejectedCorrupt,
                            detail: msg,
                            family: family_name(shared),
                        });
                    }
                }
            }
        }
        ShardCmd::Adopt { tenant, reply } => {
            let shared = &inner.tenants[tenant];
            if monitors[tenant].is_some() {
                reply.send(Response::Ok); // idempotent
                return;
            }
            match load_monitor(&shared.spec, inner.cfg.snapshot_every) {
                Ok(monitor) => {
                    *shared.health.lock().unwrap_or_else(|e| e.into_inner()) =
                        monitor.health();
                    *shared
                        .reload_stamp
                        .lock()
                        .unwrap_or_else(|e| e.into_inner()) =
                        stamp(&shared.spec.checkpoint);
                    // The freshly adopted detector is this replica's
                    // incumbent; any promotion history belongs to the
                    // dead replica and is discarded with it.
                    *shared.incumbent.lock().unwrap_or_else(|e| e.into_inner()) =
                        monitor.detector().to_spec().ok().map(Box::new);
                    *shared.family.lock().unwrap_or_else(|e| e.into_inner()) =
                        monitor.detector().kind();
                    shared
                        .rollback
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .take();
                    promos[tenant] = PromoState::default();
                    escs[tenant] = EscState {
                        was_drifted: monitor.drift_status().drifted,
                    };
                    monitors[tenant] = Some(monitor);
                    seqs[tenant] = SeqState::default();
                    shared.active.store(true, Ordering::SeqCst);
                    obs::counter("serve.failover.adoptions", 1);
                    reply.send(Response::Ok);
                }
                Err(e) => {
                    reply.send(Response::Error {
                        code: ErrorCode::Internal,
                        message: format!("adoption of {} failed: {e}", shared.spec.id),
                    });
                }
            }
        }
        ShardCmd::Snapshot { tenant, reply } => {
            let shared = &inner.tenants[tenant];
            let Some(monitor) = monitors[tenant].as_mut() else {
                reply.send(Response::Error {
                    code: ErrorCode::Unavailable,
                    message: format!(
                        "tenant {} is not active on this replica",
                        shared.spec.id
                    ),
                });
                return;
            };
            let t0 = Instant::now();
            match monitor.checkpoint_stream(&shared.spec.checkpoint) {
                Ok(()) => {
                    monitor.mark_snapshotted();
                    obs::counter("serve.failover.sidecar_writes", 1);
                    obs::histogram(
                        "serve.failover.sidecar_write_ms",
                        t0.elapsed().as_secs_f64() * 1e3,
                    );
                    reply.send(Response::Ok);
                }
                Err(e) => {
                    reply.send(Response::Error {
                        code: ErrorCode::Internal,
                        message: format!("snapshot of {} failed: {e}", shared.spec.id),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Connection handling (readiness event loop)
// ---------------------------------------------------------------------------

/// Poll tick: the upper bound on how stale the idle / frame-progress
/// deadline checks can run. Wake-ups for completions, readable sockets
/// and accepts interrupt the sleep immediately.
const POLL_TICK_MS: i32 = 25;

/// The server's data plane: one thread multiplexing the listener and
/// every client connection over `poll(2)`.
///
/// Per iteration: drain shard completions into per-connection
/// slot-ordered reply queues, accept, read + frame + dispatch, flush,
/// then enforce the idle and per-frame-progress deadlines. A connection
/// whose write buffer is over the high-water mark stops being polled
/// for reads (backpressure); one that dies or misbehaves is closed with
/// its `conn_streams` clone cleaned up, exactly like the old
/// per-connection threads did.
///
/// Exit: `kill` severs everything immediately; `drain` stops accepting,
/// flushes every outstanding reply, then closes connections and
/// returns.
fn event_loop_main(inner: Arc<ServerInner>, listener: TcpListener) {
    let _ = listener.set_nonblocking(true);
    let completions = Arc::clone(&inner.completions);
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_id: u64 = 1;
    // Reused each iteration: poll set + the conn id each slot refers to.
    let mut fds: Vec<sys::PollFd> = Vec::new();
    let mut fd_ids: Vec<u64> = Vec::new();

    loop {
        if inner.killed.load(Ordering::SeqCst) {
            for (_, c) in conns.drain() {
                let _ = c.stream.shutdown(std::net::Shutdown::Both);
            }
            return;
        }
        let draining = inner.draining.load(Ordering::SeqCst);
        if draining {
            for c in conns.values_mut() {
                c.closing = true;
            }
        }

        fds.clear();
        fd_ids.clear();
        fds.push(sys::PollFd::new(completions.poll_fd(), sys::POLLIN));
        let accepting = !draining;
        if accepting {
            fds.push(sys::PollFd::new(mux::raw_fd(&listener), sys::POLLIN));
        }
        let base = fds.len();
        for c in conns.values() {
            let mut ev = 0i16;
            if c.wants_read() {
                ev |= sys::POLLIN;
            }
            if c.wants_write() {
                ev |= sys::POLLOUT;
            }
            fds.push(sys::PollFd::new(mux::raw_fd(&c.stream), ev));
            fd_ids.push(c.id);
        }
        if sys::poll_fds(&mut fds, POLL_TICK_MS).is_err() {
            // EBADF and friends only happen mid-shutdown races; the flag
            // checks at the top of the loop decide what to do.
            continue;
        }

        // Completions first: frees write buffers before new reads.
        for comp in completions.drain() {
            if let Some(c) = conns.get_mut(&comp.conn) {
                c.push_response(comp.slot, comp.resp);
            }
        }

        if accepting && fds[base - 1].readable() {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if inner.isolated.load(Ordering::SeqCst) {
                            // Partitioned: accept then drop, so peers see
                            // an immediate EOF rather than a served reply.
                            drop(stream);
                            continue;
                        }
                        obs::counter("serve.connections", 1);
                        if let Ok(clone) = stream.try_clone() {
                            inner
                                .conn_streams
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .push(clone);
                        }
                        if let Ok(conn) = Conn::new(stream, next_id) {
                            conns.insert(next_id, conn);
                            next_id += 1;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }

        for (i, fd) in fds[base..].iter().enumerate() {
            if !fd.readable() {
                continue;
            }
            let Some(c) = conns.get_mut(&fd_ids[i]) else {
                continue;
            };
            if let FillOutcome::Eof = c.fill() {
                // Half-close: stop reading but still flush every pending
                // reply before dropping the connection.
            }
            process_frames(&inner, &completions, c);
        }

        // Inline dispatches (ping, health, refusals) post completions
        // synchronously; fold them in before flushing.
        for comp in completions.drain() {
            if let Some(c) = conns.get_mut(&comp.conn) {
                c.push_response(comp.slot, comp.resp);
            }
        }

        for c in conns.values_mut() {
            if c.wants_write() && c.flush().is_err() {
                c.dead = true;
            }
        }

        // Deadline ticks: idle (no frame activity at all) and per-frame
        // progress (slowloris: a started frame must finish in time).
        for c in conns.values_mut() {
            if c.dead || c.closing || c.eof {
                continue;
            }
            match c.frame_started {
                None => {
                    if let Some(budget) = inner.cfg.idle_timeout {
                        if c.last_frame.elapsed() >= budget {
                            obs::counter("serve.idle_closed", 1);
                            c.closing = true;
                        }
                    }
                }
                Some(started) => {
                    if let Some(budget) = inner.cfg.frame_deadline {
                        if started.elapsed() >= budget {
                            obs::counter("serve.frame_stalled_closed", 1);
                            c.eof = true;
                            c.closing = true;
                        }
                    }
                }
            }
        }

        let done: Vec<u64> = conns
            .values()
            .filter(|c| c.dead || ((c.eof || c.closing) && c.fully_flushed()))
            .map(|c| c.id)
            .collect();
        for id in done {
            if let Some(c) = conns.remove(&id) {
                close_conn(&inner, c);
            }
        }

        if draining && conns.is_empty() {
            return;
        }
    }
}

/// Scans every complete frame out of `c`'s read buffer, decoding
/// payloads zero-copy (borrowed straight from the buffer) and
/// dispatching each request under the connection's next reply slot. A
/// framing or decode error answers `BadRequest` on the slot and marks
/// the connection closing — the stream is unreliable past that point.
fn process_frames(inner: &Arc<ServerInner>, completions: &Arc<Completions>, c: &mut Conn) {
    loop {
        if c.closing {
            return;
        }
        match c.scan() {
            Ok(None) => return,
            Ok(Some(frame)) => {
                let decoded = Request::decode(
                    frame.kind,
                    c.rbuf_slice(frame.payload_start, frame.payload_end),
                );
                match decoded {
                    Ok(req) => {
                        c.consume(frame.total);
                        obs::counter("serve.requests", 1);
                        let slot = c.assign_slot();
                        dispatch(inner, req, ReplyTx::slot(completions, c.id, slot));
                    }
                    Err(err) => {
                        c.push_inline(Response::Error {
                            code: ErrorCode::BadRequest,
                            message: err.to_string(),
                        });
                        c.eof = true;
                        c.closing = true;
                        return;
                    }
                }
            }
            Err(err) => {
                c.push_inline(Response::Error {
                    code: ErrorCode::BadRequest,
                    message: err.to_string(),
                });
                c.eof = true;
                c.closing = true;
                return;
            }
        }
    }
}

/// Drops one connection: shutdown acts on the socket across every clone
/// (the peer sees EOF even though `conn_streams` holds a duplicate),
/// then the clone is retired.
fn close_conn(inner: &ServerInner, c: Conn) {
    let _ = c.stream.shutdown(std::net::Shutdown::Both);
    let peer = c.peer;
    inner
        .conn_streams
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .retain(|s| match s.peer_addr() {
            Ok(a) => Some(a) != peer,
            Err(_) => false, // already dead — drop it too
        });
}

/// Routes one request. Cheap requests answer through `reply` inline
/// (which posts a completion); the score path moves `reply` into a
/// queued job and the shard answers later. Heavy control work (reload
/// validation) runs on a short-lived thread so the event loop never
/// stalls behind it.
fn dispatch(inner: &Arc<ServerInner>, req: Request, reply: ReplyTx) {
    match req {
        Request::Ping => reply.send(Response::Ok),
        Request::Health => reply.send(inner.health_report()),
        Request::ObsSnapshot => reply.send(Response::ObsJson {
            json: obs::snapshot_json(),
        }),
        Request::Drain => {
            inner.begin_drain();
            reply.send(Response::Ok)
        }
        Request::Reload { tenant } => match inner.tenant_index(&tenant) {
            None => reply.send(Response::Error {
                code: ErrorCode::UnknownTenant,
                message: format!("no tenant {tenant:?}"),
            }),
            Some(idx) => {
                // Checkpoint load + holdout gating are far too heavy for
                // the event loop; validate off-thread. The answer is a
                // ReloadStatus sent by the gate (on rejection) or by the
                // shard after the swap lands (on promotion).
                let inner = Arc::clone(inner);
                std::thread::spawn(move || inner.reload_tenant(idx, None, Some(reply)));
            }
        },
        Request::Adopt { tenant } => match inner.tenant_index(&tenant) {
            None => reply.send(Response::Error {
                code: ErrorCode::UnknownTenant,
                message: format!("no tenant {tenant:?}"),
            }),
            Some(idx) => {
                let shared = &inner.tenants[idx];
                if shared.active.load(Ordering::SeqCst) {
                    return reply.send(Response::Ok); // idempotent
                }
                // Monitor creation must happen on the owning shard
                // thread; the shard answers through `reply` when done.
                let shard = &inner.shards[shared.shard];
                {
                    let mut q = shard.q.lock().unwrap_or_else(|e| e.into_inner());
                    q.cmds.push(ShardCmd::Adopt { tenant: idx, reply });
                }
                shard.cv.notify_all();
            }
        },
        Request::Snapshot { tenant } => match inner.tenant_index(&tenant) {
            None => reply.send(Response::Error {
                code: ErrorCode::UnknownTenant,
                message: format!("no tenant {tenant:?}"),
            }),
            Some(idx) => {
                let shared = &inner.tenants[idx];
                if !shared.active.load(Ordering::SeqCst) {
                    return reply.send(Response::Error {
                        code: ErrorCode::Unavailable,
                        message: format!(
                            "tenant {tenant:?} is not placed on this replica"
                        ),
                    });
                }
                let shard = &inner.shards[shared.shard];
                {
                    let mut q = shard.q.lock().unwrap_or_else(|e| e.into_inner());
                    q.cmds.push(ShardCmd::Snapshot { tenant: idx, reply });
                }
                shard.cv.notify_all();
            }
        },
        Request::Score {
            tenant,
            seq,
            start_row,
            gap_before,
            rows,
        } => {
            obs::counter("serve.score_requests", 1);
            let Some(idx) = inner.tenant_index(&tenant) else {
                return reply.send(Response::Error {
                    code: ErrorCode::UnknownTenant,
                    message: format!("no tenant {tenant:?}"),
                });
            };
            let shared = &inner.tenants[idx];
            if !shared.active.load(Ordering::SeqCst) {
                return reply.send(Response::Error {
                    code: ErrorCode::Unavailable,
                    message: format!("tenant {tenant:?} is not placed on this replica"),
                });
            }
            let channels = shared.spec.channels;
            if let Some(bad) = rows.iter().find(|r| r.len() != channels) {
                return reply.send(Response::Error {
                    code: ErrorCode::BadRequest,
                    message: format!(
                        "row has {} channels, tenant {tenant:?} expects {channels}",
                        bad.len()
                    ),
                });
            }
            // Admission control, cheapest checks first.
            if inner.draining.load(Ordering::SeqCst) {
                return reply.send(Response::Error {
                    code: ErrorCode::Draining,
                    message: "server is draining; no new scoring work".into(),
                });
            }
            let queued = inner.queued.fetch_add(1, Ordering::SeqCst);
            if queued >= inner.cfg.max_queue {
                inner.queued.fetch_sub(1, Ordering::SeqCst);
                obs::counter("serve.overloaded", 1);
                return reply.send(Response::Error {
                    code: ErrorCode::Overloaded,
                    message: DetectorError::Overloaded {
                        queued,
                        limit: inner.cfg.max_queue,
                    }
                    .to_string(),
                });
            }
            let job = ScoreJob {
                tenant: idx,
                seq,
                start_row,
                item: BatchItem {
                    gap_before: gap_before as usize,
                    rows,
                    shed: false,
                },
                enqueued: Instant::now(),
                reply,
            };
            shared.queue_depth.fetch_add(1, Ordering::SeqCst);
            let shard = &inner.shards[shared.shard];
            {
                let mut q = shard.q.lock().unwrap_or_else(|e| e.into_inner());
                q.jobs.push_back(job);
            }
            shard.cv.notify_all();
        }
    }
}

// ---------------------------------------------------------------------------
// Watcher
// ---------------------------------------------------------------------------

fn watcher_main(inner: Arc<ServerInner>, poll: Duration) {
    let mut last_scan = Instant::now();
    loop {
        if inner.draining.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(Duration::from_millis(20).min(poll));
        if last_scan.elapsed() < poll {
            continue;
        }
        last_scan = Instant::now();
        for idx in 0..inner.tenants.len() {
            let t = &inner.tenants[idx];
            if !t.active.load(Ordering::SeqCst) {
                continue;
            }
            let now = stamp(&t.spec.checkpoint);
            let changed = {
                let guard = t.reload_stamp.lock().unwrap_or_else(|e| e.into_inner());
                now.is_some() && *guard != now
            };
            if changed {
                // Errors are counted inside reload_tenant; the stamp is
                // recorded either way so one bad rewrite is not retried
                // in a loop.
                inner.reload_tenant(idx, now, None);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Server lifecycle
// ---------------------------------------------------------------------------

/// A running server. Dropping the handle without calling
/// [`Server::drain`] leaves detached threads running until process exit;
/// call `drain` for an orderly stop.
pub struct Server {
    inner: Arc<ServerInner>,
    addr: SocketAddr,
    /// The readiness event loop: listener + every client connection on
    /// one thread. Total server threads = 1 loop + shards + watcher,
    /// independent of connection count.
    loop_thread: Option<JoinHandle<()>>,
    shard_threads: Vec<JoinHandle<()>>,
    watcher: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, loads every tenant and starts serving. Returns once all
    /// shards report their monitors loaded; any load failure aborts
    /// startup with the underlying error.
    pub fn start(cfg: ServeConfig, tenants: Vec<TenantSpec>) -> Result<Server, ServeError> {
        let all = vec![true; tenants.len()];
        Server::start_placed(cfg, tenants, &all)
    }

    /// Starts a **replica**: the full tenant roster is registered (so
    /// failover can adopt any of it later) but only the tenants marked in
    /// `active` are loaded and served. Requests for registered-but-
    /// inactive tenants are refused with a typed
    /// [`ErrorCode::Unavailable`]. Tenants whose IMSM sidecar exists next
    /// to the checkpoint resume mid-stream instead of re-warming.
    pub fn start_placed(
        cfg: ServeConfig,
        tenants: Vec<TenantSpec>,
        active: &[bool],
    ) -> Result<Server, ServeError> {
        if tenants.is_empty() {
            return Err(ServeError::Config("no tenants to serve".into()));
        }
        if active.len() != tenants.len() {
            return Err(ServeError::Config(format!(
                "active mask has {} entries for {} tenants",
                active.len(),
                tenants.len()
            )));
        }
        {
            let mut ids: Vec<&str> = tenants.iter().map(|t| t.id.as_str()).collect();
            ids.sort_unstable();
            if ids.windows(2).any(|w| w[0] == w[1]) {
                return Err(ServeError::Config("duplicate tenant ids".into()));
            }
        }
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| ServeError::Io(e.to_string()))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Io(e.to_string()))?;

        let n_shards = cfg.shards.max(1).min(tenants.len());
        let shared: Vec<Arc<TenantShared>> = tenants
            .into_iter()
            .enumerate()
            .map(|(i, spec)| {
                let initial_stamp = stamp(&spec.checkpoint);
                let family = spec.family;
                Arc::new(TenantShared {
                    spec,
                    shard: i % n_shards,
                    active: AtomicBool::new(active[i]),
                    generation: AtomicU64::new(1),
                    queue_depth: AtomicU32::new(0),
                    health: Mutex::new(MonitorHealth {
                        state: HealthState::Warming,
                        rows_seen: 0,
                        rows_rejected: 0,
                        cells_imputed: 0,
                        gaps_bridged: 0,
                        rows_bridged: 0,
                        rewarms: 0,
                        degraded_evals: 0,
                        recoveries: 0,
                        drifted: false,
                        drift_trips: 0,
                    }),
                    reload_stamp: Mutex::new(initial_stamp),
                    promo: Mutex::new((PromotionVerdict::NoAttempt, String::new())),
                    incumbent: Mutex::new(None),
                    rollback: Mutex::new(None),
                    family: Mutex::new(family),
                })
            })
            .collect();
        let completions =
            Completions::new().map_err(|e| ServeError::Io(e.to_string()))?;
        let inner = Arc::new(ServerInner {
            cfg,
            tenants: shared,
            shards: (0..n_shards).map(|_| Shard::default()).collect(),
            queued: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            killed: AtomicBool::new(false),
            isolated: AtomicBool::new(false),
            conn_streams: Mutex::new(Vec::new()),
            completions,
        });

        // Shards load their monitors on their own threads (tensors are
        // not Send); wait for all of them before accepting traffic.
        let (ready_tx, ready_rx) = mpsc::channel();
        let mut shard_threads = Vec::with_capacity(n_shards);
        for s in 0..n_shards {
            let inner = Arc::clone(&inner);
            let tx = ready_tx.clone();
            shard_threads.push(std::thread::spawn(move || shard_main(inner, s, tx)));
        }
        drop(ready_tx);
        let mut startup_err = None;
        for _ in 0..n_shards {
            match ready_rx.recv() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    startup_err.get_or_insert(e);
                }
                Err(_) => {
                    startup_err.get_or_insert(ServeError::Io(
                        "a shard died during startup".into(),
                    ));
                }
            }
        }
        if let Some(e) = startup_err {
            inner.begin_drain();
            for t in shard_threads {
                let _ = t.join();
            }
            return Err(e);
        }

        let loop_thread = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || event_loop_main(inner, listener))
        };
        let watcher = inner.cfg.reload_poll.map(|poll| {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || watcher_main(inner, poll))
        });

        Ok(Server {
            inner,
            addr,
            loop_thread: Some(loop_thread),
            shard_threads,
            watcher,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current model generation of `tenant`, if registered.
    pub fn generation(&self, tenant: &str) -> Option<u64> {
        self.inner
            .tenant_index(tenant)
            .map(|i| self.inner.tenants[i].generation.load(Ordering::SeqCst))
    }

    /// Graceful shutdown: stop accepting, refuse new scoring work, flush
    /// every queued request, join all threads. Queued requests still get
    /// real replies — drain never silently drops work.
    pub fn drain(mut self) {
        // begin_drain wakes the event loop through the completions
        // waker; the loop marks every connection closing, flushes all
        // outstanding replies (shards drain their queues before
        // exiting, and every ReplyTx is send-or-drop), then returns.
        self.inner.begin_drain();
        if let Some(l) = self.loop_thread.take() {
            let _ = l.join();
        }
        for t in std::mem::take(&mut self.shard_threads) {
            let _ = t.join();
        }
        if let Some(w) = self.watcher.take() {
            let _ = w.join();
        }
    }

    /// Abrupt crash, for failover drills: queued work is **dropped** (the
    /// opposite of [`Server::drain`]), every open connection is severed
    /// mid-flight and the listener stops. Peers see EOF or a connection
    /// reset, never a reply. Shards, the acceptor and the watcher are
    /// joined so the process owns no background work afterwards;
    /// connection threads are left to die on their broken sockets, which
    /// is what a real crash looks like to the remote end.
    pub fn kill(mut self) {
        self.inner.killed.store(true, Ordering::SeqCst);
        self.inner.draining.store(true, Ordering::SeqCst);
        for shard in &self.inner.shards {
            shard.cv.notify_all();
        }
        let streams = std::mem::take(
            &mut *self
                .inner
                .conn_streams
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        );
        for s in streams {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        // Wake the event loop; it checks the kill flag first thing and
        // severs whatever connections remain.
        self.inner.completions.wake();
        if let Some(l) = self.loop_thread.take() {
            let _ = l.join();
        }
        for t in std::mem::take(&mut self.shard_threads) {
            let _ = t.join();
        }
        if let Some(w) = self.watcher.take() {
            let _ = w.join();
        }
    }

    /// Network partition, for failover drills: the replica keeps running
    /// (shards, watcher, cadenced snapshots) but every open connection is
    /// severed and new connections are accepted then immediately dropped.
    /// From the router's side this is indistinguishable from a crash —
    /// heartbeats connect and see EOF — which is exactly the ambiguity a
    /// supervisor must fence before re-placing tenants.
    pub fn isolate(&self) {
        self.inner.isolated.store(true, Ordering::SeqCst);
        let streams = std::mem::take(
            &mut *self
                .inner
                .conn_streams
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        );
        for s in streams {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
    }
}
