//! `imdiff-serve` — a zero-external-dependency serving layer for fitted
//! ImDiffusion detectors.
//!
//! The crate turns the offline pipeline into an online, multi-tenant
//! anomaly-detection service built entirely on `std::net` and the
//! workspace's own threading ([`imdiff_nn::pool`]) and telemetry
//! ([`imdiff_nn::obs`]):
//!
//! * **[`wire`]** — a versioned, CRC-framed binary protocol (framing in
//!   the spirit of the IMDF checkpoint format): score requests carry raw
//!   `f32` rows with NaN-declared missing cells; responses carry typed
//!   verdicts, health reports, observability snapshots or typed errors.
//! * **[`server`]** — the [`server::Server`]: a tenant registry mapping
//!   stream ids to [`imdiffusion::StreamingMonitor`]s loaded from IMDF
//!   checkpoints, shard worker threads that **micro-batch** concurrent
//!   requests per tenant into single ensemble calls (bit-identical to
//!   sequential scoring), admission control with explicit backpressure
//!   (overload refusals, queue deadlines, load-shedding to the degraded
//!   path), and a checkpoint **watcher** that hot-swaps newly written
//!   weights between batches while in-flight requests finish on the old
//!   generation.
//! * **[`client`]** — a blocking [`client::ServeClient`] with pipelining
//!   support, plus the fault-tolerant [`client::ResilientClient`]
//!   (sequence ids, bounded backoff with seeded jitter,
//!   reconnect-and-replay of the unanswered tail).
//! * **[`router`] / [`supervisor`]** — the replicated tier: a
//!   [`supervisor::Replicated`] handle spawns N replica servers, places
//!   tenants by consistent hashing, fronts them with a forwarding router,
//!   and heals replica death by fence-then-adopt failover from each
//!   tenant's IMSM sidecar.
//! * **[`chaos`]** — a deterministic fault-injection harness: a seeded
//!   plan of kills, partitions, duplicates, truncations and sidecar
//!   corruption driven through the real wire protocol, asserting typed
//!   errors (never hangs) and bit-identical post-failover verdicts.
//!
//! See DESIGN.md §"Serving layer" for the wire format tables and the
//! batching / backpressure state machine, and §"Failure model" for the
//! replication and failover contract.

pub mod chaos;
pub mod client;
pub mod mux;
pub mod router;
pub mod server;
pub mod supervisor;
pub mod wire;

pub use chaos::{ChaosEvent, ChaosPlan, ChaosReport};
pub use client::{
    Backoff, ClientError, ReloadOutcome, ResilientClient, RetryPolicy, Scored, ServeClient,
};
pub use router::{ReplicationCfg, Ring, RouterConfig};
pub use server::{
    EscalationSpec, HoldoutSpec, RungSpec, ServeConfig, ServeError, Server, TenantSpec,
};
pub use supervisor::Replicated;
pub use wire::{
    ErrorCode, PromotionVerdict, Request, Response, TenantHealth, WireError,
    WireHealthState, WireVerdict,
};
