//! `imdiff-serve` — a zero-external-dependency serving layer for fitted
//! ImDiffusion detectors.
//!
//! The crate turns the offline pipeline into an online, multi-tenant
//! anomaly-detection service built entirely on `std::net` and the
//! workspace's own threading ([`imdiff_nn::pool`]) and telemetry
//! ([`imdiff_nn::obs`]):
//!
//! * **[`wire`]** — a versioned, CRC-framed binary protocol (framing in
//!   the spirit of the IMDF checkpoint format): score requests carry raw
//!   `f32` rows with NaN-declared missing cells; responses carry typed
//!   verdicts, health reports, observability snapshots or typed errors.
//! * **[`server`]** — the [`server::Server`]: a tenant registry mapping
//!   stream ids to [`imdiffusion::StreamingMonitor`]s loaded from IMDF
//!   checkpoints, shard worker threads that **micro-batch** concurrent
//!   requests per tenant into single ensemble calls (bit-identical to
//!   sequential scoring), admission control with explicit backpressure
//!   (overload refusals, queue deadlines, load-shedding to the degraded
//!   path), and a checkpoint **watcher** that hot-swaps newly written
//!   weights between batches while in-flight requests finish on the old
//!   generation.
//! * **[`client`]** — a blocking [`client::ServeClient`] with pipelining
//!   support, used by the integration tests, the `serve_demo` example and
//!   the serve benchmarks.
//!
//! See DESIGN.md §"Serving layer" for the wire format tables and the
//! batching / backpressure state machine.

pub mod client;
pub mod server;
pub mod wire;

pub use client::{ClientError, Scored, ServeClient};
pub use server::{ServeConfig, ServeError, Server, TenantSpec};
pub use wire::{
    ErrorCode, Request, Response, TenantHealth, WireError, WireHealthState, WireVerdict,
};
