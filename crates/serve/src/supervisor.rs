//! Supervisor for a replicated serving tier: spawns the replicas,
//! monitors them with heartbeats, and on death re-places the victims'
//! tenants on survivors.
//!
//! # Failover protocol
//!
//! 1. **Detect** — a heartbeat thread pings every live replica each
//!    `heartbeat_every`; a ping that cannot connect, times out
//!    (`heartbeat_timeout`) or reads EOF is a *miss*
//!    (`serve.failover.heartbeat_misses`). `heartbeat_misses`
//!    consecutive misses declare the replica dead: its liveness flag
//!    flips immediately (so the router fails its requests fast) and the
//!    replica is handed to a dedicated **failover worker** thread.
//!    Detection never blocks on recovery — while the worker is adopting
//!    one replica's tenants (up to tens of seconds each), heartbeats to
//!    every other replica continue, so a concurrent second failure is
//!    detected at heartbeat cadence, not after the first recovery ends.
//! 2. **Fence** — on the worker, the replica's process handle is killed
//!    *before* any tenant moves. A partitioned-but-alive replica looks
//!    identical to a crashed one from out here; killing it first
//!    guarantees at most one replica ever writes a tenant's IMSM
//!    sidecar, so adoption can trust the file. The single worker also
//!    serializes concurrent failovers, so two re-placements can never
//!    race each other into adopting one tenant twice.
//! 3. **Re-place** — each of the victim's tenants (plus any tenant left
//!    stranded by an earlier failed adoption) is re-placed by the same
//!    consistent-hash ring, skipping dead replicas, and adopted via an
//!    `Adopt` frame. The adopter loads the tenant's IMSM sidecar and
//!    resumes the verdict stream at the snapshotted position —
//!    bit-identical to an uninterrupted run — or re-warms from scratch
//!    if the sidecar is missing or corrupt (counted, never fatal).
//! 4. **Expose** — only after an adoption acks does the router's
//!    assignment table flip; in the window between death and adoption,
//!    clients get typed `Unavailable` errors, never hangs.
//!
//! # Replication ahead of failure
//!
//! Adoption reads the tenant's IMDF checkpoint and IMSM sidecar from
//! their canonical paths — historically a **shared-disk** assumption:
//! if those files die with the replica's machine, the sidecar-resume
//! path is gone. With [`RouterConfig::replication`] set, a replication
//! thread copies every tenant's checkpoint + sidecar into a standby
//! directory on a cadence (and [`Replicated::replicate_now`] forces a
//! pass, for deterministic tests). During failover, any canonical file
//! found missing is restored from the standby *before* the survivor
//! adopts — so recovery proceeds from the last replicated state instead
//! of falling all the way back to a cold re-warm. Canonical files that
//! still exist always win: the standby is only a fallback, never an
//! overwrite, so enabling replication cannot perturb a
//! shared-disk-healthy failover.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use imdiff_nn::obs;
use imdiff_nn::serialize::atomic_write;
use imdiffusion::stream_path;

use crate::router::{ReplicationCfg, Ring, RouterConfig, RouterHandle, RouterShared};
use crate::server::{ServeConfig, ServeError, Server, TenantSpec};
use crate::ServeClient;

/// A running replicated tier: router + N replicas + heartbeat
/// supervision. Clients connect to [`Replicated::addr`] and never learn
/// replica addresses.
pub struct Replicated {
    shared: Arc<RouterShared>,
    ring: Ring,
    tenant_ids: Vec<String>,
    servers: Arc<Mutex<Vec<Option<Server>>>>,
    router: Option<RouterHandle>,
    heartbeat: Option<JoinHandle<()>>,
    /// Feeds dead-replica indices to the failover worker. Dropped (after
    /// the heartbeat thread joins) to let the worker exit.
    failover_tx: Option<mpsc::Sender<usize>>,
    failover_worker: Option<JoinHandle<()>>,
    /// Ahead-of-failure replication state (`None` when not configured).
    repl: Arc<Option<ReplState>>,
    replicator: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
}

/// Everything the replication pass and the failover-time restore need:
/// the configured standby directory/cadence plus each tenant's canonical
/// checkpoint path (index-aligned with the tenant roster).
pub(crate) struct ReplState {
    cfg: ReplicationCfg,
    checkpoints: Vec<PathBuf>,
}

impl ReplState {
    /// Standby copy of tenant `idx`'s checkpoint. Index-keyed (not
    /// id-keyed) so arbitrary tenant ids can never escape the standby
    /// directory or collide after sanitization.
    fn standby_checkpoint(&self, idx: usize) -> PathBuf {
        self.cfg.dir.join(format!("t{idx}.imdf"))
    }
}

/// Copies `src` over `dst` atomically. Missing/unreadable sources are
/// skipped silently — a tenant that has never snapshotted simply has no
/// sidecar yet.
fn copy_file(src: &Path, dst: &Path) -> bool {
    match std::fs::read(src) {
        Ok(bytes) => atomic_write(dst, &bytes).is_ok(),
        Err(_) => false,
    }
}

/// One replication pass: checkpoint + IMSM sidecar of every tenant into
/// the standby directory. Sources are written atomically by their
/// owners, so each copy observes a consistent file.
fn replicate_once(repl: &ReplState) {
    let _ = std::fs::create_dir_all(&repl.cfg.dir);
    for (idx, src) in repl.checkpoints.iter().enumerate() {
        let dst = repl.standby_checkpoint(idx);
        if copy_file(src, &dst) {
            obs::counter("serve.replication.copies", 1);
        }
        if copy_file(&stream_path(src), &stream_path(&dst)) {
            obs::counter("serve.replication.copies", 1);
        }
    }
}

/// Failover-time restore: put back any canonical file of tenant `idx`
/// that is missing, from its standby copy. Existing canonical files are
/// never overwritten — the standby may be older.
fn restore_from_standby(repl: &ReplState, idx: usize) {
    let canonical = &repl.checkpoints[idx];
    let standby = repl.standby_checkpoint(idx);
    let mut restored = false;
    if !canonical.exists() && copy_file(&standby, canonical) {
        restored = true;
    }
    let canonical_stream = stream_path(canonical);
    if !canonical_stream.exists() && copy_file(&stream_path(&standby), &canonical_stream)
    {
        restored = true;
    }
    if restored {
        obs::counter("serve.failover.standby_restores", 1);
    }
}

impl Replicated {
    /// Spawns `cfg.replicas` replica servers (each registered with the
    /// full tenant roster, each actively serving its ring-assigned
    /// subset), the client-facing router, and the heartbeat supervisor.
    pub fn start(
        cfg: RouterConfig,
        tenants: Vec<TenantSpec>,
    ) -> Result<Replicated, ServeError> {
        if cfg.replicas == 0 {
            return Err(ServeError::Config("need at least one replica".into()));
        }
        if tenants.is_empty() {
            return Err(ServeError::Config("no tenants to serve".into()));
        }
        let ring = Ring::new(cfg.replicas, cfg.vnodes);
        let tenant_ids: Vec<String> = tenants.iter().map(|t| t.id.clone()).collect();
        let repl: Arc<Option<ReplState>> = Arc::new(cfg.replication.clone().map(|rc| {
            ReplState {
                cfg: rc,
                checkpoints: tenants.iter().map(|t| t.checkpoint.clone()).collect(),
            }
        }));
        let all_alive = vec![true; cfg.replicas];
        let assignment: Vec<usize> = tenant_ids
            .iter()
            .map(|t| ring.place(t, &all_alive).expect("at least one replica"))
            .collect();

        let mut servers: Vec<Option<Server>> = Vec::with_capacity(cfg.replicas);
        let mut replica_addrs = Vec::with_capacity(cfg.replicas);
        for r in 0..cfg.replicas {
            let mask: Vec<bool> = assignment.iter().map(|&o| o == r).collect();
            let mut replica_cfg: ServeConfig = cfg.replica.clone();
            replica_cfg.addr = "127.0.0.1:0".into();
            match Server::start_placed(replica_cfg, tenants.clone(), &mask) {
                Ok(s) => {
                    replica_addrs.push(s.addr());
                    servers.push(Some(s));
                }
                Err(e) => {
                    for s in servers.into_iter().flatten() {
                        s.drain();
                    }
                    return Err(e);
                }
            }
        }

        let shared = Arc::new(RouterShared {
            tenant_ids: tenant_ids.clone(),
            replica_addrs,
            alive: (0..cfg.replicas).map(|_| AtomicBool::new(true)).collect(),
            assignment: RwLock::new(assignment),
            draining: AtomicBool::new(false),
            cfg,
        });
        let router = RouterHandle::start(Arc::clone(&shared))?;
        let servers = Arc::new(Mutex::new(servers));
        let stop = Arc::new(AtomicBool::new(false));
        let (failover_tx, failover_rx) = mpsc::channel::<usize>();
        let failover_worker = {
            let shared = Arc::clone(&shared);
            let servers = Arc::clone(&servers);
            let stop = Arc::clone(&stop);
            let ring = ring.clone();
            let repl = Arc::clone(&repl);
            std::thread::spawn(move || {
                while let Ok(dead) = failover_rx.recv() {
                    failover(&shared, &servers, &ring, &stop, &repl, dead);
                }
            })
        };
        let replicator = repl.as_ref().as_ref().map(|_| {
            let repl = Arc::clone(&repl);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let state = repl.as_ref().as_ref().expect("spawned only when Some");
                while !stop.load(Ordering::SeqCst) {
                    replicate_once(state);
                    // Sleep in short slices so shutdown never waits a
                    // full replication period.
                    let mut left = state.cfg.every;
                    while !left.is_zero() && !stop.load(Ordering::SeqCst) {
                        let nap = left.min(Duration::from_millis(25));
                        std::thread::sleep(nap);
                        left = left.saturating_sub(nap);
                    }
                }
            })
        });
        let heartbeat = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            let tx = failover_tx.clone();
            std::thread::spawn(move || heartbeat_main(shared, tx, stop))
        };

        Ok(Replicated {
            shared,
            ring,
            tenant_ids,
            servers,
            router: Some(router),
            heartbeat: Some(heartbeat),
            failover_tx: Some(failover_tx),
            failover_worker: Some(failover_worker),
            repl,
            replicator,
            stop,
        })
    }

    /// Forces one synchronous replication pass (checkpoints + sidecars
    /// into the standby directory). No-op unless
    /// [`RouterConfig::replication`] was configured. Public so tests and
    /// operators can pin the standby to a known state deterministically
    /// instead of racing the cadence thread.
    pub fn replicate_now(&self) {
        if let Some(state) = self.repl.as_ref() {
            replicate_once(state);
        }
    }

    /// The client-facing address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.router.as_ref().expect("router runs until shutdown").addr()
    }

    /// Which replica currently owns `tenant` (`None` while unplaced
    /// mid-failover or unknown).
    pub fn replica_of(&self, tenant: &str) -> Option<usize> {
        let idx = self.tenant_ids.iter().position(|t| t == tenant)?;
        let owner = self.shared.assignment.read().unwrap_or_else(|e| e.into_inner())[idx];
        (owner != usize::MAX).then_some(owner)
    }

    /// Whether replica `r` is still considered live.
    pub fn is_alive(&self, r: usize) -> bool {
        self.shared.alive[r].load(Ordering::SeqCst)
    }

    /// Replicas still considered live.
    pub fn live_replicas(&self) -> usize {
        self.shared.live_count()
    }

    /// Chaos hook: crash replica `r` abruptly (queued work dropped,
    /// connections severed). The supervisor is *not* told — it must
    /// notice via missed heartbeats and run the failover protocol, which
    /// is the point of the drill.
    pub fn kill_replica(&self, r: usize) {
        let taken = self.servers.lock().unwrap_or_else(|e| e.into_inner())[r].take();
        if let Some(s) = taken {
            s.kill();
        }
    }

    /// Chaos hook: partition replica `r` — the process keeps running but
    /// the network drops it. Detected and fenced exactly like a crash.
    pub fn isolate_replica(&self, r: usize) {
        let guard = self.servers.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(s) = guard[r].as_ref() {
            s.isolate();
        }
    }

    /// The consistent-hash ring (for tests asserting placement).
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// Orderly shutdown: stop supervision, drain the router, then drain
    /// every surviving replica (flushing their queued work).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.heartbeat.take() {
            let _ = h.join();
        }
        // The heartbeat's sender clone is gone; dropping ours closes the
        // channel, so the worker exits once its current (stop-gated)
        // failover finishes.
        drop(self.failover_tx.take());
        if let Some(h) = self.failover_worker.take() {
            let _ = h.join();
        }
        if let Some(h) = self.replicator.take() {
            let _ = h.join();
        }
        self.shared.draining.store(true, Ordering::SeqCst);
        if let Some(r) = self.router.take() {
            r.stop();
        }
        let servers = std::mem::take(
            &mut *self.servers.lock().unwrap_or_else(|e| e.into_inner()),
        );
        for s in servers.into_iter().flatten() {
            s.drain();
        }
    }
}

/// One heartbeat exchange: connect, ping, expect `Ok` — all within
/// `timeout`. Any failure (refused, EOF from an isolated replica's
/// accept-then-drop, timeout, garbage) is a miss.
fn ping_replica(addr: &std::net::SocketAddr, timeout: Duration) -> bool {
    let Ok(stream) = std::net::TcpStream::connect_timeout(addr, timeout) else {
        return false;
    };
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(timeout)).is_err() {
        return false;
    }
    let mut stream = stream;
    use crate::wire::{self, Request, Response};
    let req = Request::Ping;
    if wire::write_frame(&mut stream, req.kind(), &req.encode_payload()).is_err() {
        return false;
    }
    matches!(wire::read_response(&mut stream), Ok(Some(Response::Ok)))
}

/// Detection only: pings live replicas and, on `heartbeat_misses`
/// consecutive misses, flips the replica's liveness flag (requests start
/// failing fast immediately) and hands it to the failover worker. The
/// potentially slow fence/adopt work never runs here, so one replica's
/// recovery cannot blind the supervisor to a second failure.
fn heartbeat_main(
    shared: Arc<RouterShared>,
    failover_tx: mpsc::Sender<usize>,
    stop: Arc<AtomicBool>,
) {
    let n = shared.replica_addrs.len();
    let mut misses = vec![0u32; n];
    while !stop.load(Ordering::SeqCst) {
        for (r, missed) in misses.iter_mut().enumerate() {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            if !shared.alive[r].load(Ordering::SeqCst) {
                continue;
            }
            if ping_replica(&shared.replica_addrs[r], shared.cfg.heartbeat_timeout) {
                *missed = 0;
            } else {
                *missed += 1;
                obs::counter("serve.failover.heartbeat_misses", 1);
                if *missed >= shared.cfg.heartbeat_misses
                    && shared.alive[r].swap(false, Ordering::SeqCst)
                {
                    // The swap is the claim: exactly one declaration per
                    // death, even if the worker is still busy elsewhere.
                    let _ = failover_tx.send(r);
                }
            }
        }
        // Sleep in short slices so shutdown never waits a full period.
        let mut left = shared.cfg.heartbeat_every;
        while !left.is_zero() && !stop.load(Ordering::SeqCst) {
            let nap = left.min(Duration::from_millis(25));
            std::thread::sleep(nap);
            left = left.saturating_sub(nap);
        }
    }
}

/// The fence-then-re-place half of the failover protocol (detection
/// lives in [`heartbeat_main`]; the dead replica's liveness flag is
/// already cleared). Runs on the single failover worker thread, which
/// serializes overlapping failovers. Besides the victim's own tenants it
/// also retries any tenant stranded unplaced (`usize::MAX`) by an
/// earlier adoption failure — e.g. one whose chosen survivor died before
/// being detected.
fn failover(
    shared: &Arc<RouterShared>,
    servers: &Arc<Mutex<Vec<Option<Server>>>>,
    ring: &Ring,
    stop: &Arc<AtomicBool>,
    repl: &Arc<Option<ReplState>>,
    dead: usize,
) {
    obs::counter("serve.failover.failovers", 1);
    // Fence first: a partitioned replica might still be running (and
    // snapshotting); kill it so the adopter is the sidecar's sole owner.
    let taken = servers.lock().unwrap_or_else(|e| e.into_inner())[dead].take();
    if let Some(s) = taken {
        s.kill();
    }

    let alive_now: Vec<bool> = shared
        .alive
        .iter()
        .map(|a| a.load(Ordering::SeqCst))
        .collect();
    let victims: Vec<usize> = {
        let a = shared.assignment.read().unwrap_or_else(|e| e.into_inner());
        (0..a.len())
            .filter(|&i| a[i] == dead || a[i] == usize::MAX)
            .collect()
    };
    for idx in victims {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let tenant = &shared.tenant_ids[idx];
        // With replication configured, put back any canonical file the
        // dead replica took with it before the survivor tries to adopt.
        // Runs after the fence: the dead replica can no longer write the
        // canonical paths, so the restore cannot race it.
        if let Some(state) = repl.as_ref() {
            restore_from_standby(state, idx);
        }
        let target = ring.place(tenant, &alive_now);
        let adopted = match target {
            Some(nr) => adopt_tenant(&shared.replica_addrs[nr], tenant, stop).then_some(nr),
            None => None,
        };
        let mut a = shared.assignment.write().unwrap_or_else(|e| e.into_inner());
        match adopted {
            // Flip only after the adopter acked: requests in the window
            // get a typed Unavailable, and never reach a replica that
            // has not restored the tenant yet.
            Some(nr) => a[idx] = nr,
            None => {
                obs::counter("serve.failover.adoption_errors", 1);
                a[idx] = usize::MAX;
            }
        }
    }
}

/// Sends `Adopt` to the chosen survivor, with a few in-place retries —
/// the adopter may be busy restoring other tenants from the same
/// failover. The deadline is generous because a restore legitimately
/// takes a while; failure here strands the tenant (unplaced, typed
/// `Unavailable`) rather than guessing — the next failover pass retries
/// stranded tenants. Gated on `stop` so shutdown is not held hostage by
/// the retry budget.
fn adopt_tenant(addr: &std::net::SocketAddr, tenant: &str, stop: &Arc<AtomicBool>) -> bool {
    for _ in 0..3 {
        if stop.load(Ordering::SeqCst) {
            return false;
        }
        let ok = (|| -> Result<(), crate::ClientError> {
            let mut c = ServeClient::connect(addr)?;
            c.set_timeout(Some(Duration::from_secs(30)))?;
            c.adopt(tenant)
        })();
        if ok.is_ok() {
            return true;
        }
    }
    false
}
