//! Tenant-routing front door for a replicated serving tier.
//!
//! The router owns the only address clients see. Behind it sit N replica
//! servers (spawned by the [supervisor](crate::supervisor)); each tenant
//! is *placed* on exactly one replica by consistent hashing over a ring
//! of virtual nodes, and the router forwards scoring/reload/snapshot
//! frames to the owner, preserving per-connection request order end to
//! end. Control requests that do not belong to a tenant (`Ping`,
//! `ObsSnapshot`, `Drain`) answer locally; `Health` fans out to every
//! live replica and merges the per-tenant reports.
//!
//! # Data plane
//!
//! All client connections are served by **one readiness event loop**
//! (see [`crate::mux`]); forwarding is **zero-copy** — a frame is
//! validated in place ([`wire::peek_tenant`] structurally checks the
//! whole payload while borrowing the tenant id out of the read buffer)
//! and its raw bytes are written to the owner replica verbatim, never
//! re-encoded. Each replica gets **one** shared upstream connection for
//! the whole router (not one per client); replies correlate by FIFO
//! order and fan back out to client slots through the loop's completion
//! queue. Router thread count is constant in the number of clients:
//! the loop, one upstream reader per replica, and short-lived `Health`
//! fan-out helpers.
//!
//! # Failure semantics
//!
//! A replica connection that dies mid-flight fails every request queued
//! on it with a typed [`ErrorCode::Interrupted`]: the request *may or
//! may not have been applied* — the honest answer, and safe to act on
//! because a same-sequence-id replay is deduplicated server-side (a
//! fresh id would not be, which is why this case gets its own code).
//! Requests routed to a replica already marked dead are refused with
//! [`ErrorCode::Unavailable`] *before* being sent — provably not
//! applied, safe to retry under any id. Nothing hangs: upstream readers
//! poll with a short timeout and abandon ship as soon as the replica is
//! declared dead or the router drains.
//!
//! Control asymmetry: `Adopt` (activate a tenant) and `Drain` (shut the
//! tier's front door) are supervisor/operator operations; honoring them
//! from an arbitrary client would let one misbehaving peer re-place or
//! take down every tenant, so the router refuses both.
//!
//! Placement is [FNV-1a](https://en.wikipedia.org/wiki/FNV_hash) plus a
//! SplitMix64 avalanche pass over `"replica-{i}-vn{v}"` ring points — a
//! stable, seedless hash, so every process (router, supervisor, chaos
//! harness, a rebooted router) computes the identical ring. `std`'s
//! `RandomState` is banned here: a randomized hash would re-place every
//! tenant on restart and defeat sidecar-based resumption. The avalanche
//! pass matters because raw FNV-1a clusters short sequential keys (see
//! [`place_hash`]).

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use imdiff_nn::obs;

use crate::mux::{self, sys, Completions, Conn, ReplyTx};
use crate::server::{ServeConfig, ServeError};
use crate::wire::{self, kind, ErrorCode, Response, TenantHealth, WireError};
use crate::ServeClient;

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Configuration for the replicated tier (router + supervisor).
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Client-facing listen address (`127.0.0.1:0` for an ephemeral
    /// port).
    pub addr: String,
    /// Number of replica servers to spawn.
    pub replicas: usize,
    /// Virtual nodes per replica on the placement ring. More nodes
    /// spread tenants more evenly; 32 is plenty for single-digit
    /// replica counts.
    pub vnodes: usize,
    /// How often the supervisor pings each replica.
    pub heartbeat_every: Duration,
    /// Read deadline on each heartbeat exchange.
    pub heartbeat_timeout: Duration,
    /// Consecutive missed heartbeats before a replica is declared dead
    /// and failed over.
    pub heartbeat_misses: u32,
    /// Idle-connection budget for the router's client connections
    /// (`None` = never close a silent client).
    pub idle_timeout: Option<Duration>,
    /// Ahead-of-failure checkpoint replication: `Some` makes the
    /// supervisor copy every tenant's IMDF checkpoint + IMSM sidecar
    /// into a standby directory on a cadence, and restore from that
    /// standby during failover when the canonical files were lost with
    /// the dead replica. `None` (the default) preserves the
    /// shared-disk-only behavior.
    pub replication: Option<ReplicationCfg>,
    /// Template for each replica's [`ServeConfig`]; `addr` is overridden
    /// with an ephemeral port per replica.
    pub replica: ServeConfig,
}

/// Where and how often the supervisor replicates checkpoints ahead of
/// failure (see [`RouterConfig::replication`]).
#[derive(Debug, Clone)]
pub struct ReplicationCfg {
    /// Standby directory receiving the copies (created if absent).
    pub dir: std::path::PathBuf,
    /// Replication cadence.
    pub every: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            replicas: 2,
            vnodes: 32,
            heartbeat_every: Duration::from_millis(500),
            heartbeat_timeout: Duration::from_millis(250),
            heartbeat_misses: 3,
            idle_timeout: None,
            replication: None,
            replica: ServeConfig::default(),
        }
    }
}

// ---------------------------------------------------------------------------
// Consistent hashing
// ---------------------------------------------------------------------------

/// FNV-1a, 64-bit. Stable across processes and releases by
/// construction — the placement ring must never depend on a randomized
/// hasher.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// SplitMix64-style finalizer applied on top of [`fnv1a`] for ring
/// placement. Raw FNV-1a diffuses short, nearly identical keys poorly —
/// sequential tenant ids like `tenant-0..tenant-49` land in a couple of
/// tight clusters on the ring, starving whole replicas no matter how
/// many virtual nodes exist. The avalanche pass spreads those clusters
/// uniformly while staying just as stable and seedless.
fn place_hash(bytes: &[u8]) -> u64 {
    let mut h = fnv1a(bytes);
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h
}

/// A consistent-hash ring of virtual nodes over `replicas` replicas.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point, replica)`, sorted by point.
    points: Vec<(u64, usize)>,
}

impl Ring {
    /// Builds the ring: `vnodes` points per replica at
    /// `fnv1a("replica-{i}-vn{v}")`.
    pub fn new(replicas: usize, vnodes: usize) -> Ring {
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(replicas * vnodes);
        for i in 0..replicas {
            for v in 0..vnodes {
                points.push((place_hash(format!("replica-{i}-vn{v}").as_bytes()), i));
            }
        }
        points.sort_unstable();
        Ring { points }
    }

    /// Owner of `tenant` among the replicas still marked alive: the
    /// first live ring point at or after the tenant's hash, wrapping.
    /// `None` when every replica is dead. Dead replicas' tenants thus
    /// fail over to the *next* point on the ring, while tenants on
    /// surviving replicas never move — the property that bounds failover
    /// blast radius.
    pub fn place(&self, tenant: &str, alive: &[bool]) -> Option<usize> {
        if !alive.iter().any(|a| *a) {
            return None;
        }
        let h = place_hash(tenant.as_bytes());
        let start = self.points.partition_point(|&(p, _)| p < h);
        let n = self.points.len();
        for k in 0..n {
            let (_, r) = self.points[(start + k) % n];
            if alive[r] {
                return Some(r);
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Shared state
// ---------------------------------------------------------------------------

/// State shared between the router's connection threads and the
/// supervisor (which flips `alive` and rewrites `assignment` during
/// failover).
pub(crate) struct RouterShared {
    pub(crate) cfg: RouterConfig,
    /// Tenant ids, index-aligned with `assignment`.
    pub(crate) tenant_ids: Vec<String>,
    /// Listen address of each replica.
    pub(crate) replica_addrs: Vec<SocketAddr>,
    /// Liveness per replica; cleared by the supervisor on failover.
    pub(crate) alive: Vec<AtomicBool>,
    /// Current owner replica per tenant. `usize::MAX` = unplaced (all
    /// replicas dead); requests answer `Unavailable`.
    pub(crate) assignment: RwLock<Vec<usize>>,
    pub(crate) draining: AtomicBool,
}

impl RouterShared {
    fn tenant_index(&self, id: &str) -> Option<usize> {
        self.tenant_ids.iter().position(|t| t == id)
    }

    pub(crate) fn live_count(&self) -> usize {
        self.alive
            .iter()
            .filter(|a| a.load(Ordering::SeqCst))
            .count()
    }
}

// ---------------------------------------------------------------------------
// Upstream (router -> replica) connections
// ---------------------------------------------------------------------------

/// One **shared** forwarding connection from the router to one replica,
/// used by every client connection (forwards happen only on the event
/// loop thread, so writes never interleave). Replies come back in
/// request order, so a FIFO of [`ReplyTx`] handles is the whole
/// correlation state. The reader thread owns the receive half; on any
/// loss it marks the upstream dead *then* drains the FIFO under the
/// same lock that guards enqueueing — a new request can never slip into
/// a queue that is being failed, so none is silently dropped.
struct Upstream {
    writer: TcpStream,
    pending: Arc<Mutex<VecDeque<ReplyTx>>>,
    dead: Arc<AtomicBool>,
    reader: Option<JoinHandle<()>>,
}

impl Upstream {
    fn connect(
        shared: &Arc<RouterShared>,
        replica: usize,
    ) -> Result<Upstream, WireError> {
        let stream = TcpStream::connect_timeout(
            &shared.replica_addrs[replica],
            Duration::from_secs(2),
        )
        .map_err(|e| WireError::Io(e.to_string()))?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
        let writer = stream.try_clone().map_err(|e| WireError::Io(e.to_string()))?;
        let pending: Arc<Mutex<VecDeque<ReplyTx>>> = Arc::default();
        let dead = Arc::new(AtomicBool::new(false));
        let reader = {
            let shared = Arc::clone(shared);
            let pending = Arc::clone(&pending);
            let dead = Arc::clone(&dead);
            let mut stream = stream;
            std::thread::spawn(move || {
                loop {
                    match wire::read_response(&mut stream) {
                        Ok(Some(resp)) => {
                            let tx = pending
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .pop_front();
                            if let Some(tx) = tx {
                                tx.send(resp);
                            }
                        }
                        Ok(None) => break, // replica closed
                        Err(WireError::Idle) => {
                            if shared.draining.load(Ordering::SeqCst)
                                || !shared.alive[replica].load(Ordering::SeqCst)
                            {
                                break;
                            }
                        }
                        Err(_) => break,
                    }
                }
                // Fail everything still queued, atomically with refusing
                // new entries.
                let drained: Vec<_> = {
                    let mut q = pending.lock().unwrap_or_else(|e| e.into_inner());
                    dead.store(true, Ordering::SeqCst);
                    q.drain(..).collect()
                };
                for tx in drained {
                    tx.send(Response::Error {
                        code: ErrorCode::Interrupted,
                        message: "replica connection lost; request may or may not \
                                  have been applied — retry with the same sequence id"
                            .into(),
                    });
                }
            })
        };
        Ok(Upstream {
            writer,
            pending,
            dead,
            reader: Some(reader),
        })
    }

    /// Forwards one pre-validated frame **verbatim** (zero-copy: `raw`
    /// is borrowed straight out of the client connection's read
    /// buffer), registering `tx` for its reply. Must only be called
    /// from the event loop thread — the enqueue/write pair is not
    /// atomic against concurrent forwarders.
    fn forward(&mut self, raw: &[u8], tx: ReplyTx) -> ForwardOutcome {
        {
            let mut q = self.pending.lock().unwrap_or_else(|e| e.into_inner());
            if self.dead.load(Ordering::SeqCst) {
                return ForwardOutcome::NotEnqueued(tx);
            }
            q.push_back(tx);
        }
        // A write failure after enqueueing is fine: the socket is broken,
        // so the reader is about to drain the queue with typed errors.
        use std::io::Write;
        if self.writer.write_all(raw).and_then(|()| self.writer.flush()).is_ok() {
            ForwardOutcome::Sent
        } else {
            ForwardOutcome::EnqueuedButBroken
        }
    }
}

/// What became of a forwarded request's reply handle.
enum ForwardOutcome {
    /// Request on the wire; the reader will answer the handle.
    Sent,
    /// Upstream was already dead; the handle was never enqueued — safe
    /// to retry on a fresh connection (returned to the caller).
    NotEnqueued(ReplyTx),
    /// The write failed after enqueueing; the reader's drain will answer
    /// the handle with a typed error. Do NOT retry — that would
    /// double-answer.
    EnqueuedButBroken,
}

impl Drop for Upstream {
    fn drop(&mut self) {
        let _ = self.writer.shutdown(std::net::Shutdown::Both);
        if let Some(r) = self.reader.take() {
            let _ = r.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Client-facing connections
// ---------------------------------------------------------------------------

/// Poll tick for the router loop, mirroring the server's.
const POLL_TICK_MS: i32 = 25;

/// The router's data plane: one thread multiplexing the client-facing
/// listener and every client connection, with one shared [`Upstream`]
/// per replica. Frames are validated in place and forwarded verbatim;
/// replies fan back in through the completion queue and flush to each
/// client in strict request order.
fn router_loop_main(
    shared: Arc<RouterShared>,
    completions: Arc<Completions>,
    listener: TcpListener,
) {
    let _ = listener.set_nonblocking(true);
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_id: u64 = 1;
    let mut upstreams: Vec<Option<Upstream>> = Vec::new();
    upstreams.resize_with(shared.replica_addrs.len(), || None);
    let mut fds: Vec<sys::PollFd> = Vec::new();
    let mut fd_ids: Vec<u64> = Vec::new();

    loop {
        let draining = shared.draining.load(Ordering::SeqCst);
        if draining {
            for c in conns.values_mut() {
                c.closing = true;
            }
        }

        fds.clear();
        fd_ids.clear();
        fds.push(sys::PollFd::new(completions.poll_fd(), sys::POLLIN));
        let accepting = !draining;
        if accepting {
            fds.push(sys::PollFd::new(mux::raw_fd(&listener), sys::POLLIN));
        }
        let base = fds.len();
        for c in conns.values() {
            let mut ev = 0i16;
            if c.wants_read() {
                ev |= sys::POLLIN;
            }
            if c.wants_write() {
                ev |= sys::POLLOUT;
            }
            fds.push(sys::PollFd::new(mux::raw_fd(&c.stream), ev));
            fd_ids.push(c.id);
        }
        if sys::poll_fds(&mut fds, POLL_TICK_MS).is_err() {
            continue;
        }

        for comp in completions.drain() {
            if let Some(c) = conns.get_mut(&comp.conn) {
                c.push_response(comp.slot, comp.resp);
            }
        }

        if accepting && fds[base - 1].readable() {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        obs::counter("serve.router.connections", 1);
                        if let Ok(conn) = Conn::new(stream, next_id) {
                            conns.insert(next_id, conn);
                            next_id += 1;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }

        for (i, fd) in fds[base..].iter().enumerate() {
            if !fd.readable() {
                continue;
            }
            let Some(c) = conns.get_mut(&fd_ids[i]) else {
                continue;
            };
            let _ = c.fill();
            route_conn_frames(&shared, &completions, &mut upstreams, c);
        }

        for comp in completions.drain() {
            if let Some(c) = conns.get_mut(&comp.conn) {
                c.push_response(comp.slot, comp.resp);
            }
        }

        for c in conns.values_mut() {
            if c.wants_write() && c.flush().is_err() {
                c.dead = true;
            }
        }

        for c in conns.values_mut() {
            if c.dead || c.closing || c.eof {
                continue;
            }
            match c.frame_started {
                None => {
                    if let Some(budget) = shared.cfg.idle_timeout {
                        if c.last_frame.elapsed() >= budget {
                            obs::counter("serve.idle_closed", 1);
                            c.closing = true;
                        }
                    }
                }
                Some(started) => {
                    if let Some(budget) = shared.cfg.replica.frame_deadline {
                        if started.elapsed() >= budget {
                            obs::counter("serve.frame_stalled_closed", 1);
                            c.eof = true;
                            c.closing = true;
                        }
                    }
                }
            }
        }

        let done: Vec<u64> = conns
            .values()
            .filter(|c| c.dead || ((c.eof || c.closing) && c.fully_flushed()))
            .map(|c| c.id)
            .collect();
        for id in done {
            if let Some(c) = conns.remove(&id) {
                let _ = c.stream.shutdown(std::net::Shutdown::Both);
            }
        }

        if draining && conns.is_empty() {
            // Dropping the upstreams shuts them down and joins their
            // readers, which fail any still-pending replies.
            return;
        }
    }
}

/// Routes every complete frame at the head of `c`'s read buffer.
fn route_conn_frames(
    shared: &Arc<RouterShared>,
    completions: &Arc<Completions>,
    upstreams: &mut [Option<Upstream>],
    c: &mut Conn,
) {
    loop {
        if c.closing {
            return;
        }
        match c.scan() {
            Ok(None) => return,
            Ok(Some(frame)) => {
                obs::counter("serve.router.requests", 1);
                let slot = c.assign_slot();
                let tx = ReplyTx::slot(completions, c.id, slot);
                let raw = c.frame_bytes(&frame);
                let payload = &raw[wire::HEADER_LEN..];
                match route_frame(shared, upstreams, frame.kind, payload, raw, tx) {
                    Ok(()) => c.consume(frame.total),
                    Err(err) => {
                        // The slot was already assigned; its ReplyTx
                        // answers it (send or drop), so only mark the
                        // stream unreliable here.
                        let _ = err;
                        c.eof = true;
                        c.closing = true;
                        return;
                    }
                }
            }
            Err(err) => {
                c.push_inline(Response::Error {
                    code: ErrorCode::BadRequest,
                    message: err.to_string(),
                });
                c.eof = true;
                c.closing = true;
                return;
            }
        }
    }
}

/// Dispatches one validated-or-about-to-be-validated client frame:
/// answer locally, fan out, or forward the raw bytes to the tenant's
/// owner replica. `Err` means the frame was malformed (the reply handle
/// still answers its slot with `BadRequest`) and the connection should
/// close.
fn route_frame(
    shared: &Arc<RouterShared>,
    upstreams: &mut [Option<Upstream>],
    kind_byte: u8,
    payload: &[u8],
    raw: &[u8],
    tx: ReplyTx,
) -> Result<(), WireError> {
    // Structural validation + zero-copy tenant peek. A frame that
    // passes cannot fail decode at the replica — required before
    // forwarding on a *shared* upstream, where a poison frame would
    // sever every client's in-flight requests at once.
    let tenant = match wire::peek_tenant(kind_byte, payload) {
        Ok(t) => t,
        Err(err) => {
            tx.send(Response::Error {
                code: ErrorCode::BadRequest,
                message: err.to_string(),
            });
            return Err(err);
        }
    };
    match kind_byte {
        kind::PING => tx.send(Response::Ok),
        // Draining shuts the whole tier's front door for every tenant —
        // an operator decision (`Replicated::shutdown`), not something
        // any connected client may trigger. Honoring it here would let a
        // single misbehaving client take down serving for everyone.
        kind::DRAIN => tx.send(Response::Error {
            code: ErrorCode::BadRequest,
            message: "Drain is an operator operation; the router does not \
                      accept it from clients"
                .into(),
        }),
        kind::OBS_SNAPSHOT => tx.send(Response::ObsJson {
            json: obs::snapshot_json(),
        }),
        kind::ADOPT => tx.send(Response::Error {
            code: ErrorCode::BadRequest,
            message: "Adopt is an internal supervisor operation".into(),
        }),
        kind::HEALTH => {
            // Fans out over blocking client connections with multi-second
            // budgets — far too slow for the loop; answer off-thread
            // through the completion queue.
            let shared = Arc::clone(shared);
            std::thread::spawn(move || tx.send(merged_health(&shared)));
        }
        _ => {
            let tenant = tenant.expect("peek_tenant yields a tenant for routable kinds");
            let Some(idx) = shared.tenant_index(tenant) else {
                tx.send(Response::Error {
                    code: ErrorCode::UnknownTenant,
                    message: format!("no tenant {tenant:?}"),
                });
                return Ok(());
            };
            let owner = shared.assignment.read().unwrap_or_else(|e| e.into_inner())[idx];
            if owner == usize::MAX || !shared.alive[owner].load(Ordering::SeqCst) {
                tx.send(Response::Error {
                    code: ErrorCode::Unavailable,
                    message: format!("tenant {tenant:?}: failover in progress"),
                });
                return Ok(());
            }
            forward_to(shared, upstreams, owner, raw, tx);
        }
    }
    Ok(())
}

/// Forwards raw frame bytes to `replica` over the shared upstream,
/// dialing or re-dialing it as needed. At most one re-dial per request:
/// a second failure means the replica is really gone and the client
/// gets the typed `Unavailable` now rather than a blocking retry loop
/// inside the router. (Dialing is blocking but loopback-fast: a dead
/// replica refuses the connection immediately.)
fn forward_to(
    shared: &Arc<RouterShared>,
    upstreams: &mut [Option<Upstream>],
    replica: usize,
    raw: &[u8],
    tx: ReplyTx,
) {
    let mut tx = tx;
    for _attempt in 0..2 {
        if upstreams[replica]
            .as_ref()
            .map(|u| u.dead.load(Ordering::SeqCst))
            .unwrap_or(true)
        {
            upstreams[replica] = None;
            match Upstream::connect(shared, replica) {
                Ok(u) => upstreams[replica] = Some(u),
                Err(_) => continue,
            }
        }
        let up = upstreams[replica].as_mut().expect("just ensured");
        match up.forward(raw, tx) {
            ForwardOutcome::Sent => return,
            ForwardOutcome::EnqueuedButBroken => return, // reader answers tx
            ForwardOutcome::NotEnqueued(back) => {
                tx = back;
                upstreams[replica] = None;
            }
        }
    }
    tx.send(Response::Error {
        code: ErrorCode::Unavailable,
        message: "replica unreachable; request was not sent — safe to retry".into(),
    });
}

/// Fans `Health` out to every live replica and merges the reports,
/// sorted by tenant id. Replicas that fail to answer are skipped — their
/// tenants are mid-failover and will reappear once adopted.
fn merged_health(shared: &Arc<RouterShared>) -> Response {
    let mut tenants: Vec<TenantHealth> = Vec::new();
    for (i, addr) in shared.replica_addrs.iter().enumerate() {
        if !shared.alive[i].load(Ordering::SeqCst) {
            continue;
        }
        let report = (|| -> Result<Vec<TenantHealth>, crate::ClientError> {
            let mut c = ServeClient::connect(addr)?;
            c.set_timeout(Some(Duration::from_secs(2)))?;
            c.health()
        })();
        if let Ok(mut r) = report {
            tenants.append(&mut r);
        }
    }
    tenants.sort_by(|a, b| a.id.cmp(&b.id));
    tenants.dedup_by(|a, b| a.id == b.id);
    Response::Health { tenants }
}

// ---------------------------------------------------------------------------
// Router lifecycle
// ---------------------------------------------------------------------------

/// The router's event loop + handle. Owned by the supervisor's
/// [`Replicated`](crate::supervisor::Replicated) tier.
pub(crate) struct RouterHandle {
    pub(crate) shared: Arc<RouterShared>,
    addr: SocketAddr,
    completions: Arc<Completions>,
    loop_thread: Option<JoinHandle<()>>,
}

impl RouterHandle {
    /// Binds the client-facing listener and starts the event loop.
    pub(crate) fn start(shared: Arc<RouterShared>) -> Result<RouterHandle, ServeError> {
        let listener = TcpListener::bind(&shared.cfg.addr)
            .map_err(|e| ServeError::Io(e.to_string()))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Io(e.to_string()))?;
        let completions =
            Completions::new().map_err(|e| ServeError::Io(e.to_string()))?;
        let loop_thread = {
            let shared = Arc::clone(&shared);
            let completions = Arc::clone(&completions);
            std::thread::spawn(move || router_loop_main(shared, completions, listener))
        };
        Ok(RouterHandle {
            shared,
            addr,
            completions,
            loop_thread: Some(loop_thread),
        })
    }

    pub(crate) fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, flushes in-flight replies and joins the loop
    /// (which drops the shared upstreams, failing anything still
    /// pending with a typed error).
    pub(crate) fn stop(mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.completions.wake();
        if let Some(l) = self.loop_thread.take() {
            let _ = l.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_is_stable() {
        // Reference vectors — these must never change, or restarted
        // routers would re-place every tenant.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"replica-0-vn0"), fnv1a(b"replica-0-vn0"));
        assert_ne!(fnv1a(b"replica-0-vn0"), fnv1a(b"replica-1-vn0"));
        // The finalized placement hash is pinned too — it is what the
        // ring actually sorts on.
        assert_eq!(place_hash(b""), 0xf52a_15e9_a9b5_e89b);
        assert_eq!(place_hash(b"a"), 0x02c0_bdbf_4814_20f8);
    }

    #[test]
    fn placement_is_stable_and_minimal() {
        let ring = Ring::new(3, 32);
        let tenants: Vec<String> = (0..50).map(|i| format!("tenant-{i}")).collect();
        let all = vec![true, true, true];
        let before: Vec<_> = tenants.iter().map(|t| ring.place(t, &all)).collect();
        // Deterministic: same ring, same answer.
        let again: Vec<_> = tenants.iter().map(|t| ring.place(t, &all)).collect();
        assert_eq!(before, again);
        // All three replicas get work (32 vnodes spread 50 tenants).
        for r in 0..3 {
            assert!(before.contains(&Some(r)), "replica {r} unused");
        }
        // Kill replica 1: its tenants move, everyone else stays put.
        let alive = vec![true, false, true];
        for (t, owner) in tenants.iter().zip(&before) {
            let now = ring.place(t, &alive);
            match owner {
                Some(1) => assert!(matches!(now, Some(0) | Some(2))),
                other => assert_eq!(&now, other, "tenant {t} moved needlessly"),
            }
        }
        // All dead: nowhere to place.
        assert_eq!(ring.place("tenant-0", &[false, false, false]), None);
    }

    /// `Drain` and `Adopt` are operator/supervisor operations: a client
    /// sending either gets a typed refusal and the tier-wide state is
    /// untouched — one misbehaving client must not shut the front door
    /// for every tenant.
    #[test]
    fn router_refuses_drain_and_adopt_from_clients() {
        let shared = Arc::new(RouterShared {
            cfg: RouterConfig::default(),
            tenant_ids: vec!["t0".into()],
            replica_addrs: Vec::new(),
            alive: Vec::new(),
            assignment: RwLock::new(vec![usize::MAX]),
            draining: AtomicBool::new(false),
        });
        let mut upstreams: Vec<Option<Upstream>> = Vec::new();
        let send = |req: &crate::wire::Request,
                    upstreams: &mut [Option<Upstream>]|
         -> Response {
            let frame = req.to_bytes();
            let (tx, rx) = std::sync::mpsc::channel();
            route_frame(
                &shared,
                upstreams,
                frame[3],
                &frame[wire::HEADER_LEN..],
                &frame,
                ReplyTx::chan(tx),
            )
            .expect("well-formed frame");
            rx.recv().expect("answered inline")
        };
        use crate::wire::Request;
        for req in [Request::Drain, Request::Adopt { tenant: "t0".into() }] {
            match send(&req, &mut upstreams) {
                Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
                other => panic!("privileged request was honored: {other:?}"),
            }
        }
        assert!(
            !shared.draining.load(Ordering::SeqCst),
            "a client Drain flipped the tier-wide draining flag"
        );
        // Harmless control requests still answer.
        assert_eq!(send(&Request::Ping, &mut upstreams), Response::Ok);
    }

    #[test]
    fn ring_skips_dead_replicas_consistently() {
        let ring = Ring::new(4, 16);
        let alive = vec![false, true, false, true];
        for i in 0..100 {
            let t = format!("t{i}");
            let placed = ring.place(&t, &alive).unwrap();
            assert!(placed == 1 || placed == 3);
        }
    }
}
