//! Tenant-routing front door for a replicated serving tier.
//!
//! The router owns the only address clients see. Behind it sit N replica
//! servers (spawned by the [supervisor](crate::supervisor)); each tenant
//! is *placed* on exactly one replica by consistent hashing over a ring
//! of virtual nodes, and the router forwards scoring/reload/snapshot
//! frames to the owner, preserving per-connection request order end to
//! end. Control requests that do not belong to a tenant (`Ping`,
//! `ObsSnapshot`, `Drain`) answer locally; `Health` fans out to every
//! live replica and merges the per-tenant reports.
//!
//! # Failure semantics
//!
//! A replica connection that dies mid-flight fails every request queued
//! on it with a typed [`ErrorCode::Interrupted`]: the request *may or
//! may not have been applied* — the honest answer, and safe to act on
//! because a same-sequence-id replay is deduplicated server-side (a
//! fresh id would not be, which is why this case gets its own code).
//! Requests routed to a replica already marked dead are refused with
//! [`ErrorCode::Unavailable`] *before* being sent — provably not
//! applied, safe to retry under any id. Nothing hangs: upstream readers
//! poll with a short timeout and abandon ship as soon as the replica is
//! declared dead or the router drains.
//!
//! Control asymmetry: `Adopt` (activate a tenant) and `Drain` (shut the
//! tier's front door) are supervisor/operator operations; honoring them
//! from an arbitrary client would let one misbehaving peer re-place or
//! take down every tenant, so the router refuses both.
//!
//! Placement is [FNV-1a](https://en.wikipedia.org/wiki/FNV_hash) plus a
//! SplitMix64 avalanche pass over `"replica-{i}-vn{v}"` ring points — a
//! stable, seedless hash, so every process (router, supervisor, chaos
//! harness, a rebooted router) computes the identical ring. `std`'s
//! `RandomState` is banned here: a randomized hash would re-place every
//! tenant on restart and defeat sidecar-based resumption. The avalanche
//! pass matters because raw FNV-1a clusters short sequential keys (see
//! [`place_hash`]).

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use imdiff_nn::obs;

use crate::server::{ServeConfig, ServeError};
use crate::wire::{self, ErrorCode, Request, Response, TenantHealth, WireError};
use crate::ServeClient;

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Configuration for the replicated tier (router + supervisor).
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Client-facing listen address (`127.0.0.1:0` for an ephemeral
    /// port).
    pub addr: String,
    /// Number of replica servers to spawn.
    pub replicas: usize,
    /// Virtual nodes per replica on the placement ring. More nodes
    /// spread tenants more evenly; 32 is plenty for single-digit
    /// replica counts.
    pub vnodes: usize,
    /// How often the supervisor pings each replica.
    pub heartbeat_every: Duration,
    /// Read deadline on each heartbeat exchange.
    pub heartbeat_timeout: Duration,
    /// Consecutive missed heartbeats before a replica is declared dead
    /// and failed over.
    pub heartbeat_misses: u32,
    /// Idle-connection budget for the router's client connections
    /// (`None` = never close a silent client).
    pub idle_timeout: Option<Duration>,
    /// Template for each replica's [`ServeConfig`]; `addr` is overridden
    /// with an ephemeral port per replica.
    pub replica: ServeConfig,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            replicas: 2,
            vnodes: 32,
            heartbeat_every: Duration::from_millis(500),
            heartbeat_timeout: Duration::from_millis(250),
            heartbeat_misses: 3,
            idle_timeout: None,
            replica: ServeConfig::default(),
        }
    }
}

// ---------------------------------------------------------------------------
// Consistent hashing
// ---------------------------------------------------------------------------

/// FNV-1a, 64-bit. Stable across processes and releases by
/// construction — the placement ring must never depend on a randomized
/// hasher.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// SplitMix64-style finalizer applied on top of [`fnv1a`] for ring
/// placement. Raw FNV-1a diffuses short, nearly identical keys poorly —
/// sequential tenant ids like `tenant-0..tenant-49` land in a couple of
/// tight clusters on the ring, starving whole replicas no matter how
/// many virtual nodes exist. The avalanche pass spreads those clusters
/// uniformly while staying just as stable and seedless.
fn place_hash(bytes: &[u8]) -> u64 {
    let mut h = fnv1a(bytes);
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h
}

/// A consistent-hash ring of virtual nodes over `replicas` replicas.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point, replica)`, sorted by point.
    points: Vec<(u64, usize)>,
}

impl Ring {
    /// Builds the ring: `vnodes` points per replica at
    /// `fnv1a("replica-{i}-vn{v}")`.
    pub fn new(replicas: usize, vnodes: usize) -> Ring {
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(replicas * vnodes);
        for i in 0..replicas {
            for v in 0..vnodes {
                points.push((place_hash(format!("replica-{i}-vn{v}").as_bytes()), i));
            }
        }
        points.sort_unstable();
        Ring { points }
    }

    /// Owner of `tenant` among the replicas still marked alive: the
    /// first live ring point at or after the tenant's hash, wrapping.
    /// `None` when every replica is dead. Dead replicas' tenants thus
    /// fail over to the *next* point on the ring, while tenants on
    /// surviving replicas never move — the property that bounds failover
    /// blast radius.
    pub fn place(&self, tenant: &str, alive: &[bool]) -> Option<usize> {
        if !alive.iter().any(|a| *a) {
            return None;
        }
        let h = place_hash(tenant.as_bytes());
        let start = self.points.partition_point(|&(p, _)| p < h);
        let n = self.points.len();
        for k in 0..n {
            let (_, r) = self.points[(start + k) % n];
            if alive[r] {
                return Some(r);
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Shared state
// ---------------------------------------------------------------------------

/// State shared between the router's connection threads and the
/// supervisor (which flips `alive` and rewrites `assignment` during
/// failover).
pub(crate) struct RouterShared {
    pub(crate) cfg: RouterConfig,
    /// Tenant ids, index-aligned with `assignment`.
    pub(crate) tenant_ids: Vec<String>,
    /// Listen address of each replica.
    pub(crate) replica_addrs: Vec<SocketAddr>,
    /// Liveness per replica; cleared by the supervisor on failover.
    pub(crate) alive: Vec<AtomicBool>,
    /// Current owner replica per tenant. `usize::MAX` = unplaced (all
    /// replicas dead); requests answer `Unavailable`.
    pub(crate) assignment: RwLock<Vec<usize>>,
    pub(crate) draining: AtomicBool,
}

impl RouterShared {
    fn tenant_index(&self, id: &str) -> Option<usize> {
        self.tenant_ids.iter().position(|t| t == id)
    }

    pub(crate) fn live_count(&self) -> usize {
        self.alive
            .iter()
            .filter(|a| a.load(Ordering::SeqCst))
            .count()
    }
}

// ---------------------------------------------------------------------------
// Upstream (router -> replica) connections
// ---------------------------------------------------------------------------

/// One forwarding connection from a client connection to one replica.
/// Replies come back in request order, so a FIFO of reply senders is the
/// whole correlation state. The reader thread owns the receive half; on
/// any loss it marks the upstream dead *then* drains the FIFO under the
/// same lock that guards enqueueing — a new request can never slip into
/// a queue that is being failed, so none is silently dropped.
struct Upstream {
    writer: TcpStream,
    pending: Arc<Mutex<VecDeque<mpsc::Sender<Response>>>>,
    dead: Arc<AtomicBool>,
    reader: Option<JoinHandle<()>>,
}

impl Upstream {
    fn connect(
        shared: &Arc<RouterShared>,
        replica: usize,
    ) -> Result<Upstream, WireError> {
        let stream = TcpStream::connect_timeout(
            &shared.replica_addrs[replica],
            Duration::from_secs(2),
        )
        .map_err(|e| WireError::Io(e.to_string()))?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
        let writer = stream.try_clone().map_err(|e| WireError::Io(e.to_string()))?;
        let pending: Arc<Mutex<VecDeque<mpsc::Sender<Response>>>> = Arc::default();
        let dead = Arc::new(AtomicBool::new(false));
        let reader = {
            let shared = Arc::clone(shared);
            let pending = Arc::clone(&pending);
            let dead = Arc::clone(&dead);
            let mut stream = stream;
            std::thread::spawn(move || {
                loop {
                    match wire::read_response(&mut stream) {
                        Ok(Some(resp)) => {
                            let tx = pending
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .pop_front();
                            if let Some(tx) = tx {
                                let _ = tx.send(resp);
                            }
                        }
                        Ok(None) => break, // replica closed
                        Err(WireError::Idle) => {
                            if shared.draining.load(Ordering::SeqCst)
                                || !shared.alive[replica].load(Ordering::SeqCst)
                            {
                                break;
                            }
                        }
                        Err(_) => break,
                    }
                }
                // Fail everything still queued, atomically with refusing
                // new entries.
                let drained: Vec<_> = {
                    let mut q = pending.lock().unwrap_or_else(|e| e.into_inner());
                    dead.store(true, Ordering::SeqCst);
                    q.drain(..).collect()
                };
                for tx in drained {
                    let _ = tx.send(Response::Error {
                        code: ErrorCode::Interrupted,
                        message: "replica connection lost; request may or may not \
                                  have been applied — retry with the same sequence id"
                            .into(),
                    });
                }
            })
        };
        Ok(Upstream {
            writer,
            pending,
            dead,
            reader: Some(reader),
        })
    }

    /// Forwards one request, registering `tx` for its reply.
    fn forward(&mut self, req: &Request, tx: mpsc::Sender<Response>) -> ForwardOutcome {
        {
            let mut q = self.pending.lock().unwrap_or_else(|e| e.into_inner());
            if self.dead.load(Ordering::SeqCst) {
                return ForwardOutcome::NotEnqueued;
            }
            q.push_back(tx);
        }
        // A write failure after enqueueing is fine: the socket is broken,
        // so the reader is about to drain the queue with typed errors.
        if wire::write_frame(&mut self.writer, req.kind(), &req.encode_payload()).is_ok() {
            ForwardOutcome::Sent
        } else {
            ForwardOutcome::EnqueuedButBroken
        }
    }
}

/// What became of a forwarded request's reply sender.
enum ForwardOutcome {
    /// Request on the wire; the reader will answer `tx`.
    Sent,
    /// Upstream was already dead; `tx` was never enqueued — safe to
    /// retry on a fresh connection.
    NotEnqueued,
    /// The write failed after enqueueing; the reader's drain will answer
    /// `tx` with a typed error. Do NOT retry — that would double-answer.
    EnqueuedButBroken,
}

impl Drop for Upstream {
    fn drop(&mut self) {
        let _ = self.writer.shutdown(std::net::Shutdown::Both);
        if let Some(r) = self.reader.take() {
            let _ = r.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Client-facing connections
// ---------------------------------------------------------------------------

/// Serves one client connection on the router. Mirrors the replica
/// server's design: the reader dispatches each frame and queues a
/// one-shot reply receiver; a writer thread sends replies back in strict
/// request order.
fn router_connection_main(shared: Arc<RouterShared>, stream: TcpStream) {
    obs::counter("serve.router.connections", 1);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };

    let (pending_tx, pending_rx) = mpsc::channel::<mpsc::Receiver<Response>>();
    let reply_budget = shared.cfg.replica.deadline * 2 + Duration::from_secs(5);
    let writer = std::thread::spawn(move || {
        let mut w = std::io::BufWriter::new(write_half);
        while let Ok(rx) = pending_rx.recv() {
            let resp = rx.recv_timeout(reply_budget).unwrap_or(Response::Error {
                code: ErrorCode::Interrupted,
                message: "reply lost in the routing tier; request may or may not \
                          have been applied — retry with the same sequence id"
                    .into(),
            });
            if wire::write_frame(&mut w, resp.kind(), &resp.encode_payload()).is_err() {
                break;
            }
        }
    });

    // Upstreams are lazily dialed per replica and retired when they die
    // or when the replica is declared dead.
    let mut upstreams: Vec<Option<Upstream>> = Vec::new();
    upstreams.resize_with(shared.replica_addrs.len(), || None);

    let mut reader = stream;
    let mut last_frame = Instant::now();
    loop {
        let req = match wire::read_request(&mut reader) {
            Ok(Some(req)) => {
                last_frame = Instant::now();
                req
            }
            Ok(None) => break,
            Err(WireError::Idle) => {
                if shared.draining.load(Ordering::SeqCst) {
                    break;
                }
                if let Some(budget) = shared.cfg.idle_timeout {
                    if last_frame.elapsed() >= budget {
                        obs::counter("serve.idle_closed", 1);
                        break;
                    }
                }
                continue;
            }
            Err(err) => {
                let (tx, rx) = mpsc::channel();
                let _ = tx.send(Response::Error {
                    code: ErrorCode::BadRequest,
                    message: err.to_string(),
                });
                let _ = pending_tx.send(rx);
                break;
            }
        };
        obs::counter("serve.router.requests", 1);
        let (tx, rx) = mpsc::channel();
        route(&shared, &mut upstreams, req, &tx);
        if pending_tx.send(rx).is_err() {
            break;
        }
    }
    drop(pending_tx);
    let _ = writer.join();
}

/// Dispatches one client request: answer locally, fan out, or forward to
/// the tenant's owner replica.
fn route(
    shared: &Arc<RouterShared>,
    upstreams: &mut [Option<Upstream>],
    req: Request,
    tx: &mpsc::Sender<Response>,
) {
    let inline = |resp: Response| {
        let _ = tx.send(resp);
    };
    let tenant_of = |req: &Request| -> Option<String> {
        match req {
            Request::Score { tenant, .. }
            | Request::Reload { tenant }
            | Request::Snapshot { tenant } => Some(tenant.clone()),
            _ => None,
        }
    };
    match &req {
        Request::Ping => inline(Response::Ok),
        // Draining shuts the whole tier's front door for every tenant —
        // an operator decision (`Replicated::shutdown`), not something
        // any connected client may trigger. Honoring it here would let a
        // single misbehaving client take down serving for everyone.
        Request::Drain => inline(Response::Error {
            code: ErrorCode::BadRequest,
            message: "Drain is an operator operation; the router does not \
                      accept it from clients"
                .into(),
        }),
        Request::ObsSnapshot => inline(Response::ObsJson {
            json: obs::snapshot_json(),
        }),
        Request::Adopt { .. } => inline(Response::Error {
            code: ErrorCode::BadRequest,
            message: "Adopt is an internal supervisor operation".into(),
        }),
        Request::Health => inline(merged_health(shared)),
        _ => {
            let Some(tenant) = tenant_of(&req) else {
                return inline(Response::Error {
                    code: ErrorCode::BadRequest,
                    message: "request kind not routable".into(),
                });
            };
            let Some(idx) = shared.tenant_index(&tenant) else {
                return inline(Response::Error {
                    code: ErrorCode::UnknownTenant,
                    message: format!("no tenant {tenant:?}"),
                });
            };
            let owner = shared.assignment.read().unwrap_or_else(|e| e.into_inner())[idx];
            if owner == usize::MAX || !shared.alive[owner].load(Ordering::SeqCst) {
                return inline(Response::Error {
                    code: ErrorCode::Unavailable,
                    message: format!("tenant {tenant:?}: failover in progress"),
                });
            }
            forward_to(shared, upstreams, owner, &req, tx);
        }
    }
}

/// Forwards `req` to `replica` over this connection's upstream, dialing
/// or re-dialing it as needed. At most one re-dial per request: a second
/// failure means the replica is really gone and the client gets the
/// typed `Unavailable` now rather than a blocking retry loop inside the
/// router.
fn forward_to(
    shared: &Arc<RouterShared>,
    upstreams: &mut [Option<Upstream>],
    replica: usize,
    req: &Request,
    tx: &mpsc::Sender<Response>,
) {
    for _attempt in 0..2 {
        if upstreams[replica]
            .as_ref()
            .map(|u| u.dead.load(Ordering::SeqCst))
            .unwrap_or(true)
        {
            upstreams[replica] = None;
            match Upstream::connect(shared, replica) {
                Ok(u) => upstreams[replica] = Some(u),
                Err(_) => continue,
            }
        }
        let up = upstreams[replica].as_mut().expect("just ensured");
        match up.forward(req, tx.clone()) {
            ForwardOutcome::Sent => return,
            ForwardOutcome::EnqueuedButBroken => return, // reader answers tx
            ForwardOutcome::NotEnqueued => upstreams[replica] = None,
        }
    }
    let _ = tx.send(Response::Error {
        code: ErrorCode::Unavailable,
        message: "replica unreachable; request was not sent — safe to retry".into(),
    });
}

/// Fans `Health` out to every live replica and merges the reports,
/// sorted by tenant id. Replicas that fail to answer are skipped — their
/// tenants are mid-failover and will reappear once adopted.
fn merged_health(shared: &Arc<RouterShared>) -> Response {
    let mut tenants: Vec<TenantHealth> = Vec::new();
    for (i, addr) in shared.replica_addrs.iter().enumerate() {
        if !shared.alive[i].load(Ordering::SeqCst) {
            continue;
        }
        let report = (|| -> Result<Vec<TenantHealth>, crate::ClientError> {
            let mut c = ServeClient::connect(addr)?;
            c.set_timeout(Some(Duration::from_secs(2)))?;
            c.health()
        })();
        if let Ok(mut r) = report {
            tenants.append(&mut r);
        }
    }
    tenants.sort_by(|a, b| a.id.cmp(&b.id));
    tenants.dedup_by(|a, b| a.id == b.id);
    Response::Health { tenants }
}

// ---------------------------------------------------------------------------
// Router lifecycle
// ---------------------------------------------------------------------------

/// The router's accept loop + handle. Owned by the supervisor's
/// [`Replicated`](crate::supervisor::Replicated) tier.
pub(crate) struct RouterHandle {
    pub(crate) shared: Arc<RouterShared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl RouterHandle {
    /// Binds the client-facing listener and starts accepting.
    pub(crate) fn start(shared: Arc<RouterShared>) -> Result<RouterHandle, ServeError> {
        let listener = TcpListener::bind(&shared.cfg.addr)
            .map_err(|e| ServeError::Io(e.to_string()))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Io(e.to_string()))?;
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::default();
        let acceptor = {
            let shared = Arc::clone(&shared);
            let connections = Arc::clone(&connections);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.draining.load(Ordering::SeqCst) {
                        return;
                    }
                    let Ok(stream) = stream else { continue };
                    let shared = Arc::clone(&shared);
                    let handle =
                        std::thread::spawn(move || router_connection_main(shared, stream));
                    connections
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push(handle);
                }
            })
        };
        Ok(RouterHandle {
            shared,
            addr,
            acceptor: Some(acceptor),
            connections,
        })
    }

    pub(crate) fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins every connection thread. The draining
    /// flag must already be set (the supervisor does).
    pub(crate) fn stop(mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        let handles = std::mem::take(
            &mut *self.connections.lock().unwrap_or_else(|e| e.into_inner()),
        );
        for h in handles {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_is_stable() {
        // Reference vectors — these must never change, or restarted
        // routers would re-place every tenant.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"replica-0-vn0"), fnv1a(b"replica-0-vn0"));
        assert_ne!(fnv1a(b"replica-0-vn0"), fnv1a(b"replica-1-vn0"));
        // The finalized placement hash is pinned too — it is what the
        // ring actually sorts on.
        assert_eq!(place_hash(b""), 0xf52a_15e9_a9b5_e89b);
        assert_eq!(place_hash(b"a"), 0x02c0_bdbf_4814_20f8);
    }

    #[test]
    fn placement_is_stable_and_minimal() {
        let ring = Ring::new(3, 32);
        let tenants: Vec<String> = (0..50).map(|i| format!("tenant-{i}")).collect();
        let all = vec![true, true, true];
        let before: Vec<_> = tenants.iter().map(|t| ring.place(t, &all)).collect();
        // Deterministic: same ring, same answer.
        let again: Vec<_> = tenants.iter().map(|t| ring.place(t, &all)).collect();
        assert_eq!(before, again);
        // All three replicas get work (32 vnodes spread 50 tenants).
        for r in 0..3 {
            assert!(before.contains(&Some(r)), "replica {r} unused");
        }
        // Kill replica 1: its tenants move, everyone else stays put.
        let alive = vec![true, false, true];
        for (t, owner) in tenants.iter().zip(&before) {
            let now = ring.place(t, &alive);
            match owner {
                Some(1) => assert!(matches!(now, Some(0) | Some(2))),
                other => assert_eq!(&now, other, "tenant {t} moved needlessly"),
            }
        }
        // All dead: nowhere to place.
        assert_eq!(ring.place("tenant-0", &[false, false, false]), None);
    }

    /// `Drain` and `Adopt` are operator/supervisor operations: a client
    /// sending either gets a typed refusal and the tier-wide state is
    /// untouched — one misbehaving client must not shut the front door
    /// for every tenant.
    #[test]
    fn router_refuses_drain_and_adopt_from_clients() {
        let shared = Arc::new(RouterShared {
            cfg: RouterConfig::default(),
            tenant_ids: vec!["t0".into()],
            replica_addrs: Vec::new(),
            alive: Vec::new(),
            assignment: RwLock::new(vec![usize::MAX]),
            draining: AtomicBool::new(false),
        });
        let mut upstreams: Vec<Option<Upstream>> = Vec::new();
        for req in [Request::Drain, Request::Adopt { tenant: "t0".into() }] {
            let (tx, rx) = mpsc::channel();
            route(&shared, &mut upstreams, req, &tx);
            match rx.recv().expect("refusal answered inline") {
                Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
                other => panic!("privileged request was honored: {other:?}"),
            }
        }
        assert!(
            !shared.draining.load(Ordering::SeqCst),
            "a client Drain flipped the tier-wide draining flag"
        );
        // Harmless control requests still answer.
        let (tx, rx) = mpsc::channel();
        route(&shared, &mut upstreams, Request::Ping, &tx);
        assert_eq!(rx.recv().expect("ping answered"), Response::Ok);
    }

    #[test]
    fn ring_skips_dead_replicas_consistently() {
        let ring = Ring::new(4, 16);
        let alive = vec![false, true, false, true];
        for i in 0..100 {
            let t = format!("t{i}");
            let placed = ring.place(&t, &alive).unwrap();
            assert!(placed == 1 || placed == 3);
        }
    }
}
