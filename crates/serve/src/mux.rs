//! Readiness-multiplexing primitives for the serving data plane.
//!
//! The server and router used to burn two OS threads per connection
//! (reader + writer); this module supplies the pieces that replace them
//! with a single event loop per listener:
//!
//! * **[`sys`]** — a minimal `poll(2)` shim over `std::net` raw fds. No
//!   external crates: `std` already links libc on unix, so a one-line
//!   `extern "C"` declaration is all the platform glue required.
//! * **[`Waker`]** — a self-pipe (non-blocking `UnixStream` pair) whose
//!   read end sits in the poll set, so shard threads can interrupt a
//!   sleeping loop the instant a verdict is ready.
//! * **[`Completions`]** + **[`ReplyTx`]** — the bridge between the
//!   synchronous shard workers and the loop: a worker answers a request
//!   by posting `(conn, slot, response)` and waking the loop. A
//!   [`ReplyTx`] that is dropped unanswered posts a typed `Internal`
//!   error instead, so no request can strand a client slot.
//! * **[`Conn`]** — the per-connection frame state machine: an append
//!   read buffer scanned zero-copy by [`wire::scan_frame`], slot-ordered
//!   pending replies (responses may complete out of order across shards;
//!   clients see strict FIFO), and a bounded write buffer with
//!   high/low-water backpressure — a connection over its write watermark
//!   stops being polled for reads until the peer drains it.
//!
//! Correctness invariants: every accepted request is assigned exactly
//! one slot and every slot is answered exactly once (send-or-drop on
//! `ReplyTx`); replies are flushed strictly in slot order per
//! connection; a frame in progress must make progress — the loop closes
//! connections that sit mid-frame past the configured deadline
//! (slowloris defense), which plain idle timeouts cannot see.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::wire::{self, ErrorCode, Response};

/// Minimal readiness shim over `poll(2)`.
#[cfg(unix)]
pub mod sys {
    use std::io;
    use std::os::raw::{c_int, c_ulong};
    pub use std::os::unix::io::{AsRawFd, RawFd};

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    /// Mirrors `struct pollfd`; layout is identical on every unix libc.
    #[repr(C)]
    #[derive(Clone, Copy, Debug)]
    pub struct PollFd {
        pub fd: RawFd,
        pub events: i16,
        pub revents: i16,
    }

    impl PollFd {
        pub fn new(fd: RawFd, events: i16) -> PollFd {
            PollFd { fd, events, revents: 0 }
        }

        pub fn readable(&self) -> bool {
            self.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
        }

        pub fn writable(&self) -> bool {
            self.revents & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0
        }
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// Blocks until some registered fd is ready or `timeout_ms` elapses.
    /// `EINTR` is folded into `Ok(0)` — callers run a tick loop anyway.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(rc as usize)
    }
}

/// Degraded portable fallback: every registered fd is reported ready and
/// the caller's non-blocking reads/writes absorb the spurious readiness
/// as `WouldBlock`. Correct but busier than real `poll(2)`; production
/// targets are unix.
#[cfg(not(unix))]
pub mod sys {
    use std::io;

    pub type RawFd = i64;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    #[derive(Clone, Copy, Debug)]
    pub struct PollFd {
        pub fd: RawFd,
        pub events: i16,
        pub revents: i16,
    }

    impl PollFd {
        pub fn new(fd: RawFd, events: i16) -> PollFd {
            PollFd { fd, events, revents: 0 }
        }

        pub fn readable(&self) -> bool {
            self.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
        }

        pub fn writable(&self) -> bool {
            self.revents & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0
        }
    }

    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        for f in fds.iter_mut() {
            f.revents = f.events;
        }
        if !fds.is_empty() || timeout_ms != 0 {
            std::thread::sleep(std::time::Duration::from_millis(
                (timeout_ms.max(0) as u64).min(2),
            ));
        }
        Ok(fds.len())
    }
}

/// Raw fd of a pollable object.
#[cfg(unix)]
pub fn raw_fd<T: sys::AsRawFd>(t: &T) -> sys::RawFd {
    t.as_raw_fd()
}

#[cfg(not(unix))]
pub fn raw_fd<T>(_t: &T) -> sys::RawFd {
    0
}

// ---------------------------------------------------------------------------
// Waker (self-pipe)
// ---------------------------------------------------------------------------

/// Wakes a loop blocked in [`sys::poll_fds`] from another thread: a
/// non-blocking socket pair whose read end is registered `POLLIN`.
/// Writes and drains both saturate silently — a full pipe already has a
/// wake pending, which is all that matters.
pub struct Waker {
    #[cfg(unix)]
    tx: Mutex<std::os::unix::net::UnixStream>,
    #[cfg(unix)]
    rx: std::os::unix::net::UnixStream,
    #[cfg(not(unix))]
    _nothing: (),
}

impl Waker {
    pub fn new() -> std::io::Result<Waker> {
        #[cfg(unix)]
        {
            let (tx, rx) = std::os::unix::net::UnixStream::pair()?;
            tx.set_nonblocking(true)?;
            rx.set_nonblocking(true)?;
            Ok(Waker { tx: Mutex::new(tx), rx })
        }
        #[cfg(not(unix))]
        {
            Ok(Waker { _nothing: () })
        }
    }

    /// Fd to register `POLLIN` in the poll set.
    pub fn poll_fd(&self) -> sys::RawFd {
        #[cfg(unix)]
        {
            raw_fd(&self.rx)
        }
        #[cfg(not(unix))]
        {
            0
        }
    }

    pub fn wake(&self) {
        #[cfg(unix)]
        {
            let tx = self.tx.lock().unwrap_or_else(|e| e.into_inner());
            let _ = (&*tx).write(&[1u8]);
        }
    }

    /// Drains pending wake bytes so the next poll can sleep.
    pub fn drain(&self) {
        #[cfg(unix)]
        {
            let mut buf = [0u8; 64];
            while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
        }
    }
}

// ---------------------------------------------------------------------------
// Completions + ReplyTx
// ---------------------------------------------------------------------------

/// One answered request: connection id, slot within that connection's
/// FIFO, and the response to flush.
pub struct Completion {
    pub conn: u64,
    pub slot: u64,
    pub resp: Response,
}

/// Queue of answered requests posted by worker threads, drained by the
/// event loop. Posting wakes the loop through the embedded [`Waker`].
pub struct Completions {
    queue: Mutex<Vec<Completion>>,
    waker: Waker,
}

impl Completions {
    pub fn new() -> std::io::Result<Arc<Completions>> {
        Ok(Arc::new(Completions {
            queue: Mutex::new(Vec::new()),
            waker: Waker::new()?,
        }))
    }

    pub fn post(&self, conn: u64, slot: u64, resp: Response) {
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Completion { conn, slot, resp });
        self.waker.wake();
    }

    /// Takes everything posted so far and resets the waker.
    pub fn drain(&self) -> Vec<Completion> {
        self.waker.drain();
        std::mem::take(&mut *self.queue.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Wakes the loop without posting (drain/kill signalling).
    pub fn wake(&self) {
        self.waker.wake();
    }

    /// Fd of the embedded waker, for the loop's poll set.
    pub fn poll_fd(&self) -> sys::RawFd {
        self.waker.poll_fd()
    }
}

enum ReplyInner {
    /// Answer a connection slot owned by an event loop.
    Slot { q: Arc<Completions>, conn: u64, slot: u64 },
    /// Answer an in-process caller (supervisor adoption, unit tests).
    Chan(std::sync::mpsc::Sender<Response>),
}

/// Single-use reply handle carried by every dispatched request. Exactly
/// one of: [`ReplyTx::send`] consumes it with the real response, or its
/// `Drop` posts a typed `Internal` error — so a worker that dies or a
/// code path that forgets to answer can never strand a client slot
/// (the event loop would otherwise hold that connection's reply FIFO
/// open forever).
pub struct ReplyTx(Option<ReplyInner>);

impl ReplyTx {
    pub fn slot(q: &Arc<Completions>, conn: u64, slot: u64) -> ReplyTx {
        ReplyTx(Some(ReplyInner::Slot { q: Arc::clone(q), conn, slot }))
    }

    pub fn chan(tx: std::sync::mpsc::Sender<Response>) -> ReplyTx {
        ReplyTx(Some(ReplyInner::Chan(tx)))
    }

    pub fn send(mut self, resp: Response) {
        if let Some(inner) = self.0.take() {
            deliver(inner, resp);
        }
    }
}

impl Drop for ReplyTx {
    fn drop(&mut self) {
        if let Some(inner) = self.0.take() {
            deliver(
                inner,
                Response::Error {
                    code: ErrorCode::Internal,
                    message: "reply lost: worker dropped the request without answering"
                        .into(),
                },
            );
        }
    }
}

fn deliver(inner: ReplyInner, resp: Response) {
    match inner {
        ReplyInner::Slot { q, conn, slot } => q.post(conn, slot, resp),
        ReplyInner::Chan(tx) => {
            let _ = tx.send(resp);
        }
    }
}

// ---------------------------------------------------------------------------
// Connection state machine
// ---------------------------------------------------------------------------

/// Pause reads once this many reply bytes are buffered unflushed — the
/// peer is not draining its receive side, so stop ingesting new work
/// from it (backpressure instead of unbounded buffering).
pub const WBUF_HIGH_WATER: usize = 1 << 20;

/// A read buffer may hold at most one maximum frame plus the next
/// header before reads pause; bounds per-connection memory while never
/// stalling a legal frame.
pub const RBUF_PAUSE: usize = wire::MAX_PAYLOAD as usize + 2 * wire::HEADER_LEN;

const READ_CHUNK: usize = 64 << 10;
const COMPACT_AT: usize = 256 << 10;

/// What [`Conn::fill`] observed on the socket.
pub enum FillOutcome {
    /// Socket still open; any arrived bytes are in the read buffer.
    Open,
    /// Peer closed its write half (or the socket died): stop reading,
    /// flush what is pending, then drop the connection.
    Eof,
}

/// A complete frame scanned out of the read buffer, by offset — borrow
/// `payload()` against the buffer, then `consume(total)`.
#[derive(Clone, Copy, Debug)]
pub struct ScannedFrame {
    pub kind: u8,
    /// Payload range within [`Conn::rbuf_slice`].
    pub payload_start: usize,
    pub payload_end: usize,
    /// Whole-frame length, for [`Conn::consume`] / raw forwarding.
    pub total: usize,
}

/// Per-connection state for the event loop: frame reassembly in, slot
/// ordering + write buffering out.
pub struct Conn {
    pub stream: TcpStream,
    pub id: u64,
    pub peer: Option<SocketAddr>,
    rbuf: Vec<u8>,
    rpos: usize,
    wbuf: Vec<u8>,
    wpos: usize,
    next_slot: u64,
    next_flush: u64,
    ready: BTreeMap<u64, Response>,
    /// Last instant a complete frame was consumed (idle accounting).
    pub last_frame: Instant,
    /// Set while a partial frame sits in the buffer (progress deadline).
    pub frame_started: Option<Instant>,
    /// Peer closed / fatal read error: no more reads.
    pub eof: bool,
    /// Flush pending replies, then close (protocol error, drain).
    pub closing: bool,
    /// Socket write failed: drop immediately, nothing can be flushed.
    pub dead: bool,
}

impl Conn {
    /// Adopts an accepted stream: non-blocking, Nagle off.
    pub fn new(stream: TcpStream, id: u64) -> std::io::Result<Conn> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        let peer = stream.peer_addr().ok();
        Ok(Conn {
            stream,
            id,
            peer,
            rbuf: Vec::new(),
            rpos: 0,
            wbuf: Vec::new(),
            wpos: 0,
            next_slot: 0,
            next_flush: 0,
            ready: BTreeMap::new(),
            last_frame: Instant::now(),
            frame_started: None,
            eof: false,
            closing: false,
            dead: false,
        })
    }

    /// Whether the loop should poll this connection for reads.
    pub fn wants_read(&self) -> bool {
        !self.eof
            && !self.closing
            && self.wbuf.len() - self.wpos < WBUF_HIGH_WATER
            && self.rbuf.len() - self.rpos < RBUF_PAUSE
    }

    /// Whether unflushed reply bytes are pending.
    pub fn wants_write(&self) -> bool {
        self.wbuf.len() > self.wpos
    }

    /// Every assigned slot answered and flushed — safe to close without
    /// losing a reply.
    pub fn fully_flushed(&self) -> bool {
        self.next_flush == self.next_slot && !self.wants_write()
    }

    /// Reads until `WouldBlock`, EOF, or the pause watermarks trip.
    pub fn fill(&mut self) -> FillOutcome {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            if !self.wants_read() {
                return FillOutcome::Open;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    return FillOutcome::Eof;
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    if self.frame_started.is_none() && self.rbuf.len() > self.rpos {
                        self.frame_started = Some(Instant::now());
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    return FillOutcome::Open;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.eof = true;
                    return FillOutcome::Eof;
                }
            }
        }
    }

    /// Scans for the next complete frame at the head of the read buffer.
    pub fn scan(&self) -> Result<Option<ScannedFrame>, wire::WireError> {
        match wire::scan_frame(&self.rbuf[self.rpos..])? {
            None => Ok(None),
            Some((kind, total)) => Ok(Some(ScannedFrame {
                kind,
                payload_start: self.rpos + wire::HEADER_LEN,
                payload_end: self.rpos + total,
                total,
            })),
        }
    }

    /// Borrows bytes out of the read buffer (frame payloads; raw frame
    /// bytes for forwarding).
    pub fn rbuf_slice(&self, start: usize, end: usize) -> &[u8] {
        &self.rbuf[start..end]
    }

    /// Raw bytes of a scanned frame (header + payload), for zero-copy
    /// forwarding.
    pub fn frame_bytes(&self, frame: &ScannedFrame) -> &[u8] {
        &self.rbuf[self.rpos..self.rpos + frame.total]
    }

    /// Consumes one scanned frame and resets the progress clock.
    pub fn consume(&mut self, total: usize) {
        self.rpos += total;
        self.last_frame = Instant::now();
        if self.rpos == self.rbuf.len() {
            self.rbuf.clear();
            self.rpos = 0;
        } else if self.rpos > COMPACT_AT {
            self.rbuf.drain(..self.rpos);
            self.rpos = 0;
        }
        self.frame_started =
            if self.rbuf.len() > self.rpos { Some(Instant::now()) } else { None };
    }

    /// Assigns the next request slot (replies flush in slot order).
    pub fn assign_slot(&mut self) -> u64 {
        let s = self.next_slot;
        self.next_slot += 1;
        s
    }

    /// Files a completed response under its slot and promotes every
    /// now-contiguous reply into the write buffer.
    pub fn push_response(&mut self, slot: u64, resp: Response) {
        self.ready.insert(slot, resp);
        while let Some(resp) = self.ready.remove(&self.next_flush) {
            wire::append_frame(&mut self.wbuf, resp.kind(), &resp.encode_payload());
            self.next_flush += 1;
        }
    }

    /// Enqueues a response on the *next incoming* slot — for inline
    /// protocol errors that pre-empt dispatch.
    pub fn push_inline(&mut self, resp: Response) {
        let slot = self.assign_slot();
        self.push_response(slot, resp);
    }

    /// Writes buffered replies until `WouldBlock` or empty. `Err` means
    /// the socket is dead and the connection should be dropped.
    pub fn flush(&mut self) -> std::io::Result<()> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "peer closed",
                    ))
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        } else if self.wpos > COMPACT_AT {
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waker_wakes_poll() {
        let w = Waker::new().expect("waker");
        let mut fds = [sys::PollFd::new(w.poll_fd(), sys::POLLIN)];
        // Nothing pending: poll times out promptly.
        let n = sys::poll_fds(&mut fds, 0).expect("poll");
        #[cfg(unix)]
        assert_eq!(n, 0);
        let _ = n;
        w.wake();
        let mut fds = [sys::PollFd::new(w.poll_fd(), sys::POLLIN)];
        let n = sys::poll_fds(&mut fds, 1000).expect("poll");
        assert!(n >= 1);
        assert!(fds[0].readable());
        w.drain();
        let mut fds = [sys::PollFd::new(w.poll_fd(), sys::POLLIN)];
        let n = sys::poll_fds(&mut fds, 0).expect("poll");
        #[cfg(unix)]
        assert_eq!(n, 0);
        let _ = n;
    }

    #[test]
    fn reply_tx_drop_posts_internal_error() {
        let q = Completions::new().expect("completions");
        {
            let tx = ReplyTx::slot(&q, 7, 3);
            drop(tx);
        }
        let drained = q.drain();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].conn, 7);
        assert_eq!(drained[0].slot, 3);
        match &drained[0].resp {
            Response::Error { code, message } => {
                assert_eq!(*code, ErrorCode::Internal);
                assert!(message.contains("reply lost"), "{message}");
            }
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn reply_tx_send_wins_over_drop() {
        let q = Completions::new().expect("completions");
        ReplyTx::slot(&q, 1, 0).send(Response::Ok);
        let drained = q.drain();
        assert_eq!(drained.len(), 1);
        assert!(matches!(drained[0].resp, Response::Ok));
    }

    #[test]
    fn completions_post_is_pollable() {
        let q = Completions::new().expect("completions");
        q.post(1, 0, Response::Ok);
        let mut fds = [sys::PollFd::new(q.poll_fd(), sys::POLLIN)];
        let n = sys::poll_fds(&mut fds, 1000).expect("poll");
        assert!(n >= 1);
        assert_eq!(q.drain().len(), 1);
    }
}
