//! Blocking client for the serving wire protocol.
//!
//! The server answers every connection **in request order**, so a client
//! may pipeline: stack several [`ServeClient::send_score`] calls (letting
//! the server coalesce them into one ensemble batch), then collect the
//! replies with [`ServeClient::recv_scored`]. The convenience methods
//! ([`ServeClient::score`], [`ServeClient::health`], ...) are strict
//! request/reply pairs and must not be interleaved with unread pipelined
//! replies.
//!
//! [`ResilientClient`] layers fault tolerance on top: per-request
//! sequence ids, bounded exponential backoff with seeded jitter, and
//! reconnect-and-replay of unacknowledged requests. Replay is safe
//! because the server deduplicates by sequence id and answers already-
//! applied requests from a bounded reply cache, so a request that raced a
//! connection loss is applied exactly once no matter how often it is
//! re-sent.

use std::collections::{HashMap, VecDeque};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use imdiff_nn::obs;

use crate::wire::{
    read_response, write_frame, ErrorCode, PromotionVerdict, Request, Response,
    TenantHealth, WireError, WireVerdict,
};

/// Client-side failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// Transport or framing failure.
    Wire(WireError),
    /// The server closed the connection.
    Closed,
    /// The server refused or failed the request (typed).
    Server {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The server answered with a response kind that does not match the
    /// request (protocol misuse, e.g. interleaved pipelining).
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::Unexpected(msg) => write!(f, "unexpected response: {msg}"),
        }
    }
}

impl ClientError {
    /// Whether retrying the same logical request can succeed.
    ///
    /// Transport losses (`Io`, `Idle`, `Truncated`, `CrcMismatch`,
    /// `Closed`) are retryable: the bytes went missing, not the request's
    /// validity. Typed server refusals delegate to
    /// [`ErrorCode::is_retryable`] — transient pressure retries, semantic
    /// rejections do not. Protocol disagreements (`BadMagic`,
    /// `UnsupportedVersion`, malformed frames) are deterministic and
    /// would fail identically forever.
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Wire(e) => matches!(
                e,
                WireError::Io(_)
                    | WireError::Idle
                    | WireError::Truncated
                    | WireError::CrcMismatch { .. }
            ),
            ClientError::Closed => true,
            ClientError::Server { code, .. } => code.is_retryable(),
            ClientError::Unexpected(_) => false,
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// Outcome of a reload request: the tenant's active model generation
/// after the attempt, plus the last promotion/rollback verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReloadOutcome {
    /// Model generation currently serving the tenant.
    pub generation: u64,
    /// Latest promotion/rollback decision.
    pub verdict: PromotionVerdict,
    /// Human-readable explanation (gate scores, rollback cause, ...).
    pub detail: String,
    /// Detector family currently serving the tenant.
    pub family: String,
}

/// Verdicts for one score request, all produced by a single model
/// generation.
#[derive(Debug, Clone, PartialEq)]
pub struct Scored {
    /// Model generation that served the request.
    pub generation: u64,
    /// Per-point verdicts, in stream order (may be empty when the rows
    /// did not complete an evaluation hop).
    pub verdicts: Vec<WireVerdict>,
}

/// One connection to an `imdiff-serve` server.
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connects to `addr`.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<ServeClient, ClientError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| ClientError::Wire(WireError::Io(e.to_string())))?;
        let _ = stream.set_nodelay(true);
        Ok(ServeClient { stream })
    }

    /// Caps how long a blocking read waits for a response.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream
            .set_read_timeout(timeout)
            .map_err(|e| ClientError::Wire(WireError::Io(e.to_string())))
    }

    /// Sends one raw request frame without waiting for the reply.
    pub fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        write_frame(&mut self.stream, req.kind(), &req.encode_payload())?;
        Ok(())
    }

    /// Reads the next response frame.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        match read_response(&mut self.stream) {
            Ok(Some(resp)) => Ok(resp),
            Ok(None) => Err(ClientError::Closed),
            Err(e) => Err(ClientError::Wire(e)),
        }
    }

    /// Pipelined scoring: sends the request and returns immediately.
    /// Collect each reply later with [`ServeClient::recv_scored`], in
    /// send order.
    pub fn send_score(
        &mut self,
        tenant: &str,
        gap_before: u32,
        rows: Vec<Vec<f32>>,
    ) -> Result<(), ClientError> {
        self.send_score_seq(tenant, 0, u64::MAX, gap_before, rows)
    }

    /// Like [`ServeClient::send_score`] but stamps the request with a
    /// sequence id and a stream-position guard. Non-zero ids must be
    /// strictly increasing per tenant from a single writer; the server
    /// then deduplicates replays, which is what makes
    /// reconnect-and-resend safe. `seq == 0` opts out of deduplication;
    /// `start_row == u64::MAX` opts out of the position check.
    pub fn send_score_seq(
        &mut self,
        tenant: &str,
        seq: u64,
        start_row: u64,
        gap_before: u32,
        rows: Vec<Vec<f32>>,
    ) -> Result<(), ClientError> {
        self.send(&Request::Score {
            tenant: tenant.into(),
            seq,
            start_row,
            gap_before,
            rows,
        })
    }

    /// Reads one pipelined score reply.
    pub fn recv_scored(&mut self) -> Result<Scored, ClientError> {
        match self.recv()? {
            Response::Verdicts {
                generation,
                verdicts,
            } => Ok(Scored {
                generation,
                verdicts,
            }),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!(
                "wanted verdicts, got kind {}",
                other.kind()
            ))),
        }
    }

    /// Scores one chunk of rows and waits for the verdicts.
    pub fn score(
        &mut self,
        tenant: &str,
        gap_before: u32,
        rows: Vec<Vec<f32>>,
    ) -> Result<Scored, ClientError> {
        self.send_score(tenant, gap_before, rows)?;
        self.recv_scored()
    }

    /// Fetches every tenant's health report (sorted by id).
    pub fn health(&mut self) -> Result<Vec<TenantHealth>, ClientError> {
        self.send(&Request::Health)?;
        match self.recv()? {
            Response::Health { tenants } => Ok(tenants),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!(
                "wanted health report, got kind {}",
                other.kind()
            ))),
        }
    }

    /// Fetches the server's observability snapshot (imdiff-obs-v1 JSON).
    pub fn obs_snapshot(&mut self) -> Result<String, ClientError> {
        self.send(&Request::ObsSnapshot)?;
        match self.recv()? {
            Response::ObsJson { json } => Ok(json),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!(
                "wanted obs snapshot, got kind {}",
                other.kind()
            ))),
        }
    }

    /// Forces a checkpoint reload check for `tenant` and reports the
    /// outcome: the tenant's **active** model generation (the server
    /// answers after any resulting swap has landed, so a `Promoted`
    /// outcome's generation is the one now serving) plus the latest
    /// promotion/rollback verdict and its human-readable detail.
    pub fn reload(&mut self, tenant: &str) -> Result<ReloadOutcome, ClientError> {
        self.send(&Request::Reload {
            tenant: tenant.into(),
        })?;
        match self.recv()? {
            Response::ReloadStatus {
                generation,
                verdict,
                detail,
                family,
            } => Ok(ReloadOutcome {
                generation,
                verdict,
                detail,
                family,
            }),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!(
                "wanted reload status, got kind {}",
                other.kind()
            ))),
        }
    }

    /// Asks a replica to adopt (activate and load) a registered tenant,
    /// resuming from its IMSM sidecar when one exists. An internal
    /// supervisor→replica operation: routers refuse it from the outside.
    pub fn adopt(&mut self, tenant: &str) -> Result<(), ClientError> {
        self.send(&Request::Adopt {
            tenant: tenant.into(),
        })?;
        self.expect_ok()
    }

    /// Asks the tenant's server to write its IMSM sidecar now (on the
    /// owning shard, between batches), so a subsequent failover resumes
    /// from this exact stream position.
    pub fn snapshot(&mut self, tenant: &str) -> Result<(), ClientError> {
        self.send(&Request::Snapshot {
            tenant: tenant.into(),
        })?;
        self.expect_ok()
    }

    /// Asks the server to drain gracefully.
    pub fn drain(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Drain)?;
        self.expect_ok()
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Ping)?;
        self.expect_ok()
    }

    fn expect_ok(&mut self) -> Result<(), ClientError> {
        match self.recv()? {
            Response::Ok => Ok(()),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!(
                "wanted ack, got kind {}",
                other.kind()
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

/// Bounded exponential backoff with seeded jitter.
///
/// The delay before retry `k` (1-based) is `min(cap, base * 2^(k-1))`
/// scaled by a jitter factor in `[0.5, 1.0)` drawn from a splitmix64
/// stream seeded by `seed` — deterministic per client, decorrelated
/// across clients, so a fleet retrying after one failure does not
/// stampede the server in lockstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total tries (first attempt included). `1` disables retries.
    pub max_attempts: u32,
    /// Delay before the first retry, pre-jitter.
    pub base: Duration,
    /// Upper bound on any single pre-jitter delay.
    pub cap: Duration,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
            seed: 0x1d1f_f051_0e5e_11e0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never sleeps — for tests, so retry logic can be
    /// exercised without wall-clock delays.
    pub fn instant(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            base: Duration::ZERO,
            cap: Duration::ZERO,
            seed: 0,
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One retry episode: a counter over [`RetryPolicy`] that hands out the
/// next delay, or `None` once the attempt budget is spent. Deterministic
/// for a given policy (including seed), which is what the backoff unit
/// tests assert.
#[derive(Debug, Clone)]
pub struct Backoff {
    policy: RetryPolicy,
    failures: u32,
    rng: u64,
}

impl Backoff {
    /// Starts a fresh episode.
    pub fn new(policy: RetryPolicy) -> Backoff {
        Backoff {
            policy,
            failures: 0,
            rng: policy.seed,
        }
    }

    /// Records a failure. Returns how long to sleep before the next try,
    /// or `None` if the policy's attempt budget is exhausted.
    pub fn next_delay(&mut self) -> Option<Duration> {
        self.failures += 1;
        if self.failures >= self.policy.max_attempts {
            return None;
        }
        let exp = self.failures.saturating_sub(1).min(32);
        let raw = self
            .policy
            .base
            .saturating_mul(1u32.checked_shl(exp).unwrap_or(u32::MAX))
            .min(self.policy.cap);
        // Jitter in [0.5, 1.0): 53 random bits scaled into the range.
        let unit = (splitmix64(&mut self.rng) >> 11) as f64 / (1u64 << 53) as f64;
        Some(raw.mul_f64(0.5 + unit * 0.5))
    }
}

// ---------------------------------------------------------------------------
// Resilient client
// ---------------------------------------------------------------------------

/// A self-healing connection: stamps every scoring request with a
/// per-tenant sequence id, keeps the not-yet-answered tail, and on any
/// transport loss reconnects (with [`Backoff`]) and replays that tail in
/// order. The server's sequence-id dedup turns the replay into
/// exactly-once application, so a request caught mid-failover surfaces as
/// either its real verdicts or a typed error — never a silent drop and
/// never a double apply.
///
/// Typed server refusals (`Overloaded`, `Timeout`, `Unavailable`, ...)
/// are acknowledgements: the request was **not** applied, the reply said
/// so, and it is removed from the replay tail. [`ResilientClient::score`]
/// retries the retryable ones with a fresh sequence id; pipelined callers
/// get the typed error and decide themselves. The one exception is
/// [`ErrorCode::Interrupted`] — "may or may not have been applied" — which
/// is treated like a transport loss: the request stays in the tail and is
/// replayed under its **original** sequence id, so the server's dedup
/// resolves the ambiguity instead of a fresh-seq resend ingesting the
/// rows twice.
pub struct ResilientClient {
    addr: String,
    policy: RetryPolicy,
    timeout: Option<Duration>,
    conn: Option<ServeClient>,
    next_seq: HashMap<String, u64>,
    unacked: VecDeque<Request>,
    replayed: u64,
}

impl ResilientClient {
    /// Creates a client for `addr`. No I/O happens until the first
    /// request; a dead server at construction time is just the first
    /// retryable failure.
    pub fn connect(addr: impl Into<String>, policy: RetryPolicy) -> ResilientClient {
        ResilientClient {
            addr: addr.into(),
            policy,
            timeout: Some(Duration::from_secs(30)),
            conn: None,
            next_seq: HashMap::new(),
            unacked: VecDeque::new(),
            replayed: 0,
        }
    }

    /// Caps how long a blocking read waits before the wait itself counts
    /// as a transport loss (and triggers reconnect-and-replay).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) {
        self.timeout = timeout;
        if let Some(conn) = self.conn.as_mut() {
            let _ = conn.set_timeout(timeout);
        }
    }

    /// Requests replayed after reconnects over this client's lifetime.
    pub fn replayed(&self) -> u64 {
        self.replayed
    }

    /// Sequence ids not yet answered (the replay tail length).
    pub fn in_flight(&self) -> usize {
        self.unacked.len()
    }

    fn ensure_conn(&mut self) -> Result<&mut ServeClient, ClientError> {
        if self.conn.is_none() {
            let mut conn = ServeClient::connect(&self.addr)?;
            conn.set_timeout(self.timeout)?;
            self.conn = Some(conn);
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// Drops the dead connection, dials again and re-sends the whole
    /// unanswered tail in order.
    fn reconnect_and_replay(&mut self) -> Result<(), ClientError> {
        self.conn = None;
        let n = self.unacked.len();
        let tail: Vec<Request> = self.unacked.iter().cloned().collect();
        let conn = self.ensure_conn()?;
        for req in &tail {
            conn.send(req)?;
        }
        self.replayed += n as u64;
        obs::counter("serve.failover.replayed_requests", n as u64);
        Ok(())
    }

    /// Allocates the tenant's next sequence id (starting at 1).
    fn alloc_seq(&mut self, tenant: &str) -> u64 {
        let slot = self.next_seq.entry(tenant.to_string()).or_insert(0);
        *slot += 1;
        *slot
    }

    /// Pipelined scoring: stamps, records and sends the request, retrying
    /// the send across reconnects. Returns the assigned sequence id.
    /// Collect the reply later with [`ResilientClient::recv_scored`].
    pub fn send_score(
        &mut self,
        tenant: &str,
        gap_before: u32,
        rows: Vec<Vec<f32>>,
    ) -> Result<u64, ClientError> {
        self.send_score_at(tenant, u64::MAX, gap_before, rows)
    }

    /// Like [`ResilientClient::send_score`] but also stamps the chunk's
    /// stream position (`start_row`): the server refuses the request
    /// with a typed `Unavailable` if its stream is anywhere else, which
    /// is how a client discovers that a failover rolled the stream back
    /// to an older snapshot — instead of its rows being ingested at the
    /// wrong offset.
    pub fn send_score_at(
        &mut self,
        tenant: &str,
        start_row: u64,
        gap_before: u32,
        rows: Vec<Vec<f32>>,
    ) -> Result<u64, ClientError> {
        let seq = self.alloc_seq(tenant);
        let req = Request::Score {
            tenant: tenant.into(),
            seq,
            start_row,
            gap_before,
            rows,
        };
        self.unacked.push_back(req.clone());
        let mut backoff = Backoff::new(self.policy);
        loop {
            // On a live connection the older tail is already on the wire,
            // so only the new request needs sending. On a fresh one the
            // WHOLE tail must go out in order — sending just the new
            // request would leave the server answering it first while
            // recv_scored still matches replies FIFO against the older
            // requests, misattributing every verdict that follows.
            let sent = match self.conn.as_mut() {
                Some(conn) => conn.send(&req),
                None => self.reconnect_and_replay(),
            };
            match sent {
                Ok(()) => return Ok(seq),
                Err(e) if e.is_retryable() => {
                    self.conn = None;
                    match backoff.next_delay() {
                        Some(d) => {
                            if !d.is_zero() {
                                std::thread::sleep(d);
                            }
                        }
                        None => {
                            self.unacked.pop_back();
                            return Err(e);
                        }
                    }
                }
                Err(e) => {
                    self.unacked.pop_back();
                    return Err(e);
                }
            }
        }
    }

    /// Reads the oldest unanswered request's reply, transparently
    /// reconnecting and replaying the tail on transport loss or on a
    /// typed [`ErrorCode::Interrupted`] ("may or may not have been
    /// applied") — both are resolved by re-sending the **same** sequence
    /// ids, which the server deduplicates.
    ///
    /// Every return — verdicts or error — resolves exactly one request
    /// (the oldest), which leaves the replay tail. Surfacing a final
    /// error while *keeping* its request queued would skew the FIFO reply
    /// correlation by one for every later call, so once the retry budget
    /// is spent the oldest request is abandoned and the error is its
    /// outcome; the caller resyncs from the health report's `rows_seen`.
    /// Younger pipelined requests stay queued and replay as usual.
    pub fn recv_scored(&mut self) -> Result<Scored, ClientError> {
        if self.unacked.is_empty() {
            return Err(ClientError::Unexpected(
                "no request in flight".into(),
            ));
        }
        let mut backoff = Backoff::new(self.policy);
        loop {
            // A fresh connection carries none of the tail yet: replay it
            // first or the recv below would wait on requests the server
            // never saw.
            let got = if let Some(conn) = self.conn.as_mut() {
                conn.recv()
            } else {
                match self.reconnect_and_replay() {
                    Ok(()) => self.conn.as_mut().expect("just replayed").recv(),
                    Err(e) => Err(e),
                }
            };
            match got {
                Ok(Response::Error { code, message }) if code.may_be_applied() => {
                    // Not an acknowledgement: the routing tier lost track
                    // of the request mid-flight. Replay the tail under
                    // the same sequence ids; the replica's dedup turns an
                    // already-applied original into a cached reply
                    // instead of a second ingestion. The rest of the old
                    // connection's replies die with it — their requests
                    // are replayed too, keeping FIFO order intact.
                    self.conn = None;
                    match backoff.next_delay() {
                        Some(d) => {
                            if !d.is_zero() {
                                std::thread::sleep(d);
                            }
                        }
                        None => {
                            self.unacked.pop_front();
                            return Err(ClientError::Server { code, message });
                        }
                    }
                }
                Ok(resp) => {
                    self.unacked.pop_front();
                    return match resp {
                        Response::Verdicts {
                            generation,
                            verdicts,
                        } => Ok(Scored {
                            generation,
                            verdicts,
                        }),
                        Response::Error { code, message } => {
                            Err(ClientError::Server { code, message })
                        }
                        other => Err(ClientError::Unexpected(format!(
                            "wanted verdicts, got kind {}",
                            other.kind()
                        ))),
                    };
                }
                Err(e) if e.is_retryable() => {
                    self.conn = None;
                    match backoff.next_delay() {
                        Some(d) => {
                            if !d.is_zero() {
                                std::thread::sleep(d);
                            }
                        }
                        None => {
                            self.unacked.pop_front();
                            return Err(e);
                        }
                    }
                }
                Err(e) => {
                    self.unacked.pop_front();
                    return Err(e);
                }
            }
        }
    }

    /// Strict request/reply scoring. Transport losses and typed
    /// `Interrupted` errors replay the same sequence id (deduplicated
    /// server-side); retryable server *refusals* re-submit the rows under
    /// a fresh sequence id, which is safe exactly because a refusal
    /// proves the original was never applied. An `Interrupted` that
    /// outlives the whole retry budget is returned as-is — the rows may
    /// already be ingested, so re-submitting them blindly could double
    /// the stream; resync from the health report's `rows_seen` first.
    pub fn score(
        &mut self,
        tenant: &str,
        gap_before: u32,
        rows: Vec<Vec<f32>>,
    ) -> Result<Scored, ClientError> {
        self.score_at(tenant, u64::MAX, gap_before, rows)
    }

    /// Position-guarded [`ResilientClient::score`]: the server refuses
    /// the chunk with a typed `Unavailable` unless its stream is exactly
    /// at `start_row`. Transient refusals (failover in progress) are
    /// retried with fresh sequence ids up to the policy bound; a
    /// *persistent* mismatch — the stream really is somewhere else,
    /// usually rolled back by a failover — surfaces as the final typed
    /// error so the caller can resync from the health report's
    /// `rows_seen` and re-send the right rows.
    pub fn score_at(
        &mut self,
        tenant: &str,
        start_row: u64,
        gap_before: u32,
        rows: Vec<Vec<f32>>,
    ) -> Result<Scored, ClientError> {
        let mut backoff = Backoff::new(self.policy);
        loop {
            self.send_score_at(tenant, start_row, gap_before, rows.clone())?;
            match self.recv_scored() {
                Ok(s) => return Ok(s),
                // Fresh-seq resubmission is reserved for refusals whose
                // code guarantees the rows were NOT ingested. A
                // may-be-applied error must never take this branch: the
                // fresh id would bypass the server's dedup and a request
                // that actually landed would ingest its rows twice.
                Err(ClientError::Server { code, message })
                    if code.is_retryable() && !code.may_be_applied() =>
                {
                    match backoff.next_delay() {
                        Some(d) => {
                            if !d.is_zero() {
                                std::thread::sleep(d);
                            }
                        }
                        None => return Err(ClientError::Server { code, message }),
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Fetches the health report over a fresh strict exchange, retrying
    /// transport losses. Refused while pipelined replies are pending.
    pub fn health(&mut self) -> Result<Vec<TenantHealth>, ClientError> {
        if !self.unacked.is_empty() {
            return Err(ClientError::Unexpected(
                "health() with pipelined replies pending".into(),
            ));
        }
        let mut backoff = Backoff::new(self.policy);
        loop {
            let got = match self.ensure_conn() {
                Ok(conn) => conn.health(),
                Err(e) => Err(e),
            };
            match got {
                Ok(h) => return Ok(h),
                Err(e) if e.is_retryable() => {
                    self.conn = None;
                    match backoff.next_delay() {
                        Some(d) => {
                            if !d.is_zero() {
                                std::thread::sleep(d);
                            }
                        }
                        None => return Err(e),
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}
