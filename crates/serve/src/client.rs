//! Blocking client for the serving wire protocol.
//!
//! The server answers every connection **in request order**, so a client
//! may pipeline: stack several [`ServeClient::send_score`] calls (letting
//! the server coalesce them into one ensemble batch), then collect the
//! replies with [`ServeClient::recv_scored`]. The convenience methods
//! ([`ServeClient::score`], [`ServeClient::health`], ...) are strict
//! request/reply pairs and must not be interleaved with unread pipelined
//! replies.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::wire::{
    read_response, write_frame, ErrorCode, Request, Response, TenantHealth, WireError,
    WireVerdict,
};

/// Client-side failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// Transport or framing failure.
    Wire(WireError),
    /// The server closed the connection.
    Closed,
    /// The server refused or failed the request (typed).
    Server {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The server answered with a response kind that does not match the
    /// request (protocol misuse, e.g. interleaved pipelining).
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::Unexpected(msg) => write!(f, "unexpected response: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// Verdicts for one score request, all produced by a single model
/// generation.
#[derive(Debug, Clone, PartialEq)]
pub struct Scored {
    /// Model generation that served the request.
    pub generation: u64,
    /// Per-point verdicts, in stream order (may be empty when the rows
    /// did not complete an evaluation hop).
    pub verdicts: Vec<WireVerdict>,
}

/// One connection to an `imdiff-serve` server.
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connects to `addr`.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<ServeClient, ClientError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| ClientError::Wire(WireError::Io(e.to_string())))?;
        let _ = stream.set_nodelay(true);
        Ok(ServeClient { stream })
    }

    /// Caps how long a blocking read waits for a response.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream
            .set_read_timeout(timeout)
            .map_err(|e| ClientError::Wire(WireError::Io(e.to_string())))
    }

    /// Sends one raw request frame without waiting for the reply.
    pub fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        write_frame(&mut self.stream, req.kind(), &req.encode_payload())?;
        Ok(())
    }

    /// Reads the next response frame.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        match read_response(&mut self.stream) {
            Ok(Some(resp)) => Ok(resp),
            Ok(None) => Err(ClientError::Closed),
            Err(e) => Err(ClientError::Wire(e)),
        }
    }

    /// Pipelined scoring: sends the request and returns immediately.
    /// Collect each reply later with [`ServeClient::recv_scored`], in
    /// send order.
    pub fn send_score(
        &mut self,
        tenant: &str,
        gap_before: u32,
        rows: Vec<Vec<f32>>,
    ) -> Result<(), ClientError> {
        self.send(&Request::Score {
            tenant: tenant.into(),
            gap_before,
            rows,
        })
    }

    /// Reads one pipelined score reply.
    pub fn recv_scored(&mut self) -> Result<Scored, ClientError> {
        match self.recv()? {
            Response::Verdicts {
                generation,
                verdicts,
            } => Ok(Scored {
                generation,
                verdicts,
            }),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!(
                "wanted verdicts, got kind {}",
                other.kind()
            ))),
        }
    }

    /// Scores one chunk of rows and waits for the verdicts.
    pub fn score(
        &mut self,
        tenant: &str,
        gap_before: u32,
        rows: Vec<Vec<f32>>,
    ) -> Result<Scored, ClientError> {
        self.send_score(tenant, gap_before, rows)?;
        self.recv_scored()
    }

    /// Fetches every tenant's health report (sorted by id).
    pub fn health(&mut self) -> Result<Vec<TenantHealth>, ClientError> {
        self.send(&Request::Health)?;
        match self.recv()? {
            Response::Health { tenants } => Ok(tenants),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!(
                "wanted health report, got kind {}",
                other.kind()
            ))),
        }
    }

    /// Fetches the server's observability snapshot (imdiff-obs-v1 JSON).
    pub fn obs_snapshot(&mut self) -> Result<String, ClientError> {
        self.send(&Request::ObsSnapshot)?;
        match self.recv()? {
            Response::ObsJson { json } => Ok(json),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!(
                "wanted obs snapshot, got kind {}",
                other.kind()
            ))),
        }
    }

    /// Forces a checkpoint reload check for `tenant`. `Ok` means the new
    /// weights were validated and handed to the owning shard; the swap
    /// lands between batches (watch the generation in the health report).
    pub fn reload(&mut self, tenant: &str) -> Result<(), ClientError> {
        self.send(&Request::Reload {
            tenant: tenant.into(),
        })?;
        self.expect_ok()
    }

    /// Asks the server to drain gracefully.
    pub fn drain(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Drain)?;
        self.expect_ok()
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Ping)?;
        self.expect_ok()
    }

    fn expect_ok(&mut self) -> Result<(), ClientError> {
        match self.recv()? {
            Response::Ok => Ok(()),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!(
                "wanted ack, got kind {}",
                other.kind()
            ))),
        }
    }
}
