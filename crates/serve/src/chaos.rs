//! Deterministic chaos harness for the replicated serving tier.
//!
//! A [`ChaosPlan`] is a seeded fault schedule — kill or partition a
//! replica at chunk *k*, corrupt a sidecar, duplicate a frame, truncate
//! a frame mid-header — driven through the **real wire protocol**
//! against an in-process [`Replicated`](crate::Replicated) tier. The
//! harness then proves the failure contract:
//!
//! * every request caught by a fault surfaces as a **typed error** —
//!   never a hang, panic or silent drop (every read has a deadline,
//!   every retry loop a budget);
//! * after failover, each affected tenant resumes from its IMSM sidecar
//!   and its verdict stream is **bit-identical** to an uninterrupted
//!   local monitor restored from the same snapshot and fed the same
//!   rows;
//! * a duplicated frame (same sequence id) is answered from the reply
//!   cache and ingests **zero** additional rows;
//! * a corrupted sidecar downgrades failover to a re-warm — detected,
//!   counted, never fatal.
//!
//! Determinism: traffic is driven synchronously chunk by chunk, the
//! tier's cadenced snapshots are disabled (only the plan's explicit
//! `Snapshot` events write sidecars), the data and detectors derive
//! from `plan.seed`, and the ensemble itself is bit-reproducible at any
//! `IMDIFF_THREADS` — so one seed replays one world, down to the bits.
//! Wall-clock (heartbeat cadence, failover latency) is the only
//! nondeterminism, and it is observable solely as *how many* typed
//! errors the run counts, never as *which verdicts* come back.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

use imdiff_data::synthetic::{generate, Benchmark, SizeProfile};
use imdiff_data::Detector;
use imdiffusion::{
    stream_path, ImDiffusionConfig, ImDiffusionDetector, StreamingMonitor,
};

use crate::server::{ServeConfig, TenantSpec};
use crate::wire::{self, Request, WireVerdict};
use crate::{
    ClientError, Replicated, ResilientClient, RetryPolicy, RouterConfig, ServeClient,
};

// ---------------------------------------------------------------------------
// Plan
// ---------------------------------------------------------------------------

/// One fault to inject, scheduled before a given traffic chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Write tenant `t`'s IMSM sidecar now (through the wire) and
    /// archive a copy as the bit-identity baseline.
    Snapshot { tenant: usize },
    /// Crash the replica currently owning tenant `t`: queued work
    /// dropped, connections severed. The supervisor must notice via
    /// heartbeats and fail over.
    KillReplicaOf { tenant: usize },
    /// Partition the replica owning tenant `t`: process keeps running,
    /// network drops it. Must be fenced and failed over like a crash.
    PartitionReplicaOf { tenant: usize },
    /// Flip one byte of tenant `t`'s on-disk sidecar, so the next
    /// adoption must detect the corruption and fall back to a re-warm.
    /// Excludes `t` from the bit-identity check (a re-warm is a new
    /// stream); the report instead asserts it serves verdicts again.
    CorruptSidecar { tenant: usize },
    /// Send tenant `t`'s next chunk **twice** with the same sequence id
    /// (the second copy on a raw side connection) and assert the
    /// duplicate is answered from the reply cache with bit-identical
    /// verdicts while ingesting zero additional rows.
    DuplicateNext { tenant: usize },
    /// Open a raw connection to the router, send half a frame header,
    /// and hang up — then assert the router still answers a ping.
    TruncateFrame,
}

/// A seeded, replayable fault schedule.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// Master seed: data, detectors, retry jitter all derive from it.
    pub seed: u64,
    /// Replica servers behind the router (≥ 2 for failover to have a
    /// survivor).
    pub replicas: usize,
    /// Tenant streams.
    pub tenants: usize,
    /// Rows per score request.
    pub chunk_rows: usize,
    /// Chunks of traffic per tenant.
    pub chunks: usize,
    /// `(chunk index, event)` — applied, in order, before that chunk's
    /// traffic is sent.
    pub events: Vec<(usize, ChaosEvent)>,
}

impl ChaosPlan {
    /// The canonical drill: snapshot everyone mid-stream, then kill the
    /// replica owning tenant 0 two chunks later, with a duplicate-frame
    /// and a truncated-frame probe along the way.
    pub fn standard(seed: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            replicas: 2,
            tenants: 3,
            chunk_rows: 8,
            chunks: 12,
            events: vec![
                (4, ChaosEvent::TruncateFrame),
                (5, ChaosEvent::DuplicateNext { tenant: 1 }),
                (6, ChaosEvent::Snapshot { tenant: 0 }),
                (6, ChaosEvent::Snapshot { tenant: 1 }),
                (6, ChaosEvent::Snapshot { tenant: 2 }),
                (8, ChaosEvent::KillReplicaOf { tenant: 0 }),
            ],
        }
    }

    /// Same drill but with a network partition instead of a crash,
    /// exercising the supervisor's fence-before-adopt path.
    pub fn partition(seed: u64) -> ChaosPlan {
        let mut plan = ChaosPlan::standard(seed);
        for (_, e) in plan.events.iter_mut() {
            if let ChaosEvent::KillReplicaOf { tenant } = *e {
                *e = ChaosEvent::PartitionReplicaOf { tenant };
            }
        }
        plan
    }

    fn total_rows(&self) -> usize {
        self.chunks * self.chunk_rows
    }
}

/// What a chaos run proved. `ok()` is the single gate the example and
/// CI assert on.
#[derive(Debug, Clone, Default)]
pub struct ChaosReport {
    /// Score requests that completed with verdicts.
    pub chunks_ok: u64,
    /// Requests that surfaced as typed errors (then recovered by
    /// resync). Failure injection makes ≥ 1 of these expected whenever
    /// the plan kills or partitions.
    pub typed_errors: u64,
    /// Verdicts delivered twice (pre-kill and post-failover re-send)
    /// that were asserted bit-identical on arrival.
    pub redelivered_checked: u64,
    /// Duplicate-frame probes answered from the reply cache with zero
    /// row ingestion.
    pub duplicates_deduped: u64,
    /// Truncated-frame probes after which the router still answered.
    pub truncations_survived: u64,
    /// Replicas lost to kill/partition events (observed via liveness).
    pub replicas_lost: u64,
    /// Tenants whose post-failover verdicts bit-matched the baseline
    /// monitor restored from the archived sidecar.
    pub tenants_bit_identical: u64,
    /// Tenants excluded from bit-identity by sidecar corruption that
    /// nevertheless served verdicts again after re-warming.
    pub tenants_rewarmed: u64,
    /// Human-readable contract violations; empty means the run passed.
    pub violations: Vec<String>,
}

impl ChaosReport {
    /// Did the run uphold the whole failure contract?
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Harness internals
// ---------------------------------------------------------------------------

fn tiny_cfg() -> ImDiffusionConfig {
    ImDiffusionConfig {
        window: 16,
        train_stride: 8,
        hidden: 8,
        heads: 2,
        residual_blocks: 1,
        diffusion_steps: 5,
        train_steps: 10,
        batch_size: 2,
        vote_span: 5,
        vote_every: 2,
        ..ImDiffusionConfig::quick()
    }
}

struct TenantState {
    id: String,
    seed: u64,
    checkpoint: PathBuf,
    rows: Vec<Vec<f32>>,
    /// Rows acknowledged as applied (the send cursor).
    cursor: usize,
    /// Verdicts by global stream index; redeliveries must bit-match.
    verdicts: BTreeMap<u64, WireVerdict>,
    /// Archived sidecar bytes + the row position they snapshot.
    baseline: Option<(Vec<u8>, usize)>,
    /// Corrupted sidecar ⇒ expect a re-warm, not bit-identity.
    expect_identical: bool,
}

fn fresh_dir(seed: u64) -> Result<PathBuf, String> {
    // A stale sidecar from an earlier run would be silently restored at
    // replica startup and wreck determinism — the directory must be new.
    let dir = std::env::temp_dir().join(format!(
        "imdiff-chaos-{}-{seed}",
        std::process::id()
    ));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).map_err(|e| format!("cannot clear {dir:?}: {e}"))?;
    }
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
    Ok(dir)
}

fn bits_equal(a: &WireVerdict, b: &WireVerdict) -> bool {
    a.index == b.index
        && a.score.to_bits() == b.score.to_bits()
        && a.votes == b.votes
        && a.anomalous == b.anomalous
        && a.degraded == b.degraded
}

/// Polls the router's merged health until `tenant` reappears, returning
/// its `rows_seen`. Bounded: ~10 s, then the caller records a violation
/// instead of hanging — the harness never waits forever.
fn await_rows_seen(addr: &std::net::SocketAddr, tenant: &str) -> Option<u64> {
    for _ in 0..400 {
        let got = (|| -> Result<Option<u64>, ClientError> {
            let mut c = ServeClient::connect(addr)?;
            c.set_timeout(Some(Duration::from_secs(2)))?;
            Ok(c.health()?
                .into_iter()
                .find(|t| t.id == tenant)
                .map(|t| t.rows_seen))
        })();
        if let Ok(Some(seen)) = got {
            return Some(seen);
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    None
}

// ---------------------------------------------------------------------------
// The run
// ---------------------------------------------------------------------------

/// Executes `plan` against a freshly trained, freshly spawned replicated
/// tier and checks the failure contract. `Err` is reserved for harness
/// setup problems (cannot bind, cannot write temp files); contract
/// violations land in [`ChaosReport::violations`].
pub fn run_chaos(plan: &ChaosPlan) -> Result<ChaosReport, String> {
    if plan.replicas < 2 {
        return Err("need ≥ 2 replicas so failover has a survivor".into());
    }
    if plan.tenants == 0 || plan.chunks == 0 || plan.chunk_rows == 0 {
        return Err("empty plan".into());
    }
    let dir = fresh_dir(plan.seed)?;
    let mut report = ChaosReport::default();

    // --- Train one tiny detector per tenant, deterministically. -------
    let mut tenants: Vec<TenantState> = Vec::with_capacity(plan.tenants);
    let mut specs: Vec<TenantSpec> = Vec::with_capacity(plan.tenants);
    for t in 0..plan.tenants {
        let seed = plan.seed.wrapping_add(t as u64);
        let ds = generate(
            Benchmark::Gcp,
            &SizeProfile {
                train_len: 80,
                test_len: plan.total_rows(),
            },
            seed,
        );
        let checkpoint = dir.join(format!("tenant-{t}.imdf"));
        let mut det = ImDiffusionDetector::new(tiny_cfg(), seed);
        det.fit(&ds.train).map_err(|e| format!("train tenant {t}: {e}"))?;
        det.save(&checkpoint)
            .map_err(|e| format!("save tenant {t}: {e}"))?;
        let rows: Vec<Vec<f32>> =
            (0..ds.test.len()).map(|l| ds.test.row(l).to_vec()).collect();
        let id = format!("tenant-{t}");
        specs.push(TenantSpec {
            id: id.clone(),
            checkpoint: checkpoint.clone(),
            cfg: tiny_cfg(),
            seed,
            channels: ds.test.dim(),
            hop: 2,
            holdout: None,
            drift_policy: None,
            family: imdiff_registry::DetectorKind::ImDiffusion,
            escalation: None,
        });
        tenants.push(TenantState {
            id,
            seed,
            checkpoint,
            rows,
            cursor: 0,
            verdicts: BTreeMap::new(),
            baseline: None,
            expect_identical: true,
        });
    }

    // --- Spawn the tier: fast heartbeats, explicit snapshots only. ----
    let tier = Replicated::start(
        RouterConfig {
            replicas: plan.replicas,
            heartbeat_every: Duration::from_millis(20),
            heartbeat_timeout: Duration::from_millis(100),
            heartbeat_misses: 2,
            replica: ServeConfig {
                shards: 2,
                max_queue: 256,
                shed_after: Duration::from_secs(60),
                deadline: Duration::from_secs(10),
                reload_poll: None,
                snapshot_every: None,
                ..ServeConfig::default()
            },
            ..RouterConfig::default()
        },
        specs,
    )
    .map_err(|e| format!("start tier: {e}"))?;
    let addr = tier.addr();

    let mut client = ResilientClient::connect(
        addr.to_string(),
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(100),
            seed: plan.seed,
        },
    );
    client.set_timeout(Some(Duration::from_secs(15)));
    let live_at_start = tier.live_replicas();

    // --- Drive the plan. ----------------------------------------------
    for chunk in 0..plan.chunks {
        for (_, event) in plan.events.iter().filter(|(c, _)| *c == chunk) {
            apply_event(event, &tier, addr, &mut client, &mut tenants, &mut report);
        }
        for tenant in tenants.iter_mut() {
            drive_chunk(plan, &addr, &mut client, tenant, &mut report);
        }
    }

    // --- Verify bit-identity against the archived snapshots. ----------
    for t in &tenants {
        verify_tenant(t, &dir, &mut report);
    }
    report.replicas_lost = (live_at_start - tier.live_replicas()) as u64;
    tier.shutdown();
    Ok(report)
}

/// Sends one chunk for one tenant, resyncing from the authoritative
/// `rows_seen` whenever a typed error interrupts the stream. Bounded at
/// ~15 s of retries per chunk; exhaustion is a recorded violation, not a
/// hang.
fn drive_chunk(
    plan: &ChaosPlan,
    addr: &std::net::SocketAddr,
    client: &mut ResilientClient,
    tenant: &mut TenantState,
    report: &mut ChaosReport,
) {
    let goal = (tenant.cursor + plan.chunk_rows).min(tenant.rows.len());
    let mut attempts = 0u32;
    while tenant.cursor < goal {
        let end = (tenant.cursor + plan.chunk_rows).min(goal);
        let rows: Vec<Vec<f32>> = tenant.rows[tenant.cursor..end].to_vec();
        match client.score_at(&tenant.id, tenant.cursor as u64, 0, rows) {
            Ok(scored) => {
                tenant.cursor = end;
                record_verdicts(tenant, &scored.verdicts, report);
            }
            Err(e) => {
                report.typed_errors += 1;
                attempts += 1;
                if attempts > 60 {
                    report.violations.push(format!(
                        "{}: chunk at row {} never recovered: {e}",
                        tenant.id, tenant.cursor
                    ));
                    return;
                }
                if !matches!(e, ClientError::Server { .. }) && !e.is_retryable() {
                    report.violations.push(format!(
                        "{}: non-typed, non-retryable failure: {e}",
                        tenant.id
                    ));
                    return;
                }
                // Resync: the tier's health report is the authority on
                // how far this stream actually got. A failover rolls it
                // back to the snapshot (re-send from there); a rewarm
                // rolls it back to zero.
                match await_rows_seen(addr, &tenant.id) {
                    Some(seen) => {
                        let seen = seen as usize;
                        if seen < tenant.cursor && !tenant.expect_identical {
                            // Re-warmed: the monitor restarted numbering,
                            // so earlier verdicts are from a previous
                            // life. Drop them rather than "asserting"
                            // stale bits against the new stream.
                            tenant.verdicts.clear();
                        }
                        tenant.cursor = seen;
                    }
                    None => {
                        report.violations.push(format!(
                            "{}: did not reappear in health after failover",
                            tenant.id
                        ));
                        return;
                    }
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
    report.chunks_ok += 1;
}

/// Folds verdicts into the tenant's map. A redelivered index (rows
/// re-sent after failover) must bit-match what the original replica
/// served — same sidecar, same rows, same bits.
fn record_verdicts(tenant: &mut TenantState, verdicts: &[WireVerdict], report: &mut ChaosReport) {
    for v in verdicts {
        if let Some(prev) = tenant.verdicts.get(&v.index) {
            report.redelivered_checked += 1;
            if !bits_equal(prev, v) && tenant.expect_identical {
                report.violations.push(format!(
                    "{}: redelivered verdict {} differs from original",
                    tenant.id, v.index
                ));
            }
        }
        tenant.verdicts.insert(v.index, *v);
    }
}

fn apply_event(
    event: &ChaosEvent,
    tier: &Replicated,
    addr: std::net::SocketAddr,
    client: &mut ResilientClient,
    tenants: &mut [TenantState],
    report: &mut ChaosReport,
) {
    match event {
        ChaosEvent::Snapshot { tenant } => {
            let t = &mut tenants[*tenant];
            let ok = (|| -> Result<(), ClientError> {
                let mut c = ServeClient::connect(addr)?;
                c.set_timeout(Some(Duration::from_secs(10)))?;
                c.snapshot(&t.id)
            })();
            match ok {
                Ok(()) => match std::fs::read(stream_path(&t.checkpoint)) {
                    Ok(bytes) => t.baseline = Some((bytes, t.cursor)),
                    Err(e) => report
                        .violations
                        .push(format!("{}: snapshot wrote no sidecar: {e}", t.id)),
                },
                Err(e) => report
                    .violations
                    .push(format!("{}: snapshot request failed: {e}", t.id)),
            }
        }
        ChaosEvent::KillReplicaOf { tenant } => {
            if let Some(r) = tier.replica_of(&tenants[*tenant].id) {
                tier.kill_replica(r);
            }
        }
        ChaosEvent::PartitionReplicaOf { tenant } => {
            if let Some(r) = tier.replica_of(&tenants[*tenant].id) {
                tier.isolate_replica(r);
            }
        }
        ChaosEvent::CorruptSidecar { tenant } => {
            let t = &mut tenants[*tenant];
            let path = stream_path(&t.checkpoint);
            match std::fs::read(&path) {
                Ok(mut bytes) if !bytes.is_empty() => {
                    // Flip a payload byte (past the 12-byte header) so
                    // the CRC check must catch it.
                    let i = bytes.len().saturating_sub(1);
                    bytes[i] ^= 0xFF;
                    if std::fs::write(&path, &bytes).is_ok() {
                        t.expect_identical = false;
                    }
                }
                _ => { /* no sidecar yet — nothing to corrupt */ }
            }
        }
        ChaosEvent::DuplicateNext { tenant } => {
            duplicate_probe(addr, client, &mut tenants[*tenant], report);
        }
        ChaosEvent::TruncateFrame => {
            // Half a header, then hang up mid-frame.
            if let Ok(mut s) = TcpStream::connect(addr) {
                let _ = s.write_all(&[b'I', b'W', wire::WIRE_VERSION, wire::kind::SCORE]);
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            let alive = (|| -> Result<(), ClientError> {
                let mut c = ServeClient::connect(addr)?;
                c.set_timeout(Some(Duration::from_secs(2)))?;
                c.ping()
            })();
            match alive {
                Ok(()) => report.truncations_survived += 1,
                Err(e) => report
                    .violations
                    .push(format!("router unresponsive after truncated frame: {e}")),
            }
        }
    }
}

/// Scores one chunk normally, then replays the **same frame with the
/// same sequence id** on a raw side connection. The duplicate must come
/// back bit-identical (served from the reply cache) and must not ingest
/// a single extra row.
fn duplicate_probe(
    addr: std::net::SocketAddr,
    client: &mut ResilientClient,
    tenant: &mut TenantState,
    report: &mut ChaosReport,
) {
    let end = (tenant.cursor + 1).min(tenant.rows.len());
    if tenant.cursor >= end {
        return;
    }
    let rows: Vec<Vec<f32>> = tenant.rows[tenant.cursor..end].to_vec();
    let start_row = tenant.cursor as u64;
    let seq = match client.send_score_at(&tenant.id, start_row, 0, rows.clone()) {
        Ok(seq) => seq,
        Err(e) => {
            report.violations.push(format!("{}: duplicate probe send: {e}", tenant.id));
            return;
        }
    };
    let first = match client.recv_scored() {
        Ok(s) => s,
        Err(e) => {
            report.violations.push(format!("{}: duplicate probe recv: {e}", tenant.id));
            return;
        }
    };
    tenant.cursor = end;
    record_verdicts(tenant, &first.verdicts, report);
    let seen_before = await_rows_seen(&addr, &tenant.id);

    let dup = (|| -> Result<crate::Scored, ClientError> {
        let mut c = ServeClient::connect(addr)?;
        c.set_timeout(Some(Duration::from_secs(10)))?;
        c.send(&Request::Score {
            tenant: tenant.id.clone(),
            seq,
            start_row,
            gap_before: 0,
            rows,
        })?;
        c.recv_scored()
    })();
    match dup {
        Ok(second) => {
            let same = first.verdicts.len() == second.verdicts.len()
                && first
                    .verdicts
                    .iter()
                    .zip(&second.verdicts)
                    .all(|(a, b)| bits_equal(a, b));
            let seen_after = await_rows_seen(&addr, &tenant.id);
            if !same {
                report.violations.push(format!(
                    "{}: duplicate reply differs from original",
                    tenant.id
                ));
            } else if seen_before != seen_after {
                report.violations.push(format!(
                    "{}: duplicate frame ingested rows ({seen_before:?} -> {seen_after:?})",
                    tenant.id
                ));
            } else {
                report.duplicates_deduped += 1;
            }
        }
        Err(e) => report
            .violations
            .push(format!("{}: duplicate probe failed: {e}", tenant.id)),
    }
}

/// Replays the archived sidecar locally and bit-compares every verdict
/// the tier served at or past the snapshot position.
fn verify_tenant(tenant: &TenantState, dir: &Path, report: &mut ChaosReport) {
    if !tenant.expect_identical {
        // Sidecar was corrupted: the contract is graceful degradation.
        // The tenant must have re-warmed and served fresh verdicts.
        if tenant.verdicts.is_empty() {
            report.violations.push(format!(
                "{}: never served verdicts after sidecar corruption",
                tenant.id
            ));
        } else {
            report.tenants_rewarmed += 1;
        }
        return;
    }
    let Some((sidecar, snap_rows)) = &tenant.baseline else {
        return; // no snapshot event for this tenant — nothing to prove
    };
    // Reconstruct "the run that never crashed": same weights, the
    // archived sidecar, the same rows from the snapshot position on.
    let baseline_ckpt = dir.join(format!("{}-baseline.imdf", tenant.id));
    if let Err(e) = std::fs::copy(&tenant.checkpoint, &baseline_ckpt) {
        report.violations.push(format!("{}: baseline copy: {e}", tenant.id));
        return;
    }
    if let Err(e) = std::fs::write(stream_path(&baseline_ckpt), sidecar) {
        report.violations.push(format!("{}: baseline sidecar: {e}", tenant.id));
        return;
    }
    let mut monitor = match StreamingMonitor::restore(tiny_cfg(), tenant.seed, &baseline_ckpt)
    {
        Ok(m) => m,
        Err(e) => {
            report.violations.push(format!("{}: baseline restore: {e}", tenant.id));
            return;
        }
    };
    let mut expected: Vec<WireVerdict> = Vec::new();
    for row in &tenant.rows[*snap_rows..tenant.cursor] {
        match monitor.push(row) {
            Ok(vs) => expected.extend(vs.into_iter().map(|v| WireVerdict {
                index: v.index,
                score: v.score,
                votes: v.votes,
                anomalous: v.anomalous,
                degraded: v.degraded,
            })),
            Err(e) => {
                report.violations.push(format!("{}: baseline push: {e}", tenant.id));
                return;
            }
        }
    }
    let mut identical = true;
    for want in &expected {
        match tenant.verdicts.get(&want.index) {
            Some(got) if bits_equal(got, want) => {}
            Some(_) => {
                identical = false;
                report.violations.push(format!(
                    "{}: verdict {} differs from uninterrupted baseline",
                    tenant.id, want.index
                ));
            }
            None => {
                identical = false;
                report.violations.push(format!(
                    "{}: verdict {} was never served (silent drop)",
                    tenant.id, want.index
                ));
            }
        }
    }
    if identical {
        report.tenants_bit_identical += 1;
    }
}
