//! `imdiff-registry` — the unified detector registry.
//!
//! One concrete type ([`AnyDetector`]) over ImDiffusion and every baseline
//! family, with a uniform lifecycle:
//!
//! ```text
//! fit  →  snapshot (IMDE envelope bytes)  →  persist  →  restore
//! ```
//!
//! The envelope ([`mod@envelope`]) is a CRC-checked container that tags
//! the family and wraps the family's *native* payload — the full IMDF
//! image for ImDiffusion, each baseline's `snapshot_payload` bytes
//! otherwise — so every family gains atomic persistence, corruption
//! detection and hot-reload for free. Legacy raw IMDF checkpoints keep
//! loading via magic sniffing.
//!
//! [`AnyDetector`] implements both [`imdiff_data::Detector`] (offline
//! evaluation) and [`imdiffusion::WindowScorer`] (the streaming monitor
//! and serving shards), which is what lets a served tenant run *any*
//! family without the serving stack knowing which.
//!
//! The [`mod@escalate`] module holds the cost-aware escalation policy: an
//! ordered ladder of rungs, a holdout-replay evaluator, and a
//! deterministic "cheapest rung within an F1 tolerance of the best"
//! decision rule (measured cost is recorded as evidence, never used to
//! decide — so mirrors reproduce decisions bit-exactly).

mod any;
pub mod envelope;
pub mod escalate;
mod kind;

pub use any::AnyDetector;
pub use envelope::{fit_detector, sniff_family, AnySpec, ENVELOPE_MAGIC, ENVELOPE_VERSION};
pub use escalate::{choose_rung, evaluate_ladder, LadderDecision, RungOutcome};
pub use kind::DetectorKind;
