//! Cost-aware escalation: pick the cheapest rung that is accurate enough.
//!
//! A tenant's escalation ladder is an ordered list of detectors, cheapest
//! first (canonically z-score → IForest → ImDiffusion). The evaluator
//! replays a labeled holdout slice through every rung, measures each
//! rung's best point-F1 and its wall-clock cost, and pins the tenant to
//! the **first** rung whose F1 is within a tolerance of the ladder's
//! best.
//!
//! Determinism contract: the decision depends *only* on the ladder order
//! and the F1 numbers — never on the measured µs/row, which varies run to
//! run and is recorded purely as evidence. A local mirror replaying the
//! same ladder over the same holdout therefore reproduces the rung choice
//! bit-exactly, which is what the end-to-end serving test asserts.

use std::time::Instant;

use imdiff_data::{DetectorError, Mts};
use imdiff_metrics::best_f1_threshold;

use crate::any::AnyDetector;
use crate::kind::DetectorKind;

/// One rung's holdout-replay measurement.
#[derive(Debug, Clone)]
pub struct RungOutcome {
    /// The rung's family.
    pub kind: DetectorKind,
    /// Best point-F1 of the rung's scores on the labeled holdout.
    pub f1: f64,
    /// Measured scoring cost in microseconds per holdout row. **Evidence
    /// only** — never an input to the rung decision.
    pub us_per_row: f64,
}

/// The evaluator's verdict over a full ladder.
#[derive(Debug, Clone)]
pub struct LadderDecision {
    /// Index into the ladder of the pinned rung.
    pub chosen: usize,
    /// Per-rung measurements, in ladder order.
    pub outcomes: Vec<RungOutcome>,
}

/// Picks the first (cheapest, by ladder-order convention) rung whose F1
/// is within `f1_tolerance` of the best rung's F1.
///
/// Pure and deterministic; panics on an empty ladder (a configuration
/// error the spec layer rejects earlier).
pub fn choose_rung(outcomes: &[RungOutcome], f1_tolerance: f64) -> usize {
    assert!(!outcomes.is_empty(), "escalation ladder must be non-empty");
    let best = outcomes.iter().map(|o| o.f1).fold(f64::NEG_INFINITY, f64::max);
    outcomes
        .iter()
        .position(|o| o.f1 >= best - f1_tolerance)
        .unwrap_or(outcomes.len() - 1)
}

/// Replays the labeled holdout through every rung and decides the pin.
///
/// `labels[i]` is the ground-truth anomaly flag of holdout row `i`. Each
/// rung scores the full slice read-only ([`AnyDetector::score_series`]);
/// its F1 is the best achievable over all thresholds
/// ([`best_f1_threshold`]) so the comparison measures the *ranking*
/// quality of each family, not a particular calibration.
pub fn evaluate_ladder(
    rungs: &[&AnyDetector],
    holdout: &Mts,
    labels: &[bool],
    f1_tolerance: f64,
) -> Result<LadderDecision, DetectorError> {
    if rungs.is_empty() {
        return Err(DetectorError::InvalidTrainingData(
            "escalation ladder must have at least one rung".into(),
        ));
    }
    if labels.len() != holdout.len() {
        return Err(DetectorError::InvalidTrainingData(format!(
            "holdout has {} rows but {} labels",
            holdout.len(),
            labels.len()
        )));
    }
    let mut outcomes = Vec::with_capacity(rungs.len());
    for det in rungs {
        let started = Instant::now();
        let scores = det.score_series(holdout, None)?;
        let elapsed_us = started.elapsed().as_secs_f64() * 1e6;
        let (_, prf1) = best_f1_threshold(&scores, labels);
        outcomes.push(RungOutcome {
            kind: det.kind(),
            f1: prf1.f1,
            us_per_row: elapsed_us / holdout.len().max(1) as f64,
        });
    }
    let chosen = choose_rung(&outcomes, f1_tolerance);
    Ok(LadderDecision { chosen, outcomes })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(kind: DetectorKind, f1: f64) -> RungOutcome {
        RungOutcome {
            kind,
            f1,
            us_per_row: 1.0,
        }
    }

    #[test]
    fn cheapest_rung_within_tolerance_wins() {
        let ladder = vec![
            outcome(DetectorKind::ZScore, 0.78),
            outcome(DetectorKind::IForest, 0.80),
            outcome(DetectorKind::ImDiffusion, 0.82),
        ];
        // Tolerance 0.05: z-score (0.78 ≥ 0.82 − 0.05) is good enough.
        assert_eq!(choose_rung(&ladder, 0.05), 0);
        // Tolerance 0.03: IForest is the first rung within reach.
        assert_eq!(choose_rung(&ladder, 0.03), 1);
        // Zero tolerance: only the best rung qualifies.
        assert_eq!(choose_rung(&ladder, 0.0), 2);
    }

    #[test]
    fn cost_never_influences_the_decision() {
        let mut ladder = vec![
            outcome(DetectorKind::ZScore, 0.50),
            outcome(DetectorKind::ImDiffusion, 0.90),
        ];
        let with_cheap_apex = choose_rung(&ladder, 0.1);
        ladder[1].us_per_row = 1e9;
        assert_eq!(choose_rung(&ladder, 0.1), with_cheap_apex);
    }
}
