//! Detector-family identifiers.
//!
//! One tag per family, shared by the checkpoint envelope (a single byte on
//! disk), the serving wire protocol (family strings in `Health`/`Reload`
//! responses) and tenant configuration (parsing family names from specs).

/// Every detector family the registry can construct, persist and serve.
///
/// Order matters only for documentation; the on-disk identity of a family
/// is its [`tag`](Self::tag) byte and its wire identity is its
/// [`name`](Self::name) string, both stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectorKind {
    /// Per-channel Gaussian profile (statistical floor of the ladder).
    ZScore,
    /// Randomized isolation trees.
    IForest,
    /// Adversarially-regularized autoencoder.
    BeatGan,
    /// Stacked LSTM next-step predictor.
    LstmAd,
    /// Hierarchical inter-metric + temporal VAE.
    InterFusion,
    /// GRU + VAE reconstructor.
    OmniAnomaly,
    /// Sensor-embedding graph attention forecaster.
    Gdn,
    /// LSTM GAN with latent-search scoring.
    MadGan,
    /// Feature + temporal attention hybrid.
    MtadGat,
    /// Signature correlation matrices + conv AE.
    Mscred,
    /// Two-phase adversarial transformer.
    TranAd,
    /// The paper's imputed-diffusion ensemble detector.
    ImDiffusion,
}

impl DetectorKind {
    /// All families, cheapest-first (the canonical escalation order).
    pub const ALL: [DetectorKind; 12] = [
        DetectorKind::ZScore,
        DetectorKind::IForest,
        DetectorKind::BeatGan,
        DetectorKind::LstmAd,
        DetectorKind::InterFusion,
        DetectorKind::OmniAnomaly,
        DetectorKind::Gdn,
        DetectorKind::MadGan,
        DetectorKind::MtadGat,
        DetectorKind::Mscred,
        DetectorKind::TranAd,
        DetectorKind::ImDiffusion,
    ];

    /// The stable single-byte envelope tag of this family.
    pub fn tag(self) -> u8 {
        match self {
            DetectorKind::ZScore => 1,
            DetectorKind::IForest => 2,
            DetectorKind::BeatGan => 3,
            DetectorKind::LstmAd => 4,
            DetectorKind::InterFusion => 5,
            DetectorKind::OmniAnomaly => 6,
            DetectorKind::Gdn => 7,
            DetectorKind::MadGan => 8,
            DetectorKind::MtadGat => 9,
            DetectorKind::Mscred => 10,
            DetectorKind::TranAd => 11,
            DetectorKind::ImDiffusion => 12,
        }
    }

    /// Inverse of [`Self::tag`]; `None` for unknown bytes (corrupt or
    /// future envelopes).
    pub fn from_tag(tag: u8) -> Option<Self> {
        DetectorKind::ALL.into_iter().find(|k| k.tag() == tag)
    }

    /// The family name — identical to the wrapped detector's
    /// `Detector::name()` so health endpoints, benchmark rows and logs
    /// agree on spelling.
    pub fn name(self) -> &'static str {
        match self {
            DetectorKind::ZScore => "ZScore",
            DetectorKind::IForest => "IForest",
            DetectorKind::BeatGan => "BeatGAN",
            DetectorKind::LstmAd => "LSTM-AD",
            DetectorKind::InterFusion => "InterFusion",
            DetectorKind::OmniAnomaly => "OmniAnomaly",
            DetectorKind::Gdn => "GDN",
            DetectorKind::MadGan => "MAD-GAN",
            DetectorKind::MtadGat => "MTAD-GAT",
            DetectorKind::Mscred => "MSCRED",
            DetectorKind::TranAd => "TranAD",
            DetectorKind::ImDiffusion => "ImDiffusion",
        }
    }

    /// Inverse of [`Self::name`] (exact match).
    pub fn parse(name: &str) -> Option<Self> {
        DetectorKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// The smallest serving window (rows per evaluation) the family can
    /// score: each neural baseline needs at least its internal context
    /// window, MSCRED additionally its largest signature scale. For
    /// `ImDiffusion` the serving window must equal the configured
    /// diffusion window, so the floor here is just 1.
    pub fn min_serving_window(self) -> usize {
        match self {
            DetectorKind::ZScore | DetectorKind::IForest | DetectorKind::ImDiffusion => 1,
            DetectorKind::Gdn => 13,
            DetectorKind::MadGan | DetectorKind::TranAd => 16,
            DetectorKind::LstmAd | DetectorKind::MtadGat => 17,
            DetectorKind::BeatGan | DetectorKind::InterFusion | DetectorKind::OmniAnomaly => 24,
            DetectorKind::Mscred => 33,
        }
    }
}

impl std::fmt::Display for DetectorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_and_names_roundtrip_and_are_unique() {
        let mut tags: Vec<u8> = DetectorKind::ALL.iter().map(|k| k.tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), DetectorKind::ALL.len());
        for k in DetectorKind::ALL {
            assert_eq!(DetectorKind::from_tag(k.tag()), Some(k));
            assert_eq!(DetectorKind::parse(k.name()), Some(k));
        }
        assert_eq!(DetectorKind::from_tag(0), None);
        assert_eq!(DetectorKind::from_tag(200), None);
        assert_eq!(DetectorKind::parse("NoSuchFamily"), None);
    }
}
