//! [`AnyDetector`] — one concrete type over every detector family.
//!
//! The serving stack is generic over [`WindowScorer`], but tenant specs,
//! checkpoint files and hot-reload plumbing need a single *concrete* type
//! that can be any family at runtime. `AnyDetector` is that type: an enum
//! over ImDiffusion and the eleven baseline families behind a uniform
//! `fit → snapshot → persist → restore` lifecycle (the IMDE envelope of
//! [`crate::envelope`]).
//!
//! For baseline families — whose native output is a per-row score vector,
//! not an ensemble trace — `score_windows` synthesizes a degenerate
//! single-step [`EnsembleOutput`]: one `StepTrace` with `ratio = 1.0`,
//! errors equal to the scores, and a train-calibrated τ (the 99th
//! percentile of the family's training scores), so `revote` reduces to
//! plain thresholding and the monitor's verdict machinery works unchanged.

use imdiff_baselines::{
    BeatGan, Gdn, InterFusion, IsolationForest, LstmAd, MadGan, Mscred, MtadGat, OmniAnomaly,
    TranAd, ZScoreDetector,
};
use imdiff_data::{Detection, Detector, DetectorError, Mts};
use imdiff_metrics::threshold_at_percentile;
use imdiffusion::{
    DriftReference, EnsembleOutput, ImDiffusionConfig, ImDiffusionDetector, StepTrace,
    WindowScorer,
};

use crate::kind::DetectorKind;

/// Percentile of the training-score distribution used as the synthesized
/// vote threshold τ for baseline families.
const TAU_PERCENTILE: f64 = 99.0;

/// The wrapped family model. ImDiffusion keeps its full detector (ensemble
/// trace, fine-tuning, native IMDF checkpoints), boxed because it dwarfs
/// every baseline struct; each baseline keeps its fitted family struct.
pub(crate) enum Model {
    ZScore(ZScoreDetector),
    IForest(IsolationForest),
    BeatGan(BeatGan),
    LstmAd(LstmAd),
    InterFusion(InterFusion),
    OmniAnomaly(OmniAnomaly),
    Gdn(Gdn),
    MadGan(MadGan),
    MtadGat(MtadGat),
    Mscred(Mscred),
    TranAd(TranAd),
    ImDiffusion(Box<ImDiffusionDetector>),
}

/// Dispatches over the eleven baseline arms with one body, with a separate
/// body for the ImDiffusion arm (whose API differs).
macro_rules! dispatch {
    ($model:expr, |$d:ident| $body:expr, |$im:ident| $ibody:expr) => {
        match $model {
            Model::ZScore($d) => $body,
            Model::IForest($d) => $body,
            Model::BeatGan($d) => $body,
            Model::LstmAd($d) => $body,
            Model::InterFusion($d) => $body,
            Model::OmniAnomaly($d) => $body,
            Model::Gdn($d) => $body,
            Model::MadGan($d) => $body,
            Model::MtadGat($d) => $body,
            Model::Mscred($d) => $body,
            Model::TranAd($d) => $body,
            Model::ImDiffusion($im) => $ibody,
        }
    };
}

/// A detector of any registered family, with a uniform lifecycle.
pub struct AnyDetector {
    kind: DetectorKind,
    cfg: ImDiffusionConfig,
    seed: u64,
    serving_window: usize,
    /// Synthesized vote threshold for baseline families (train-score 99th
    /// percentile). Unused by ImDiffusion, whose ensemble carries its own.
    tau: f64,
    /// Drift reference for baseline families; ImDiffusion's lives inside
    /// its own detector (and its IMDF checkpoint image).
    drift_ref: Option<DriftReference>,
    /// Channel count once fitted or restored.
    channels: Option<usize>,
    model: Model,
}

impl AnyDetector {
    /// Creates an unfitted detector of the given family.
    ///
    /// `cfg` is the full ImDiffusion configuration: the diffusion families
    /// use all of it; baseline families use only `cfg.window` as the
    /// *requested* serving window, clamped up to the family's
    /// [`DetectorKind::min_serving_window`]. `seed` drives every RNG the
    /// family owns, making fit and scoring bit-reproducible.
    pub fn new(kind: DetectorKind, cfg: ImDiffusionConfig, seed: u64) -> Self {
        let serving_window = if kind == DetectorKind::ImDiffusion {
            cfg.window
        } else {
            cfg.window.max(kind.min_serving_window())
        };
        let model = match kind {
            DetectorKind::ZScore => Model::ZScore(ZScoreDetector::new(seed)),
            DetectorKind::IForest => Model::IForest(IsolationForest::new(seed)),
            DetectorKind::BeatGan => Model::BeatGan(BeatGan::new(seed)),
            DetectorKind::LstmAd => Model::LstmAd(LstmAd::new(seed)),
            DetectorKind::InterFusion => Model::InterFusion(InterFusion::new(seed)),
            DetectorKind::OmniAnomaly => Model::OmniAnomaly(OmniAnomaly::new(seed)),
            DetectorKind::Gdn => Model::Gdn(Gdn::new(seed)),
            DetectorKind::MadGan => Model::MadGan(MadGan::new(seed)),
            DetectorKind::MtadGat => Model::MtadGat(MtadGat::new(seed)),
            DetectorKind::Mscred => Model::Mscred(Mscred::new(seed)),
            DetectorKind::TranAd => Model::TranAd(TranAd::new(seed)),
            DetectorKind::ImDiffusion => {
                Model::ImDiffusion(Box::new(ImDiffusionDetector::new(cfg.clone(), seed)))
            }
        };
        AnyDetector {
            kind,
            cfg,
            seed,
            serving_window,
            tau: 0.0,
            drift_ref: None,
            channels: None,
            model,
        }
    }

    /// Rebuilds a restored detector from its envelope-decoded parts
    /// (crate-internal: [`crate::envelope`] is the public entry).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        kind: DetectorKind,
        cfg: ImDiffusionConfig,
        seed: u64,
        serving_window: usize,
        tau: f64,
        drift_ref: Option<DriftReference>,
        channels: usize,
        model: Model,
    ) -> Self {
        AnyDetector {
            kind,
            cfg,
            seed,
            serving_window,
            tau,
            drift_ref,
            channels: Some(channels),
            model,
        }
    }

    /// The family of this detector.
    pub fn kind(&self) -> DetectorKind {
        self.kind
    }

    /// The construction seed (envelope restore reuses it).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configuration in use (fully meaningful for ImDiffusion; the
    /// serving window source for baselines).
    pub fn config(&self) -> &ImDiffusionConfig {
        &self.cfg
    }

    /// The synthesized vote threshold (baseline families; 0 before fit).
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// The wrapped ImDiffusion detector, when this is one (fine-tuning and
    /// the native checkpoint tooling need the concrete type).
    pub fn as_imdiffusion(&self) -> Option<&ImDiffusionDetector> {
        match &self.model {
            Model::ImDiffusion(d) => Some(d.as_ref()),
            _ => None,
        }
    }

    /// Mutable access to the wrapped ImDiffusion detector.
    pub fn as_imdiffusion_mut(&mut self) -> Option<&mut ImDiffusionDetector> {
        match &mut self.model {
            Model::ImDiffusion(d) => Some(d.as_mut()),
            _ => None,
        }
    }

    /// Whole-series, read-only, mask-aware scoring — the path the
    /// escalation evaluator replays holdout slices through. For baselines
    /// this is the family's native `score_series`; for ImDiffusion the
    /// series is covered with serving-window slices (stride = window, the
    /// final slice aligned to the end) scored via the batched window path,
    /// and overlapping rows average their scores.
    pub fn score_series(
        &self,
        test: &Mts,
        missing: Option<&[bool]>,
    ) -> Result<Vec<f64>, DetectorError> {
        dispatch!(&self.model, |d| d.score_series(test, missing), |im| {
            let w = self.serving_window;
            let (n, k) = (test.len(), test.dim());
            if n < w {
                return Err(DetectorError::InvalidTrainingData(format!(
                    "series has {n} rows, need at least the serving window {w}"
                )));
            }
            if let Some(m) = missing {
                if m.len() != n * k {
                    return Err(DetectorError::InvalidTrainingData(format!(
                        "missing mask has {} cells, series has {}",
                        m.len(),
                        n * k
                    )));
                }
            }
            let mut starts: Vec<usize> = (0..n.saturating_sub(w - 1)).step_by(w).collect();
            if starts.last().copied() != Some(n - w) {
                starts.push(n - w);
            }
            let slices: Vec<Mts> = starts.iter().map(|&s| test.slice_time(s, w)).collect();
            let masks: Vec<Option<Vec<bool>>> = starts
                .iter()
                .map(|&s| missing.map(|m| m[s * k..(s + w) * k].to_vec()))
                .collect();
            let windows: Vec<(&Mts, Option<&[bool]>)> = slices
                .iter()
                .zip(&masks)
                .map(|(sl, ma)| (sl, ma.as_deref()))
                .collect();
            let outputs = im.detect_windows(&windows)?;
            let mut sum = vec![0.0f64; n];
            let mut cnt = vec![0u32; n];
            for (&s, out) in starts.iter().zip(&outputs) {
                for (l, &sc) in out.scores.iter().enumerate() {
                    sum[s + l] += sc;
                    cnt[s + l] += 1;
                }
            }
            Ok(sum
                .iter()
                .zip(&cnt)
                .map(|(&acc, &c)| acc / c.max(1) as f64)
                .collect())
        })
    }

    /// The family's native checkpoint payload — what the IMDE envelope
    /// wraps: `snapshot_payload` bytes for baselines, the full IMDF image
    /// for ImDiffusion.
    pub(crate) fn native_payload(&self) -> Result<Vec<u8>, DetectorError> {
        dispatch!(&self.model, |d| d.snapshot_payload(), |im| im.save_bytes())
    }

    /// Synthesizes the degenerate single-step [`EnsembleOutput`] for a
    /// baseline window score vector.
    fn synthesize_output(
        &self,
        window: &Mts,
        missing: Option<&[bool]>,
        scores: Vec<f64>,
    ) -> EnsembleOutput {
        let (w, k) = (window.len(), window.dim());
        let labels: Vec<bool> = scores.iter().map(|&s| s >= self.tau).collect();
        let votes: Vec<u32> = labels.iter().map(|&b| b as u32).collect();
        let mut cell_error = vec![0.0f64; w * k];
        for (l, &s) in scores.iter().enumerate() {
            let row = s / k.max(1) as f64;
            for c in 0..k {
                cell_error[l * k + c] = row;
            }
        }
        EnsembleOutput {
            scores: scores.clone(),
            votes,
            labels: labels.clone(),
            steps: vec![StepTrace {
                t: 1,
                error: scores,
                tau: self.tau,
                ratio: 1.0,
                labels,
                imputed: window.clone(),
            }],
            tau_base: self.tau,
            vote_threshold: 0,
            cell_error,
            channels: k,
            missing_cells: missing.map_or(0, |m| m.iter().filter(|&&b| b).count()),
        }
    }
}

impl Model {
    /// Rebuilds a fitted family model from its native payload bytes.
    pub(crate) fn restore(
        kind: DetectorKind,
        cfg: &ImDiffusionConfig,
        seed: u64,
        channels: usize,
        payload: &[u8],
    ) -> Result<Model, DetectorError> {
        Ok(match kind {
            DetectorKind::ZScore => {
                Model::ZScore(ZScoreDetector::restore_from_payload(seed, payload)?)
            }
            DetectorKind::IForest => {
                Model::IForest(IsolationForest::restore_from_payload(seed, payload)?)
            }
            DetectorKind::BeatGan => Model::BeatGan(BeatGan::restore_from_payload(seed, payload)?),
            DetectorKind::LstmAd => Model::LstmAd(LstmAd::restore_from_payload(seed, payload)?),
            DetectorKind::InterFusion => {
                Model::InterFusion(InterFusion::restore_from_payload(seed, payload)?)
            }
            DetectorKind::OmniAnomaly => {
                Model::OmniAnomaly(OmniAnomaly::restore_from_payload(seed, payload)?)
            }
            DetectorKind::Gdn => Model::Gdn(Gdn::restore_from_payload(seed, payload)?),
            DetectorKind::MadGan => Model::MadGan(MadGan::restore_from_payload(seed, payload)?),
            DetectorKind::MtadGat => Model::MtadGat(MtadGat::restore_from_payload(seed, payload)?),
            DetectorKind::Mscred => Model::Mscred(Mscred::restore_from_payload(seed, payload)?),
            DetectorKind::TranAd => Model::TranAd(TranAd::restore_from_payload(seed, payload)?),
            DetectorKind::ImDiffusion => Model::ImDiffusion(Box::new(
                ImDiffusionDetector::load_bytes(cfg.clone(), seed, channels, payload)?,
            )),
        })
    }
}

impl Detector for AnyDetector {
    fn name(&self) -> &'static str {
        self.kind.name()
    }

    fn fit(&mut self, train: &Mts) -> Result<(), DetectorError> {
        dispatch!(
            &mut self.model,
            |d| {
                d.fit(train)?;
                // Calibrate the synthesized τ on the training scores and
                // arm drift detection from the same split — the uniform
                // metadata every family carries in its envelope.
                let train_scores = d.score_series(train, None)?;
                self.tau = threshold_at_percentile(&train_scores, TAU_PERCENTILE);
                self.drift_ref = Some(DriftReference::from_series(train, self.serving_window));
                self.channels = Some(train.dim());
                Ok(())
            },
            |im| {
                im.fit(train)?;
                self.channels = Some(train.dim());
                Ok(())
            }
        )
    }

    fn detect(&mut self, test: &Mts) -> Result<Detection, DetectorError> {
        dispatch!(&mut self.model, |d| d.detect(test), |im| im.detect(test))
    }
}

impl WindowScorer for AnyDetector {
    fn family(&self) -> &'static str {
        self.kind.name()
    }

    fn is_fitted(&self) -> bool {
        match &self.model {
            Model::ImDiffusion(d) => d.is_fitted(),
            _ => self.channels.is_some(),
        }
    }

    fn window(&self) -> usize {
        self.serving_window
    }

    fn channels(&self) -> Option<usize> {
        match &self.model {
            Model::ImDiffusion(d) => d.channels(),
            _ => self.channels,
        }
    }

    fn drift_reference(&self) -> Option<&DriftReference> {
        match &self.model {
            Model::ImDiffusion(d) => d.drift_reference(),
            _ => self.drift_ref.as_ref(),
        }
    }

    fn score_windows(
        &self,
        windows: &[(&Mts, Option<&[bool]>)],
    ) -> Result<Vec<EnsembleOutput>, DetectorError> {
        dispatch!(&self.model, |d| {
            let mut out = Vec::with_capacity(windows.len());
            for &(series, missing) in windows {
                if series.len() != self.serving_window {
                    return Err(DetectorError::InvalidTrainingData(format!(
                        "window has {} rows, serving window is {}",
                        series.len(),
                        self.serving_window
                    )));
                }
                let scores = d.score_series(series, missing)?;
                out.push(self.synthesize_output(series, missing, scores));
            }
            Ok(out)
        }, |im| im.detect_windows(windows))
    }
}
