//! The IMDE checkpoint envelope — one CRC-checked container format for
//! every detector family.
//!
//! Layout (all integers little-endian):
//!
//! | field | size | meaning |
//! |---|---|---|
//! | magic | 4 | `"IMDE"` |
//! | version | u32 | format version (currently 1) |
//! | crc | u32 | CRC-32 of every byte after this field |
//! | family | u8 | [`DetectorKind::tag`] |
//! | seed | u64 | construction seed (restore rebuilds RNG state from it) |
//! | serving window | u32 | rows per streaming evaluation |
//! | channels | u32 | channel count K of the fitted model |
//! | τ | f64 | synthesized vote threshold (baselines; 0 for ImDiffusion) |
//! | drift flag | u8 | 1 ⇒ a `[4, K]` f32 drift reference follows |
//! | payload len | u32 | length of the family-native payload |
//! | payload | … | `snapshot_payload` bytes, or the IMDF image |
//!
//! Legacy raw `IMDF` checkpoints (written before the registry existed) are
//! accepted by magic sniffing: they restore as ImDiffusion with the
//! caller-supplied seed/channel fallbacks, exactly as
//! [`ImDiffusionDetector::load_bytes`] always did.

use std::path::Path;

use imdiff_data::{Detector, DetectorError, Mts};
use imdiff_nn::serialize::{atomic_write, crc32};
use imdiffusion::{DriftReference, ImDiffusionConfig, WindowScorer};

use crate::any::{AnyDetector, Model};
use crate::kind::DetectorKind;

/// Magic prefix of a registry envelope.
pub const ENVELOPE_MAGIC: &[u8; 4] = b"IMDE";
/// Current envelope format version.
pub const ENVELOPE_VERSION: u32 = 1;
/// Magic prefix of a legacy raw ImDiffusion checkpoint.
const LEGACY_MAGIC: &[u8; 4] = b"IMDF";

fn corrupt(msg: impl std::fmt::Display) -> DetectorError {
    DetectorError::CorruptCheckpoint(format!("registry envelope: {msg}"))
}

/// Minimal cursor over envelope bytes (every shortfall is a typed
/// corruption error, mirroring the baselines' payload reader).
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DetectorError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        let end = end.ok_or_else(|| corrupt("truncated"))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, DetectorError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DetectorError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DetectorError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, DetectorError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32s(&mut self, n: usize) -> Result<Vec<f32>, DetectorError> {
        if n.saturating_mul(4) > self.buf.len() - self.pos {
            return Err(corrupt("truncated drift reference"));
        }
        (0..n)
            .map(|_| Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap())))
            .collect()
    }
}

impl AnyDetector {
    /// The full envelope image as an in-memory byte buffer — exactly what
    /// [`Self::save`] writes to disk.
    pub fn save_bytes(&self) -> Result<Vec<u8>, DetectorError> {
        let channels = self.channels().ok_or(DetectorError::NotFitted)?;
        let payload = self.native_payload()?;
        let mut body = Vec::with_capacity(payload.len() + 64);
        body.push(self.kind().tag());
        body.extend_from_slice(&self.seed().to_le_bytes());
        body.extend_from_slice(&(self.window() as u32).to_le_bytes());
        body.extend_from_slice(&(channels as u32).to_le_bytes());
        body.extend_from_slice(&self.tau().to_le_bytes());
        match self.drift_reference() {
            Some(r) => {
                body.push(1);
                for v in r.to_flat() {
                    body.extend_from_slice(&v.to_le_bytes());
                }
            }
            None => body.push(0),
        }
        body.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        body.extend_from_slice(&payload);

        let mut out = Vec::with_capacity(body.len() + 12);
        out.extend_from_slice(ENVELOPE_MAGIC);
        out.extend_from_slice(&ENVELOPE_VERSION.to_le_bytes());
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&body);
        Ok(out)
    }

    /// Persists the envelope atomically (write-to-temp + rename).
    pub fn save(&self, path: &Path) -> Result<(), DetectorError> {
        let bytes = self.save_bytes()?;
        atomic_write(path, &bytes)
            .map_err(|e| DetectorError::Io(format!("cannot write envelope: {e}")))
    }

    /// Restores a detector from envelope bytes.
    ///
    /// `cfg` rebuilds the ImDiffusion architecture when the envelope holds
    /// that family (and supplies the serving window for its validation);
    /// `fallback_seed`/`fallback_channels` are used **only** for legacy
    /// raw-IMDF checkpoints, which don't record them. IMDE envelopes carry
    /// their own.
    pub fn load_bytes(
        cfg: &ImDiffusionConfig,
        fallback_seed: u64,
        fallback_channels: usize,
        bytes: &[u8],
    ) -> Result<AnyDetector, DetectorError> {
        if bytes.len() >= 4 && &bytes[..4] == LEGACY_MAGIC {
            let model = Model::restore(
                DetectorKind::ImDiffusion,
                cfg,
                fallback_seed,
                fallback_channels,
                bytes,
            )?;
            return Ok(AnyDetector::from_parts(
                DetectorKind::ImDiffusion,
                cfg.clone(),
                fallback_seed,
                cfg.window,
                0.0,
                None,
                fallback_channels,
                model,
            ));
        }
        let mut d = Dec::new(bytes);
        if d.take(4)? != ENVELOPE_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = d.u32()?;
        if version != ENVELOPE_VERSION {
            return Err(corrupt(format!("unsupported version {version}")));
        }
        let stored_crc = d.u32()?;
        let body = &bytes[d.pos..];
        if crc32(body) != stored_crc {
            return Err(corrupt("CRC mismatch"));
        }
        let kind = DetectorKind::from_tag(d.u8()?)
            .ok_or_else(|| corrupt("unknown family tag"))?;
        let seed = d.u64()?;
        let serving_window = d.u32()? as usize;
        let channels = d.u32()? as usize;
        let tau = d.f64()?;
        if channels == 0 {
            return Err(corrupt("zero channels"));
        }
        if !tau.is_finite() {
            return Err(corrupt("non-finite tau"));
        }
        if kind == DetectorKind::ImDiffusion {
            if serving_window != cfg.window {
                return Err(DetectorError::InvalidTrainingData(format!(
                    "envelope serving window {serving_window} does not match \
                     configured diffusion window {}",
                    cfg.window
                )));
            }
        } else if serving_window < kind.min_serving_window() {
            return Err(corrupt(format!(
                "serving window {serving_window} below the {} family floor {}",
                kind.name(),
                kind.min_serving_window()
            )));
        }
        let drift_ref = match d.u8()? {
            0 => None,
            1 => {
                let flat = d.f32s(4 * channels)?;
                Some(
                    DriftReference::from_flat(&flat, channels)
                        .ok_or_else(|| corrupt("malformed drift reference"))?,
                )
            }
            other => return Err(corrupt(format!("bad drift flag {other}"))),
        };
        let payload_len = d.u32()? as usize;
        let payload = d.take(payload_len)?;
        if d.pos != bytes.len() {
            return Err(corrupt("trailing bytes"));
        }
        let model = Model::restore(kind, cfg, seed, channels, payload)?;
        // ImDiffusion's drift reference lives inside its IMDF payload; the
        // envelope copy is authoritative only for baseline families.
        let drift_ref = if kind == DetectorKind::ImDiffusion {
            None
        } else {
            drift_ref
        };
        Ok(AnyDetector::from_parts(
            kind,
            cfg.clone(),
            seed,
            serving_window,
            tau,
            drift_ref,
            channels,
            model,
        ))
    }

    /// File form of [`Self::load_bytes`].
    pub fn load(
        cfg: &ImDiffusionConfig,
        fallback_seed: u64,
        fallback_channels: usize,
        path: &Path,
    ) -> Result<AnyDetector, DetectorError> {
        let bytes = std::fs::read(path)
            .map_err(|e| DetectorError::Io(format!("cannot read {}: {e}", path.display())))?;
        Self::load_bytes(cfg, fallback_seed, fallback_channels, &bytes)
    }

    /// A [`Send`]-safe snapshot of this detector (the cross-thread
    /// currency of the serving stack — model tensors are not `Send`).
    pub fn to_spec(&self) -> Result<AnySpec, DetectorError> {
        Ok(AnySpec {
            cfg: self.config().clone(),
            seed: self.seed(),
            channels: self.channels().ok_or(DetectorError::NotFitted)?,
            bytes: self.save_bytes()?,
        })
    }
}

/// A `Send`-safe detector snapshot: the full IMDE envelope plus the
/// configuration needed to rebuild architecture skeletons. Build on the
/// destination thread with [`AnySpec::build`].
#[derive(Clone)]
pub struct AnySpec {
    /// Configuration (architecture + serving window source).
    pub cfg: ImDiffusionConfig,
    /// Construction seed (legacy-IMDF fallback; envelopes embed their own).
    pub seed: u64,
    /// Channel count (legacy-IMDF fallback).
    pub channels: usize,
    /// The envelope image ([`AnyDetector::save_bytes`]) — or a legacy raw
    /// IMDF image, accepted identically.
    pub bytes: Vec<u8>,
}

impl AnySpec {
    /// Reconstructs the detector (typically on another thread).
    pub fn build(&self) -> Result<AnyDetector, DetectorError> {
        AnyDetector::load_bytes(&self.cfg, self.seed, self.channels, &self.bytes)
    }

    /// The family recorded in the snapshot (envelope tag, or ImDiffusion
    /// for legacy images); `None` when the bytes are unparseable.
    pub fn kind(&self) -> Option<DetectorKind> {
        sniff_family(&self.bytes)
    }
}

/// Reads only the family tag from an envelope (or legacy) image without
/// full decoding — what supervisors use to report the family of an
/// on-disk checkpoint they haven't adopted yet.
pub fn sniff_family(bytes: &[u8]) -> Option<DetectorKind> {
    if bytes.len() >= 4 && &bytes[..4] == LEGACY_MAGIC {
        return Some(DetectorKind::ImDiffusion);
    }
    if bytes.len() >= 13 && &bytes[..4] == ENVELOPE_MAGIC {
        return DetectorKind::from_tag(bytes[12]);
    }
    None
}

/// Convenience for tests and examples: fit a fresh detector of `kind` on
/// `train` and return it.
pub fn fit_detector(
    kind: DetectorKind,
    cfg: &ImDiffusionConfig,
    seed: u64,
    train: &Mts,
) -> Result<AnyDetector, DetectorError> {
    let mut det = AnyDetector::new(kind, cfg.clone(), seed);
    det.fit(train)?;
    Ok(det)
}
