//! Envelope integrity properties: every family round-trips bit-exactly
//! through its IMDE envelope, and *any* single-byte flip, truncation or
//! trailing-garbage corruption is detected as a typed error — mirroring
//! the IMDF/IMSM corruption suites.

use imdiff_data::synthetic::{generate, Benchmark, SizeProfile};
use imdiff_data::{Detector, DetectorError, Mts};
use imdiff_registry::{sniff_family, AnyDetector, DetectorKind};
use imdiffusion::{ImDiffusionConfig, WindowScorer};
use proptest::prelude::*;

const SEED: u64 = 41;

fn tiny_cfg() -> ImDiffusionConfig {
    ImDiffusionConfig {
        window: 16,
        train_stride: 8,
        hidden: 8,
        heads: 2,
        residual_blocks: 1,
        diffusion_steps: 5,
        train_steps: 10,
        batch_size: 2,
        vote_span: 5,
        vote_every: 2,
        ..ImDiffusionConfig::quick()
    }
}

fn dataset() -> imdiff_data::synthetic::LabeledDataset {
    generate(
        Benchmark::Gcp,
        &SizeProfile {
            train_len: 150,
            test_len: 80,
        },
        SEED,
    )
}

fn fitted(kind: DetectorKind) -> (AnyDetector, Mts) {
    let ds = dataset();
    let mut det = AnyDetector::new(kind, tiny_cfg(), SEED);
    det.fit(&ds.train).expect("fit");
    (det, ds.test)
}

#[test]
fn every_family_roundtrips_bit_exactly() {
    for kind in DetectorKind::ALL {
        let (det, test) = fitted(kind);
        let before = det.score_series(&test, None).expect("score before");
        let bytes = det.save_bytes().expect("envelope");
        assert_eq!(sniff_family(&bytes), Some(kind), "{kind}: sniffed family");

        let restored =
            AnyDetector::load_bytes(&tiny_cfg(), SEED, test.dim(), &bytes).expect("restore");
        assert_eq!(restored.kind(), kind);
        assert_eq!(restored.family(), kind.name());
        assert_eq!(restored.window(), det.window(), "{kind}: serving window");
        assert_eq!(restored.channels(), det.channels(), "{kind}: channels");
        assert!(
            restored.drift_reference().is_some(),
            "{kind}: drift reference must survive the envelope"
        );
        let after = restored.score_series(&test, None).expect("score after");
        assert_eq!(before, after, "{kind}: restored scores must be bit-identical");
    }
}

#[test]
fn windowed_scoring_survives_the_roundtrip() {
    // The serving-facing path: score_windows on exact serving windows.
    let (det, test) = fitted(DetectorKind::IForest);
    let w = det.window();
    let win = test.slice_time(0, w);
    let out_before = det.score_windows(&[(&win, None)]).expect("windows before");
    let bytes = det.save_bytes().unwrap();
    let restored = AnyDetector::load_bytes(&tiny_cfg(), SEED, test.dim(), &bytes).unwrap();
    let out_after = restored.score_windows(&[(&win, None)]).expect("windows after");
    assert_eq!(out_before[0].scores, out_after[0].scores);
    assert_eq!(out_before[0].labels, out_after[0].labels);
    assert_eq!(out_before[0].tau_base, out_after[0].tau_base);
}

#[test]
fn legacy_imdf_image_loads_as_imdiffusion() {
    let (det, test) = fitted(DetectorKind::ImDiffusion);
    let legacy = det
        .as_imdiffusion()
        .expect("is ImDiffusion")
        .save_bytes()
        .expect("IMDF image");
    assert_eq!(sniff_family(&legacy), Some(DetectorKind::ImDiffusion));
    let restored =
        AnyDetector::load_bytes(&tiny_cfg(), SEED, test.dim(), &legacy).expect("legacy restore");
    assert_eq!(restored.kind(), DetectorKind::ImDiffusion);
    let before = det.score_series(&test, None).unwrap();
    let after = restored.score_series(&test, None).unwrap();
    assert_eq!(before, after);
}

#[test]
fn spec_rebuilds_on_another_thread() {
    let (det, test) = fitted(DetectorKind::ZScore);
    let spec = det.to_spec().expect("spec");
    assert_eq!(spec.kind(), Some(DetectorKind::ZScore));
    let before = det.score_series(&test, None).unwrap();
    let after = std::thread::spawn(move || {
        let rebuilt = spec.build().expect("build on thread");
        rebuilt.score_series(&test, None).unwrap()
    })
    .join()
    .expect("thread");
    assert_eq!(before, after);
}

/// One cheap fitted envelope reused by the corruption properties.
fn zscore_envelope() -> (Vec<u8>, usize) {
    let (det, test) = fitted(DetectorKind::ZScore);
    (det.save_bytes().expect("envelope"), test.dim())
}

fn is_typed_rejection(err: DetectorError) -> bool {
    matches!(
        err,
        DetectorError::CorruptCheckpoint(_)
            | DetectorError::InvalidTrainingData(_)
            | DetectorError::Io(_)
    )
}

proptest! {
    #[test]
    fn any_byte_flip_is_detected(pos in 0usize..256, bit in 0u8..8) {
        let (mut bytes, channels) = zscore_envelope();
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        let res = AnyDetector::load_bytes(&tiny_cfg(), SEED, channels, &bytes);
        let err = res.err().expect("flipped envelope must not load");
        prop_assert!(is_typed_rejection(err));
    }

    #[test]
    fn any_truncation_is_detected(cut in 0usize..256) {
        let (bytes, channels) = zscore_envelope();
        let cut = cut % bytes.len();
        let res = AnyDetector::load_bytes(&tiny_cfg(), SEED, channels, &bytes[..cut]);
        let err = res.err().expect("truncated envelope must not load");
        prop_assert!(is_typed_rejection(err));
    }

    #[test]
    fn trailing_garbage_is_detected(extra in 1usize..32) {
        let (mut bytes, channels) = zscore_envelope();
        bytes.extend(std::iter::repeat_n(0xAB, extra));
        let res = AnyDetector::load_bytes(&tiny_cfg(), SEED, channels, &bytes);
        let err = res.err().expect("padded envelope must not load");
        prop_assert!(is_typed_rejection(err));
    }
}
