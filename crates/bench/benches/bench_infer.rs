//! End-to-end ensemble-inference benchmark at fixed thread counts.
//!
//! Runs the full `detect` pipeline (windowing, masked imputation through
//! the diffusion ensemble, voting) once pinned to a single worker and
//! once at the host's full width, so the JSON report captures the
//! window-parallel speedup on multi-core hosts:
//!
//!     cargo bench --bench bench_infer -- --save-json BENCH_infer.json

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use imdiff_data::synthetic::{generate, Benchmark, SizeProfile};
use imdiff_data::Detector;
use imdiff_nn::{obs, pool};
use imdiffusion::{ImDiffusionConfig, ImDiffusionDetector};

/// With `IMDIFF_OBS=1`, the harness writes a span/counter snapshot next
/// to the `--save-json` report (as `<stem>.obs.json`).
fn obs_summary() -> Option<String> {
    obs::enabled().then(obs::snapshot_json)
}

fn bench_infer(c: &mut Criterion) {
    criterion::set_span_summary(obs_summary);
    let size = SizeProfile {
        train_len: 300,
        test_len: 192,
    };
    let mut group = c.benchmark_group("ensemble_infer");
    group.sample_size(10);
    for benchmark in [Benchmark::Gcp, Benchmark::Smd] {
        let ds = generate(benchmark, &size, 1);
        let cfg = ImDiffusionConfig {
            train_steps: 20, // the bench measures inference, not training
            ddim_steps: Some(4),
            ..ImDiffusionConfig::quick()
        };
        let mut det = ImDiffusionDetector::new(cfg, 1);
        det.fit(&ds.train).expect("fit");
        group.throughput(Throughput::Elements(ds.test.len() as u64));

        group.record_threads(1);
        group.bench_with_input(
            BenchmarkId::new(&ds.name, "t1"),
            &ds,
            |b, ds| {
                b.iter(|| {
                    pool::with_threads(1, || black_box(det.detect(&ds.test).expect("detect")))
                })
            },
        );

        // Pinned multi-worker rows: on a single-core host these measure
        // the window-partitioning overhead, on multi-core hosts the
        // group-parallel scaling curve.
        for t in [2usize, 4, 8] {
            group.record_threads(t);
            group.bench_with_input(
                BenchmarkId::new(&ds.name, format!("t{t}")),
                &ds,
                |b, ds| {
                    b.iter(|| {
                        pool::with_threads(t, || black_box(det.detect(&ds.test).expect("detect")))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_infer);
criterion_main!(benches);
