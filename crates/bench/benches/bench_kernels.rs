//! Kernel-level benchmarks for the parallel compute substrate.
//!
//! Compares the cache-blocked `mm_nn` against a naive reference kernel
//! (a transcription of the pre-blocking implementation, including its
//! zero-skip branch) at matched shapes, and times the conv1d and
//! multi-head-attention forward paths. Every record carries a FLOP count
//! so `--save-json BENCH_nn.json` yields GFLOP/s trajectories.
//!
//!     cargo bench --bench bench_kernels -- --save-json BENCH_nn.json

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use imdiff_nn::layers::MultiHeadAttention;
use imdiff_nn::ops::mm_nn;
use imdiff_nn::pool;
use imdiff_nn::rng::seeded;
use imdiff_nn::simd::{self, Tier};
use imdiff_nn::Tensor;
use rand::Rng;

/// The pre-blocking matmul kernel, kept verbatim as the perf baseline:
/// row-major triple loop with a per-element skip of zero lhs entries.
fn mm_nn_naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    for i in 0..m {
        for p in 0..k {
            let av = a[i * k + p];
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for j in 0..n {
                orow[j] += av * brow[j];
            }
        }
    }
}

fn filled(len: usize, rng: &mut impl Rng) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

/// With `IMDIFF_OBS=1`, the harness writes a span/counter snapshot next
/// to the `--save-json` report (as `<stem>.obs.json`).
fn obs_summary() -> Option<String> {
    imdiff_nn::obs::enabled().then(imdiff_nn::obs::snapshot_json)
}

fn bench_matmul(c: &mut Criterion) {
    criterion::set_span_summary(obs_summary);
    let mut rng = seeded(7);
    let mut group = c.benchmark_group("mm_nn");
    group.sample_size(20);
    group.record_threads(1);
    for dim in [32usize, 64, 128] {
        let (m, k, n) = (dim, dim, dim);
        let a = filled(m * k, &mut rng);
        let b = filled(k * n, &mut rng);
        let mut out = vec![0.0f32; m * n];
        group.throughput(Throughput::Flops((2 * m * k * n) as u64));
        group.bench_function(format!("{m}x{k}x{n}/naive/t1"), |bch| {
            bch.iter(|| {
                out.fill(0.0);
                mm_nn_naive(&a, &b, m, k, n, &mut out);
                black_box(out[0])
            })
        });
        group.bench_function(format!("{m}x{k}x{n}/blocked/t1"), |bch| {
            bch.iter(|| {
                pool::with_threads(1, || {
                    out.fill(0.0);
                    mm_nn(&a, &b, m, k, n, &mut out);
                    black_box(out[0])
                })
            })
        });
    }
    // The scalar tier at the same hot shape, so the JSON records the
    // SIMD-vs-scalar gap on this host alongside the dispatched kernel.
    {
        let dim = 128usize;
        let a = filled(dim * dim, &mut rng);
        let b = filled(dim * dim, &mut rng);
        let mut out = vec![0.0f32; dim * dim];
        group.throughput(Throughput::Flops((2 * dim * dim * dim) as u64));
        group.record_threads(1);
        group.bench_function(format!("{dim}x{dim}x{dim}/scalar/t1"), |bch| {
            bch.iter(|| {
                simd::with_tier(Tier::Scalar, || {
                    pool::with_threads(1, || {
                        out.fill(0.0);
                        mm_nn(&a, &b, dim, dim, dim, &mut out);
                        black_box(out[0])
                    })
                })
            })
        });
        // Pinned multi-worker rows: on a single-core host these measure
        // partitioning overhead, on multi-core hosts the scaling curve.
        for t in [2usize, 4, 8] {
            group.record_threads(t);
            group.bench_function(format!("{dim}x{dim}x{dim}/blocked/t{t}"), |bch| {
                bch.iter(|| {
                    pool::with_threads(t, || {
                        out.fill(0.0);
                        mm_nn(&a, &b, dim, dim, dim, &mut out);
                        black_box(out[0])
                    })
                })
            });
        }
    }
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    let mut rng = seeded(11);
    let mut group = c.benchmark_group("conv1d");
    group.sample_size(20);
    let (b, cin, cout, l, k) = (4usize, 16usize, 16usize, 96usize, 3usize);
    let lout = l + 2 - k + 1;
    let x = Tensor::from_vec(filled(b * cin * l, &mut rng), &[b, cin, l]).unwrap();
    let w = Tensor::from_vec(filled(cout * cin * k, &mut rng), &[cout, cin, k]).unwrap();
    let bias = Tensor::from_vec(filled(cout, &mut rng), &[cout]).unwrap();
    group.throughput(Throughput::Flops((2 * b * cout * cin * k * lout) as u64));
    group.record_threads(1);
    group.bench_function(format!("{b}x{cin}x{l}/k{k}/t1"), |bch| {
        bch.iter(|| pool::with_threads(1, || black_box(x.conv1d(&w, &bias, 1).to_vec()[0])))
    });
    for t in [2usize, 4, 8] {
        group.record_threads(t);
        group.bench_function(format!("{b}x{cin}x{l}/k{k}/t{t}"), |bch| {
            bch.iter(|| {
                pool::with_threads(t, || black_box(x.conv1d(&w, &bias, 1).to_vec()[0]))
            })
        });
    }
    group.finish();
}

fn bench_attention(c: &mut Criterion) {
    let mut rng = seeded(13);
    let mut group = c.benchmark_group("attention");
    group.sample_size(20);
    let (batch, seq, d_model, heads) = (4usize, 64usize, 64usize, 4usize);
    let attn = MultiHeadAttention::new(&mut rng, d_model, heads);
    let x = Tensor::from_vec(filled(batch * seq * d_model, &mut rng), &[batch, seq, d_model])
        .unwrap();
    // Dominant cost: QKV/out projections (4 * 2*B*S*D^2) plus the two
    // batched head matmuls (2 * 2*B*S^2*D).
    let flops = (8 * batch * seq * d_model * d_model + 4 * batch * seq * seq * d_model) as u64;
    group.throughput(Throughput::Flops(flops));
    group.record_threads(1);
    // "fwd" rows measure the inference forward: tape-free, fused sdpa.
    group.bench_function(format!("fwd/{batch}x{seq}x{d_model}/h{heads}/t1"), |bch| {
        bch.iter(|| {
            pool::with_threads(1, || {
                imdiff_nn::forward_only(|| black_box(attn.forward(&x).to_vec()[0]))
            })
        })
    });
    for t in [2usize, 4, 8] {
        group.record_threads(t);
        group.bench_function(format!("fwd/{batch}x{seq}x{d_model}/h{heads}/t{t}"), |bch| {
            bch.iter(|| {
                pool::with_threads(t, || {
                    imdiff_nn::forward_only(|| black_box(attn.forward(&x).to_vec()[0]))
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_conv, bench_attention);
criterion_main!(benches);
