//! Criterion micro-benches of the `imdiff-nn` substrate: the kernels the
//! diffusion model's cost is built from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imdiff_nn::layers::{LayerNorm, MultiHeadAttention};
use imdiff_nn::rng::seeded;
use imdiff_nn::{backward, no_grad, Tensor};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 64, 128] {
        let a = Tensor::randn(&mut seeded(1), &[n, n]);
        let b = Tensor::randn(&mut seeded(2), &[n, n]);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| no_grad(|| a.matmul(&b)));
        });
    }
    group.finish();
}

fn bench_attention(c: &mut Criterion) {
    let mut group = c.benchmark_group("attention_forward");
    for &(l, d) in &[(48usize, 16usize), (100, 32)] {
        let mha = MultiHeadAttention::new(&mut seeded(3), d, 2);
        let x = Tensor::randn(&mut seeded(4), &[4, l, d]);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("L{l}xD{d}")),
            &x,
            |bench, x| {
                bench.iter(|| no_grad(|| mha.forward(x)));
            },
        );
    }
    group.finish();
}

fn bench_layer_norm(c: &mut Criterion) {
    let ln = LayerNorm::new(64);
    let x = Tensor::randn(&mut seeded(5), &[64, 100, 64]);
    c.bench_function("layer_norm_64x100x64", |b| {
        b.iter(|| no_grad(|| ln.forward(&x)));
    });
}

fn bench_backward(c: &mut Criterion) {
    // Cost of reverse-mode autodiff through a small MLP-like graph.
    let w1 = Tensor::randn(&mut seeded(6), &[64, 64]).into_param();
    let w2 = Tensor::randn(&mut seeded(7), &[64, 64]).into_param();
    let x = Tensor::randn(&mut seeded(8), &[32, 64]);
    c.bench_function("mlp_forward_backward", |b| {
        b.iter(|| {
            let y = x.matmul(&w1).gelu().matmul(&w2).square().mean_all();
            backward(&y);
            w1.zero_grad();
            w2.zero_grad();
            y.item()
        });
    });
}

criterion_group!(benches, bench_matmul, bench_attention, bench_layer_norm, bench_backward);
criterion_main!(benches);
