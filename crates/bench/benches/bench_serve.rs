//! Criterion bench for the serving layer: p50/p99 request latency as a
//! function of the pipelined batch size. Each iteration sends B score
//! requests back-to-back on one connection and waits for all B replies,
//! so with `max_batch = B` the shard coalesces them into one ensemble
//! call — `elements_per_sec` (requests/s) rising with B is micro-batching
//! paying for itself versus the batch=1 baseline.
//!
//! ```sh
//! cargo bench -p imdiff-bench --bench bench_serve -- --save-json BENCH_serve.json
//! ```

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use imdiff_data::synthetic::{generate, Benchmark, SizeProfile};
use imdiff_data::Detector;
use imdiff_serve::wire::Request;
use imdiff_serve::{ServeClient, ServeConfig, Server, TenantSpec};
use imdiffusion::{ImDiffusionConfig, ImDiffusionDetector};

fn bench_cfg() -> ImDiffusionConfig {
    ImDiffusionConfig {
        window: 16,
        train_stride: 8,
        hidden: 8,
        heads: 2,
        residual_blocks: 1,
        diffusion_steps: 5,
        train_steps: 10,
        batch_size: 2,
        vote_span: 5,
        vote_every: 2,
        ..ImDiffusionConfig::quick()
    }
}

const HOP: usize = 4;

fn bench_request_latency(c: &mut Criterion) {
    let profile = SizeProfile {
        train_len: 80,
        test_len: 64,
    };
    let ds = generate(Benchmark::Gcp, &profile, 4);
    let mut det = ImDiffusionDetector::new(bench_cfg(), 4);
    det.fit(&ds.train).expect("fit");
    let dir = std::env::temp_dir().join(format!("imdiff-bench-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench dir");
    let checkpoint = dir.join("tenant.imdf");
    det.save(&checkpoint).expect("save");

    let mut group = c.benchmark_group("serve_score");
    group.sample_size(20);
    for batch in [1usize, 2, 4, 8] {
        let server = Server::start(
            ServeConfig {
                shards: 1,
                max_batch: batch,
                // Flush on count, not deadline: each iteration pipelines
                // exactly `batch` requests, so the coalesced size is B.
                max_wait: Duration::from_millis(50),
                max_queue: 256,
                shed_after: Duration::from_secs(3600),
                deadline: Duration::from_secs(3600),
                reload_poll: None,
                ..ServeConfig::default()
            },
            vec![TenantSpec {
                id: "bench".into(),
                checkpoint: checkpoint.clone(),
                cfg: bench_cfg(),
                seed: 4,
                channels: ds.train.dim(),
                hop: HOP,
                holdout: None,
                drift_policy: None,
            }],
        )
        .expect("server start");
        let mut client = ServeClient::connect(server.addr()).expect("connect");
        client.set_timeout(Some(Duration::from_secs(60))).unwrap();
        let mut cursor = 0usize;
        let next_rows = |cursor: &mut usize| -> Vec<Vec<f32>> {
            (0..HOP)
                .map(|_| {
                    let row = ds.test.row(*cursor % ds.test.len()).to_vec();
                    *cursor += 1;
                    row
                })
                .collect()
        };
        // Fill the monitor's window buffer so every timed request costs
        // one steady-state ensemble evaluation.
        for _ in 0..8 {
            client
                .score("bench", 0, next_rows(&mut cursor))
                .expect("warmup");
        }
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("batch{batch}")),
            &batch,
            |b, &batch| {
                b.iter(|| {
                    for _ in 0..batch {
                        client
                            .send_score("bench", 0, next_rows(&mut cursor))
                            .expect("send");
                    }
                    for _ in 0..batch {
                        client.recv_scored().expect("scored");
                    }
                });
            },
        );
        drop(client);
        server.drain();
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_wire_codec(c: &mut Criterion) {
    let rows: Vec<Vec<f32>> = (0..4).map(|r| vec![r as f32; 8]).collect();
    let req = Request::Score {
        tenant: "bench".into(),
        seq: 1,
        start_row: 0,
        gap_before: 0,
        rows,
    };
    let frame = req.to_bytes();
    let mut group = c.benchmark_group("serve_wire");
    group.sample_size(1000);
    group.throughput(Throughput::Bytes(frame.len() as u64));
    group.bench_function("encode_decode_4x8", |b| {
        b.iter(|| {
            let bytes = req.to_bytes();
            Request::from_bytes(&bytes).expect("decode")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_request_latency, bench_wire_codec);
criterion_main!(benches);
