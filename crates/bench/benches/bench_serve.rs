//! Criterion bench for the serving layer: p50/p99 request latency as a
//! function of the pipelined batch size. Each iteration sends B score
//! requests back-to-back on one connection and waits for all B replies,
//! so with `max_batch = B` the shard coalesces them into one ensemble
//! call — `elements_per_sec` (requests/s) rising with B is micro-batching
//! paying for itself versus the batch=1 baseline.
//!
//! ```sh
//! cargo bench -p imdiff-bench --bench bench_serve -- --save-json BENCH_serve.json
//! ```

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use imdiff_data::synthetic::{generate, Benchmark, SizeProfile};
use imdiff_data::Detector;
use imdiff_serve::wire::Request;
use imdiff_serve::{ClientError, ErrorCode, ServeClient, ServeConfig, Server, TenantSpec};
use imdiffusion::{ImDiffusionConfig, ImDiffusionDetector};

fn bench_cfg() -> ImDiffusionConfig {
    ImDiffusionConfig {
        window: 16,
        train_stride: 8,
        hidden: 8,
        heads: 2,
        residual_blocks: 1,
        diffusion_steps: 5,
        train_steps: 10,
        batch_size: 2,
        vote_span: 5,
        vote_every: 2,
        ..ImDiffusionConfig::quick()
    }
}

const HOP: usize = 4;

fn bench_request_latency(c: &mut Criterion) {
    let profile = SizeProfile {
        train_len: 80,
        test_len: 64,
    };
    let ds = generate(Benchmark::Gcp, &profile, 4);
    let mut det = ImDiffusionDetector::new(bench_cfg(), 4);
    det.fit(&ds.train).expect("fit");
    let dir = std::env::temp_dir().join(format!("imdiff-bench-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench dir");
    let checkpoint = dir.join("tenant.imdf");
    det.save(&checkpoint).expect("save");

    let mut group = c.benchmark_group("serve_score");
    // Enough samples to smooth single-core scheduling noise — at these
    // per-iteration times the curve across batch sizes is otherwise
    // dominated by run-to-run variance, not by micro-batching.
    group.sample_size(150);
    for batch in [1usize, 2, 4, 8] {
        let server = Server::start(
            ServeConfig {
                shards: 1,
                max_batch: batch,
                // Flush on count, not deadline: each iteration pipelines
                // exactly `batch` requests, so the coalesced size is B.
                max_wait: Duration::from_millis(50),
                max_queue: 256,
                shed_after: Duration::from_secs(3600),
                deadline: Duration::from_secs(3600),
                reload_poll: None,
                ..ServeConfig::default()
            },
            vec![TenantSpec {
                id: "bench".into(),
                checkpoint: checkpoint.clone(),
                cfg: bench_cfg(),
                seed: 4,
                channels: ds.train.dim(),
                hop: HOP,
                holdout: None,
                drift_policy: None,
                family: imdiff_registry::DetectorKind::ImDiffusion,
                escalation: None,
            }],
        )
        .expect("server start");
        let mut client = ServeClient::connect(server.addr()).expect("connect");
        client.set_timeout(Some(Duration::from_secs(60))).unwrap();
        let mut cursor = 0usize;
        let next_rows = |cursor: &mut usize| -> Vec<Vec<f32>> {
            (0..HOP)
                .map(|_| {
                    let row = ds.test.row(*cursor % ds.test.len()).to_vec();
                    *cursor += 1;
                    row
                })
                .collect()
        };
        // Fill the monitor's window buffer so every timed request costs
        // one steady-state ensemble evaluation.
        for _ in 0..8 {
            client
                .score("bench", 0, next_rows(&mut cursor))
                .expect("warmup");
        }
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("batch{batch}")),
            &batch,
            |b, &batch| {
                b.iter(|| {
                    for _ in 0..batch {
                        client
                            .send_score("bench", 0, next_rows(&mut cursor))
                            .expect("send");
                    }
                    for _ in 0..batch {
                        client.recv_scored().expect("scored");
                    }
                });
            },
        );
        drop(client);
        server.drain();
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_wire_codec(c: &mut Criterion) {
    let rows: Vec<Vec<f32>> = (0..4).map(|r| vec![r as f32; 8]).collect();
    let req = Request::Score {
        tenant: "bench".into(),
        seq: 1,
        start_row: 0,
        gap_before: 0,
        rows,
    };
    let frame = req.to_bytes();
    let mut group = c.benchmark_group("serve_wire");
    group.sample_size(1000);
    group.throughput(Throughput::Bytes(frame.len() as u64));
    group.bench_function("encode_decode_4x8", |b| {
        b.iter(|| {
            let bytes = req.to_bytes();
            Request::from_bytes(&bytes).expect("decode")
        });
    });
    group.finish();
}

/// Multi-tenant soak: 256 concurrent closed-loop connections against a
/// single event-loop data plane, split across two tenants. Every thread
/// times its own requests, so the record carries the client-observed
/// per-request p50/p99 under contention plus the shed rate (`max_queue`
/// is set below the connection count, so the opening burst overflows the
/// queue and exercises the `Overloaded` path; clients back off briefly
/// and continue, like [`imdiff_serve::ResilientClient`] would).
fn bench_soak(_c: &mut Criterion) {
    const CONNS: usize = 256;
    const ROUNDS: usize = 4;
    let id = format!("serve_soak/conns{CONNS}");
    if !criterion::filter_matches(&id) {
        return;
    }
    let profile = SizeProfile {
        train_len: 80,
        test_len: 64,
    };
    let ds = generate(Benchmark::Gcp, &profile, 4);
    let mut det = ImDiffusionDetector::new(bench_cfg(), 4);
    det.fit(&ds.train).expect("fit");
    let dir = std::env::temp_dir().join(format!("imdiff-bench-soak-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench dir");
    let checkpoint = dir.join("tenant.imdf");
    det.save(&checkpoint).expect("save");

    let tenants = ["soak-a", "soak-b"];
    let server = Server::start(
        ServeConfig {
            shards: 1,
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            // Below the connection count on purpose: the opening burst
            // of 256 simultaneous requests must overflow the queue so
            // the soak exercises (and reports) the shed path.
            max_queue: 192,
            shed_after: Duration::from_secs(3600),
            deadline: Duration::from_secs(3600),
            reload_poll: None,
            ..ServeConfig::default()
        },
        tenants
            .iter()
            .map(|t| TenantSpec {
                id: (*t).into(),
                checkpoint: checkpoint.clone(),
                cfg: bench_cfg(),
                seed: 4,
                channels: ds.train.dim(),
                hop: HOP,
                holdout: None,
                drift_policy: None,
                family: imdiff_registry::DetectorKind::ImDiffusion,
                escalation: None,
            })
            .collect(),
    )
    .expect("server start");

    // Fill each tenant's window buffer so soak requests all cost one
    // steady-state ensemble evaluation.
    {
        let mut warm = ServeClient::connect(server.addr()).expect("connect");
        warm.set_timeout(Some(Duration::from_secs(60))).unwrap();
        let mut cursor = 0usize;
        for tenant in &tenants {
            for _ in 0..8 {
                let rows: Vec<Vec<f32>> = (0..HOP)
                    .map(|_| {
                        let row = ds.test.row(cursor % ds.test.len()).to_vec();
                        cursor += 1;
                        row
                    })
                    .collect();
                warm.score(tenant, 0, rows).expect("warmup");
            }
        }
    }

    let addr = server.addr();
    let barrier = Arc::new(Barrier::new(CONNS + 1));
    let rows_by_conn: Vec<Vec<Vec<Vec<f32>>>> = (0..CONNS)
        .map(|conn| {
            (0..ROUNDS)
                .map(|round| {
                    (0..HOP)
                        .map(|i| ds.test.row((conn * ROUNDS * HOP + round * HOP + i) % ds.test.len()).to_vec())
                        .collect()
                })
                .collect()
        })
        .collect();
    let workers: Vec<_> = rows_by_conn
        .into_iter()
        .enumerate()
        .map(|(conn, rounds)| {
            let tenant = tenants[conn % tenants.len()];
            let barrier = Arc::clone(&barrier);
            std::thread::Builder::new()
                .name(format!("soak-{conn}"))
                .stack_size(256 * 1024)
                .spawn(move || {
                    let mut client = ServeClient::connect(addr).expect("connect");
                    client.set_timeout(Some(Duration::from_secs(60))).unwrap();
                    barrier.wait();
                    let mut lat_ns: Vec<u64> = Vec::with_capacity(ROUNDS);
                    let mut shed = 0u64;
                    for rows in rounds {
                        let t0 = Instant::now();
                        match client.score(tenant, 0, rows) {
                            Ok(_) => lat_ns.push(t0.elapsed().as_nanos() as u64),
                            Err(ClientError::Server {
                                code: ErrorCode::Overloaded,
                                ..
                            }) => {
                                shed += 1;
                                std::thread::sleep(Duration::from_millis(25));
                            }
                            Err(e) => panic!("soak request failed: {e}"),
                        }
                    }
                    (lat_ns, shed)
                })
                .expect("spawn soak worker")
        })
        .collect();

    let t0 = Instant::now();
    barrier.wait();
    let mut lat_ns: Vec<u64> = Vec::with_capacity(CONNS * ROUNDS);
    let mut shed = 0u64;
    for w in workers {
        let (lats, s) = w.join().expect("soak worker");
        lat_ns.extend(lats);
        shed += s;
    }
    let wall = t0.elapsed();
    server.drain();
    let _ = std::fs::remove_dir_all(&dir);

    let attempts = (CONNS * ROUNDS) as u64;
    let ok = lat_ns.len() as u64;
    assert!(ok > 0, "soak produced no successful requests");
    lat_ns.sort_unstable();
    let quantile = |q: f64| -> f64 {
        lat_ns[(q * (lat_ns.len() - 1) as f64).round() as usize] as f64
    };
    criterion::record_measurement(
        &id,
        wall.as_nanos() as f64 / ok as f64,
        ok,
        None,
        Some(Throughput::Elements(1)),
        Some(quantile(0.50)),
        Some(quantile(0.99)),
        &[
            ("connections", CONNS as f64),
            ("requests", attempts as f64),
            ("shed", shed as f64),
            ("shed_rate", shed as f64 / attempts as f64),
        ],
    );
}

criterion_group!(benches, bench_request_latency, bench_wire_codec, bench_soak);
criterion_main!(benches);
