//! Criterion benches of the evaluation metrics and masking — these run on
//! every harness cell, so their cost matters for the full suite.

use criterion::{criterion_group, criterion_main, Criterion};
use imdiff_data::mask::MaskStrategy;
use imdiff_diffusion::{BetaSchedule, NoiseSchedule};
use imdiff_metrics::{average_detection_delay, best_f1_threshold, point, range_auc_pr};
use imdiff_nn::rng::{normal_vec, seeded};
use rand::Rng;

fn synthetic_case(n: usize) -> (Vec<f64>, Vec<bool>) {
    let mut rng = seeded(42);
    let mut truth = vec![false; n];
    let mut i = 50;
    while i + 30 < n {
        for t in truth.iter_mut().skip(i).take(20) {
            *t = true;
        }
        i += 200;
    }
    let scores: Vec<f64> = truth
        .iter()
        .map(|&l| if l { 2.0 + rng.gen::<f64>() } else { rng.gen::<f64>() })
        .collect();
    (scores, truth)
}

fn bench_metrics(c: &mut Criterion) {
    let (scores, truth) = synthetic_case(10_000);
    let pred: Vec<bool> = scores.iter().map(|&s| s > 1.5).collect();
    c.bench_function("pa_prf1_10k", |b| {
        b.iter(|| point::pa_prf1(&pred, &truth));
    });
    c.bench_function("best_f1_threshold_10k", |b| {
        b.iter(|| best_f1_threshold(&scores, &truth));
    });
    c.bench_function("range_auc_pr_10k", |b| {
        b.iter(|| range_auc_pr(&scores, &truth, None));
    });
    c.bench_function("add_10k", |b| {
        b.iter(|| average_detection_delay(&pred, &truth));
    });
}

fn bench_masking_and_noise(c: &mut Criterion) {
    c.bench_function("grating_masks_100x38", |b| {
        let mut rng = seeded(1);
        b.iter(|| MaskStrategy::default_grating().masks(&mut rng, 100, 38));
    });
    c.bench_function("random_masks_100x38", |b| {
        let mut rng = seeded(2);
        b.iter(|| (MaskStrategy::Random { p: 0.5 }).masks(&mut rng, 100, 38));
    });
    let ns = NoiseSchedule::new(BetaSchedule::default_for_imputation(), 50);
    let mut rng = seeded(3);
    let x0 = normal_vec(&mut rng, 100 * 38);
    let eps = normal_vec(&mut rng, 100 * 38);
    let mut out = vec![0.0f32; 100 * 38];
    c.bench_function("q_sample_100x38", |b| {
        b.iter(|| ns.q_sample_into(&x0, &eps, 25, &mut out));
    });
}

criterion_group!(benches, bench_metrics, bench_masking_and_noise);
criterion_main!(benches);
