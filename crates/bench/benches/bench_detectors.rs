//! Per-family serving-cost registry: µs/row for every detector family,
//! measured through the same read-only [`AnyDetector::score_series`]
//! path the escalation evaluator replays labeled holdouts through. One
//! *fixed* serving window for every family — `cfg.window` is set to the
//! largest [`DetectorKind::min_serving_window`] in the registry so no
//! family gets clamped to a different geometry — which makes the rows
//! directly comparable: this is the cost axis the cost-aware router
//! trades against point-F1 when it pins a ladder rung.
//!
//! ```sh
//! cargo bench -p imdiff-bench --bench bench_detectors -- --save-json BENCH_detectors.json
//! ```

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use imdiff_data::synthetic::{generate, Benchmark, SizeProfile};
use imdiff_data::Detector;
use imdiff_registry::{AnyDetector, DetectorKind};
use imdiffusion::{ImDiffusionConfig, WindowScorer};

/// The shared serving window: the registry-wide maximum of the family
/// minimums, so every row below measures the *same* window geometry.
fn fixed_window() -> usize {
    DetectorKind::ALL
        .iter()
        .map(|k| k.min_serving_window())
        .max()
        .expect("registry is not empty")
}

fn bench_cfg(window: usize) -> ImDiffusionConfig {
    ImDiffusionConfig {
        window,
        train_stride: 8,
        hidden: 8,
        heads: 2,
        residual_blocks: 1,
        diffusion_steps: 5,
        train_steps: 10,
        batch_size: 2,
        vote_span: 5,
        vote_every: 2,
        ..ImDiffusionConfig::quick()
    }
}

fn bench_detector_cost(_c: &mut Criterion) {
    const REPS: usize = 5;
    let window = fixed_window();
    let ds = generate(
        Benchmark::Gcp,
        &SizeProfile {
            train_len: 150,
            test_len: 128,
        },
        4,
    );
    let rows = ds.test.len() as u64;

    for kind in DetectorKind::ALL {
        let id = format!("detector_cost/{}", kind.name());
        if !criterion::filter_matches(&id) {
            continue;
        }
        let t0 = Instant::now();
        let mut det = AnyDetector::new(kind, bench_cfg(window), 4);
        det.fit(&ds.train).expect("fit");
        let fit_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(det.window(), window, "{kind}: clamped away from the fixed window");

        // One warmup pass (page in lazily allocated buffers), then REPS
        // timed passes over the full test series.
        det.score_series(&ds.test, None).expect("warmup score");
        let mut per_row_ns: Vec<f64> = (0..REPS)
            .map(|_| {
                let t0 = Instant::now();
                det.score_series(&ds.test, None).expect("score");
                t0.elapsed().as_nanos() as f64 / rows as f64
            })
            .collect();
        per_row_ns.sort_by(|a, b| a.total_cmp(b));
        let mean = per_row_ns.iter().sum::<f64>() / REPS as f64;
        criterion::record_measurement(
            &id,
            mean,
            rows * REPS as u64,
            None,
            Some(Throughput::Elements(1)),
            Some(per_row_ns[REPS / 2]),
            Some(per_row_ns[REPS - 1]),
            &[
                ("us_per_row", mean / 1e3),
                ("window", window as f64),
                ("rows", rows as f64),
                ("fit_ms", fit_ms),
            ],
        );
    }
}

criterion_group!(benches, bench_detector_cost);
criterion_main!(benches);
