//! Criterion bench: ImDiffusion ensemble-inference throughput in
//! points/second — the "Inference efficiency" column of Table 7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use imdiff_data::synthetic::{generate, Benchmark, SizeProfile};
use imdiff_data::Detector;
use imdiffusion::{ImDiffusionConfig, ImDiffusionDetector};

fn bench_inference(c: &mut Criterion) {
    let size = SizeProfile {
        train_len: 300,
        test_len: 96,
    };
    let mut group = c.benchmark_group("ensemble_inference");
    group.sample_size(10);
    for benchmark in [Benchmark::Gcp, Benchmark::Smd] {
        for (variant, ddim) in [("ddpm", None), ("ddim4", Some(4))] {
            let ds = generate(benchmark, &size, 1);
            let cfg = ImDiffusionConfig {
                train_steps: 20, // the bench measures inference, not training
                ddim_steps: ddim,
                ..ImDiffusionConfig::quick()
            };
            let mut det = ImDiffusionDetector::new(cfg, 1);
            det.fit(&ds.train).expect("fit");
            group.throughput(Throughput::Elements(ds.test.len() as u64));
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{}_{variant}", ds.name)),
                &ds,
                |b, ds| {
                    b.iter(|| det.detect(&ds.test).expect("detect"));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
