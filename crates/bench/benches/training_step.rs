//! Criterion bench: cost of one ImDiffusion optimizer step (forward +
//! backward + Adam) at the quick-profile model size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imdiff_data::synthetic::{generate, Benchmark, SizeProfile};
use imdiff_diffusion::NoiseSchedule;
use imdiffusion::{train, ImDiffusionConfig, ImTransformer};

fn bench_training(c: &mut Criterion) {
    let size = SizeProfile {
        train_len: 200,
        test_len: 50,
    };
    let mut group = c.benchmark_group("train_step");
    group.sample_size(10);
    for (label, k_bench) in [("K=19", Benchmark::Gcp), ("K=38", Benchmark::Smd)] {
        let ds = generate(k_bench, &size, 1);
        let cfg = ImDiffusionConfig {
            train_steps: 1, // one optimizer step per iteration
            ..ImDiffusionConfig::quick()
        };
        let schedule = NoiseSchedule::new(cfg.schedule, cfg.diffusion_steps);
        let model = ImTransformer::new(&cfg, ds.train.dim(), 1);
        group.bench_with_input(BenchmarkId::from_parameter(label), &ds, |b, ds| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                train(&model, &cfg, &schedule, &ds.train, seed).expect("train step")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
