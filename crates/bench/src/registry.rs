//! Detector construction by table name.

use imdiff_baselines as bl;
use imdiff_data::Detector;

/// The eleven detectors of Table 2, in the paper's row order.
pub const TABLE2_DETECTORS: [&str; 11] = [
    "IForest",
    "BeatGAN",
    "LSTM-AD",
    "InterFusion",
    "OmniAnomaly",
    "GDN",
    "MAD-GAN",
    "MTAD-GAT",
    "MSCRED",
    "TranAD",
    "ImDiffusion",
];

/// Builds a *baseline* detector by its table name. `ImDiffusion` is not
/// constructed here — the suite drives it through its concrete type to
/// reach the ensemble traces.
pub fn make_baseline(name: &str, seed: u64) -> Option<Box<dyn Detector>> {
    Some(match name {
        "IForest" => Box::new(bl::IsolationForest::new(seed)),
        "BeatGAN" => Box::new(bl::BeatGan::new(seed)),
        "LSTM-AD" => Box::new(bl::LstmAd::new(seed)),
        "InterFusion" => Box::new(bl::InterFusion::new(seed)),
        "OmniAnomaly" => Box::new(bl::OmniAnomaly::new(seed)),
        "GDN" => Box::new(bl::Gdn::new(seed)),
        "MAD-GAN" => Box::new(bl::MadGan::new(seed)),
        "MTAD-GAT" => Box::new(bl::MtadGat::new(seed)),
        "MSCRED" => Box::new(bl::Mscred::new(seed)),
        "TranAD" => Box::new(bl::TranAd::new(seed)),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_baselines() {
        for name in TABLE2_DETECTORS.iter().filter(|&&n| n != "ImDiffusion") {
            let det = make_baseline(name, 1).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(det.name(), *name);
        }
        assert!(make_baseline("ImDiffusion", 1).is_none());
        assert!(make_baseline("nope", 1).is_none());
    }
}
