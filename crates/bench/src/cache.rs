//! CSV-backed cell cache so expensive (detector × dataset × run) cells are
//! computed once and reused by every table binary.

use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::path::Path;

/// Identifies one evaluation cell.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// Detector (or ablation-variant) name.
    pub detector: String,
    /// Dataset name.
    pub dataset: String,
    /// Run index (doubles as the seed).
    pub run: u64,
}

/// Metrics of one evaluation cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellMetrics {
    /// Point-adjusted precision.
    pub precision: f64,
    /// Point-adjusted recall.
    pub recall: f64,
    /// Point-adjusted F1.
    pub f1: f64,
    /// Range-aware AUC-PR.
    pub r_auc_pr: f64,
    /// Average detection delay (steps).
    pub add: f64,
    /// Mean imputation/prediction error on normal points (figure 7/9 data;
    /// 0 for detectors where it is not meaningful).
    pub normal_err: f64,
    /// Mean error on anomalous points.
    pub abnormal_err: f64,
}

const HEADER: &str = "detector,dataset,run,precision,recall,f1,r_auc_pr,add,normal_err,abnormal_err";

/// Loads a cache CSV, returning an empty map when absent.
pub fn load(path: &Path) -> HashMap<CellKey, CellMetrics> {
    let mut out = HashMap::new();
    let Ok(text) = fs::read_to_string(path) else {
        return out;
    };
    for line in text.lines().skip(1) {
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 10 {
            continue; // tolerate partial writes
        }
        let parse = |i: usize| fields[i].parse::<f64>().ok();
        let (Some(p), Some(r), Some(f1), Some(auc), Some(add), Some(ne), Some(ae)) = (
            parse(3),
            parse(4),
            parse(5),
            parse(6),
            parse(7),
            parse(8),
            parse(9),
        ) else {
            continue;
        };
        let Ok(run) = fields[2].parse() else { continue };
        out.insert(
            CellKey {
                detector: fields[0].to_string(),
                dataset: fields[1].to_string(),
                run,
            },
            CellMetrics {
                precision: p,
                recall: r,
                f1,
                r_auc_pr: auc,
                add,
                normal_err: ne,
                abnormal_err: ae,
            },
        );
    }
    out
}

/// Appends one cell to the cache CSV (creating it with a header).
pub fn append(path: &Path, key: &CellKey, m: &CellMetrics) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let new = !path.exists();
    let mut f = fs::OpenOptions::new().create(true).append(true).open(path)?;
    if new {
        writeln!(f, "{HEADER}")?;
    }
    writeln!(
        f,
        "{},{},{},{:.6},{:.6},{:.6},{:.6},{:.4},{:.8},{:.8}",
        key.detector,
        key.dataset,
        key.run,
        m.precision,
        m.recall,
        m.f1,
        m.r_auc_pr,
        m.add,
        m.normal_err,
        m.abnormal_err
    )
}

/// The repository-level results directory.
pub fn results_dir() -> std::path::PathBuf {
    std::env::var("IMDIFF_RESULTS")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::path::PathBuf::from("results"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let dir = std::env::temp_dir().join(format!("imdiff-cache-{}", std::process::id()));
        let path = dir.join("cells.csv");
        let key = CellKey {
            detector: "X".into(),
            dataset: "SMD".into(),
            run: 3,
        };
        let m = CellMetrics {
            precision: 0.9,
            recall: 0.8,
            f1: 0.85,
            r_auc_pr: 0.3,
            add: 12.5,
            normal_err: 0.01,
            abnormal_err: 0.5,
        };
        append(&path, &key, &m).unwrap();
        let loaded = load(&path);
        assert_eq!(loaded.len(), 1);
        let got = loaded.get(&key).unwrap();
        assert!((got.f1 - 0.85).abs() < 1e-9);
        assert!((got.add - 12.5).abs() < 1e-9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_empty() {
        assert!(load(Path::new("/nonexistent/x.csv")).is_empty());
    }
}
