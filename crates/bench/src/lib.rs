//! `imdiff-bench` — the evaluation harness reproducing every table and
//! figure of the paper.
//!
//! Binaries (one per paper artifact) live in `src/bin/`:
//!
//! | binary | artifact |
//! |---|---|
//! | `table2` | Table 2 — P/R/F1/F1-std/R-AUC-PR, 11 detectors × 6 datasets |
//! | `table3` | Table 3 — the same metrics averaged over datasets |
//! | `table4` | Table 4 — ADD (mean±std) per detector × dataset |
//! | `table5` | Table 5 — ablations × 6 datasets |
//! | `table6` | Table 6 — ablation averages |
//! | `table7` | Table 7 — production-stream improvement + throughput |
//! | `fig1` | Fig. 1 — task-mode error example |
//! | `fig2` | Fig. 2 — conditional vs unconditional error example |
//! | `fig7` | Fig. 7 — predicted error of the three task modes per dataset |
//! | `fig8` | Fig. 8 — step-wise ensemble example |
//! | `fig9` | Fig. 9 — normal/abnormal error gap, conditional vs unconditional |
//!
//! Expensive cells are cached in `results/*.csv`; delete the file to force
//! recomputation. `IMDIFF_PROFILE=paper` switches to the larger profile,
//! `IMDIFF_RUNS=n` overrides the number of independent runs per cell.

pub mod cache;
pub mod eval;
pub mod registry;
pub mod suite;
pub mod table;

/// Harness-wide run configuration derived from environment variables.
#[derive(Debug, Clone)]
pub struct HarnessProfile {
    /// Dataset size profile.
    pub size: imdiff_data::synthetic::SizeProfile,
    /// Independent runs per (detector, dataset) cell (paper: 6).
    pub runs: u64,
    /// True when running the reduced `quick` profile.
    pub quick: bool,
}

impl HarnessProfile {
    /// Reads `IMDIFF_PROFILE` / `IMDIFF_RUNS`.
    pub fn from_env() -> Self {
        let quick = !matches!(std::env::var("IMDIFF_PROFILE").as_deref(), Ok("paper"));
        let runs = std::env::var("IMDIFF_RUNS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(if quick { 2 } else { 6 });
        HarnessProfile {
            size: imdiff_data::synthetic::SizeProfile::from_env(),
            runs,
            quick,
        }
    }

    /// The ImDiffusion configuration matching this profile.
    pub fn imdiffusion_config(&self) -> imdiffusion::ImDiffusionConfig {
        if self.quick {
            imdiffusion::ImDiffusionConfig::quick()
        } else {
            imdiffusion::ImDiffusionConfig::paper()
        }
    }
}
