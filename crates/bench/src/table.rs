//! Plain-text table rendering and CSV export for the table binaries.

use std::fmt::Write as _;
use std::path::Path;

/// Renders a fixed-width table: a header row plus data rows.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: Vec<&str>| {
        for (i, (c, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{c:<w$}", w = *w);
        }
        out.push('\n');
    };
    line(&mut out, headers.to_vec());
    let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
    line(&mut out, sep.iter().map(String::as_str).collect());
    for row in rows {
        line(&mut out, row.iter().map(String::as_str).collect());
    }
    out
}

/// Writes a CSV artifact next to the printed table.
pub fn write_csv(path: &Path, headers: &[&str], rows: &[Vec<String>]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut text = headers.join(",");
    text.push('\n');
    for row in rows {
        text.push_str(&row.join(","));
        text.push('\n');
    }
    std::fs::write(path, text)
}

/// Formats a float with 4 decimals.
pub fn f4(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats `mean±std` with whole-number rounding (Table 4 style).
pub fn pm(mean: f64, std: f64) -> String {
    format!("{:.0}±{:.0}", mean, std)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let s = render(
            &["name", "v"],
            &[
                vec!["a".into(), "1.0".into()],
                vec!["longer".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a     "));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn render_checks_widths() {
        render(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f4(0.5), "0.5000");
        assert!(f4(0.12345).starts_with("0.123"));
        assert_eq!(pm(103.6, 13.7), "104±14");
    }
}
