//! Reproduces **Table 4**: ADD (mean±std, in steps) for every detector on
//! every dataset plus the cross-dataset average. Reuses the Table 2 cell
//! cache. Artifact: `results/table4.csv`.

use imdiff_bench::registry::TABLE2_DETECTORS;
use imdiff_bench::suite::{aggregate, run_offline_suite};
use imdiff_bench::table::{pm, render, write_csv};
use imdiff_bench::{cache, HarnessProfile};
use imdiff_data::synthetic::Benchmark;

fn main() {
    let profile = HarnessProfile::from_env();
    let cells = run_offline_suite(&profile);
    let agg = aggregate(&cells);

    let mut headers: Vec<&str> = vec!["Method"];
    let names: Vec<&str> = Benchmark::all().iter().map(|b| b.name()).collect();
    headers.extend(&names);
    headers.push("Average");

    let mut rows = Vec::new();
    for det in TABLE2_DETECTORS {
        let mut row = vec![det.to_string()];
        let (mut sum, mut n) = (0.0f64, 0.0f64);
        for benchmark in Benchmark::all() {
            match agg.get(&(det.to_string(), benchmark.name().to_string())) {
                Some(a) => {
                    let (m, s) = a.add_mean_std();
                    row.push(pm(m, s));
                    sum += m;
                    n += 1.0;
                }
                None => row.push("-".into()),
            }
        }
        row.push(if n > 0.0 {
            format!("{:.0}", sum / n)
        } else {
            "-".into()
        });
        rows.push(row);
    }
    println!("{}", render(&headers, &rows));
    let csv = cache::results_dir().join("table4.csv");
    write_csv(&csv, &headers, &rows).expect("write table4.csv");
    eprintln!("wrote {}", csv.display());
}
