//! Reproduces **Figure 7**: mean predicted (self-supervised) error of the
//! imputation, forecasting and reconstruction approaches on every dataset,
//! plus the cross-dataset average. Lower error = better series modelling.
//! Reuses the ablation cell cache. Artifact: `results/fig7.csv`.

use imdiff_bench::suite::run_ablation_suite;
use imdiff_bench::table::{render, write_csv};
use imdiff_bench::{cache, HarnessProfile};
use imdiff_data::synthetic::Benchmark;
use imdiffusion::AblationVariant;

fn main() {
    let profile = HarnessProfile::from_env();
    let cells = run_ablation_suite(&profile);

    let modes = [
        ("Imputation", AblationVariant::Full),
        ("Forecasting", AblationVariant::Forecasting),
        ("Reconstruction", AblationVariant::Reconstruction),
    ];
    let mut headers: Vec<&str> = vec!["Approach"];
    let names: Vec<&str> = Benchmark::all().iter().map(|b| b.name()).collect();
    headers.extend(&names);
    headers.push("Average");

    let mut rows = Vec::new();
    for (label, variant) in modes {
        let mut row = vec![label.to_string()];
        let (mut sum, mut n) = (0.0, 0.0);
        for benchmark in Benchmark::all() {
            // Overall predicted error = normal/abnormal means weighted by
            // the dataset's anomaly rate.
            let vals: Vec<f64> = cells
                .iter()
                .filter(|(k, _)| {
                    k.detector == variant.name() && k.dataset == benchmark.name()
                })
                .map(|(_, m)| {
                    let rate = benchmark.anomaly_rate();
                    m.normal_err * (1.0 - rate) + m.abnormal_err * rate
                })
                .collect();
            if vals.is_empty() {
                row.push("-".into());
            } else {
                let v = vals.iter().sum::<f64>() / vals.len() as f64;
                row.push(format!("{v:.4}"));
                sum += v;
                n += 1.0;
            }
        }
        row.push(if n > 0.0 {
            format!("{:.4}", sum / n)
        } else {
            "-".into()
        });
        rows.push(row);
    }
    println!("{}", render(&headers, &rows));
    let csv = cache::results_dir().join("fig7.csv");
    write_csv(&csv, &headers, &rows).expect("write fig7.csv");
    eprintln!("wrote {}", csv.display());
}
