//! Reproduces **Table 5**: the ablation analysis (P/R/F1/R-AUC-PR/ADD of
//! every design variant) per benchmark dataset. Cells are cached in
//! `results/ablation_cells.csv`. Artifact: `results/table5.csv`.

use imdiff_bench::suite::{aggregate, run_ablation_suite};
use imdiff_bench::table::{f4, render, write_csv};
use imdiff_bench::{cache, HarnessProfile};
use imdiff_data::synthetic::Benchmark;
use imdiffusion::AblationVariant;

fn main() {
    let profile = HarnessProfile::from_env();
    eprintln!("Table 5: ablations on train/test length {}/{}",
        profile.size.train_len, profile.size.test_len);
    let cells = run_ablation_suite(&profile);
    let agg = aggregate(&cells);

    let mut csv_rows = Vec::new();
    for benchmark in Benchmark::all() {
        let ds = benchmark.name();
        println!("\n=== {ds} ===");
        let mut rows = Vec::new();
        for variant in AblationVariant::all() {
            if let Some(a) = agg.get(&(variant.name().to_string(), ds.to_string())) {
                let (add, _) = a.add_mean_std();
                rows.push(vec![
                    variant.name().to_string(),
                    f4(a.precision()),
                    f4(a.recall()),
                    f4(a.f1()),
                    f4(a.r_auc_pr()),
                    format!("{add:.1}"),
                ]);
                csv_rows.push(vec![
                    ds.to_string(),
                    variant.name().to_string(),
                    f4(a.precision()),
                    f4(a.recall()),
                    f4(a.f1()),
                    f4(a.r_auc_pr()),
                    format!("{add:.1}"),
                ]);
            }
        }
        println!(
            "{}",
            render(&["Method", "P", "R", "F1", "R-AUC-PR", "ADD"], &rows)
        );
    }
    let csv = cache::results_dir().join("table5.csv");
    write_csv(
        &csv,
        &["dataset", "method", "P", "R", "F1", "R-AUC-PR", "ADD"],
        &csv_rows,
    )
    .expect("write table5.csv");
    eprintln!("wrote {}", csv.display());
}
