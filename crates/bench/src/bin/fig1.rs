//! Reproduces **Figure 1**: example of reconstruction, forecasting and
//! imputation modelling of the same time series around an anomaly.
//!
//! Trains three ImDiffusion variants differing only in task mode on an
//! SMD-like dataset, then exports the per-timestamp prediction error of
//! each alongside the raw series and ground-truth labels.
//! Artifact: `results/fig1.csv` (columns: t, value, label, err_imputation,
//! err_forecasting, err_reconstruction).

use imdiff_bench::table::write_csv;
use imdiff_bench::{cache, HarnessProfile};
use imdiff_data::synthetic::{generate, Benchmark};
use imdiff_data::Detector;
use imdiffusion::{AblationVariant, ImDiffusionDetector};

fn main() {
    let profile = HarnessProfile::from_env();
    let ds = generate(Benchmark::Smd, &profile.size, 41);
    let mut errors = Vec::new();
    for variant in [
        AblationVariant::Full,
        AblationVariant::Forecasting,
        AblationVariant::Reconstruction,
    ] {
        let cfg = variant.apply(&profile.imdiffusion_config());
        let mut det = ImDiffusionDetector::new(cfg, 41);
        det.fit(&ds.train).expect("fit");
        let d = det.detect(&ds.test).expect("detect");
        let (mut nsum, mut nc, mut asum, mut ac) = (0.0, 0, 0.0, 0);
        for (&e, &l) in d.scores.iter().zip(&ds.labels) {
            if l {
                asum += e;
                ac += 1;
            } else {
                nsum += e;
                nc += 1;
            }
        }
        eprintln!(
            "{}: normal err {:.4}, abnormal err {:.4}",
            variant.name(),
            nsum / nc.max(1) as f64,
            asum / ac.max(1) as f64
        );
        errors.push(d.scores);
    }

    let rows: Vec<Vec<String>> = (0..ds.test.len())
        .map(|t| {
            vec![
                t.to_string(),
                format!("{:.5}", ds.test.get(t, 0)),
                u8::from(ds.labels[t]).to_string(),
                format!("{:.6}", errors[0][t]),
                format!("{:.6}", errors[1][t]),
                format!("{:.6}", errors[2][t]),
            ]
        })
        .collect();
    let csv = cache::results_dir().join("fig1.csv");
    write_csv(
        &csv,
        &[
            "t",
            "value_ch0",
            "label",
            "err_imputation",
            "err_forecasting",
            "err_reconstruction",
        ],
        &rows,
    )
    .expect("write fig1.csv");
    println!("wrote {}", csv.display());
}
