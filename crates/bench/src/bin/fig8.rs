//! Reproduces **Figure 8**: one worked example of the ensemble inference —
//! for every vote step: the imputed series, per-timestamp error, the
//! Eq. (12) threshold and the step's anomaly votes; plus the aggregated
//! vote count and final labels.
//!
//! Artifacts: `results/fig8_steps.csv` (long format: step, t, imputed,
//! error, tau, vote) and `results/fig8_votes.csv` (t, votes, final label,
//! ground truth).

use imdiff_bench::table::write_csv;
use imdiff_bench::{cache, HarnessProfile};
use imdiff_data::synthetic::{generate, Benchmark};
use imdiff_data::Detector;
use imdiffusion::ImDiffusionDetector;

fn main() {
    let profile = HarnessProfile::from_env();
    let ds = generate(Benchmark::Smd, &profile.size, 8);
    let mut det = ImDiffusionDetector::new(profile.imdiffusion_config(), 8);
    det.fit(&ds.train).expect("fit");
    let _ = det.detect(&ds.test).expect("detect");
    let out = det.last_output().expect("ensemble output");

    let mut step_rows = Vec::new();
    for step in &out.steps {
        for t in 0..step.error.len() {
            step_rows.push(vec![
                step.t.to_string(),
                t.to_string(),
                format!("{:.5}", step.imputed.get(t, 0)),
                format!("{:.6}", step.error[t]),
                format!("{:.6}", step.tau),
                u8::from(step.labels[t]).to_string(),
            ]);
        }
    }
    let steps_csv = cache::results_dir().join("fig8_steps.csv");
    write_csv(
        &steps_csv,
        &["step_t", "t", "imputed_ch0", "error", "tau", "vote"],
        &step_rows,
    )
    .expect("write fig8_steps.csv");

    let vote_rows: Vec<Vec<String>> = (0..out.votes.len())
        .map(|t| {
            vec![
                t.to_string(),
                out.votes[t].to_string(),
                u8::from(out.labels[t]).to_string(),
                u8::from(ds.labels[t]).to_string(),
            ]
        })
        .collect();
    let votes_csv = cache::results_dir().join("fig8_votes.csv");
    write_csv(
        &votes_csv,
        &["t", "votes", "final_label", "truth"],
        &vote_rows,
    )
    .expect("write fig8_votes.csv");

    eprintln!(
        "vote steps: {:?}, ξ = {}",
        out.steps.iter().map(|s| s.t).collect::<Vec<_>>(),
        out.vote_threshold
    );
    println!("wrote {} and {}", steps_csv.display(), votes_csv.display());
}
