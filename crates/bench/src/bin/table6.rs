//! Reproduces **Table 6**: ablation metrics averaged over the six
//! datasets. Reuses the Table 5 cell cache. Artifact: `results/table6.csv`.

use imdiff_bench::suite::{aggregate, run_ablation_suite};
use imdiff_bench::table::{f4, render, write_csv};
use imdiff_bench::{cache, HarnessProfile};
use imdiff_data::synthetic::Benchmark;
use imdiffusion::AblationVariant;

fn main() {
    let profile = HarnessProfile::from_env();
    let cells = run_ablation_suite(&profile);
    let agg = aggregate(&cells);

    let mut rows = Vec::new();
    for variant in AblationVariant::all() {
        let (mut p, mut r, mut f1, mut auc, mut add) = (0.0, 0.0, 0.0, 0.0, 0.0);
        let mut n = 0.0;
        for benchmark in Benchmark::all() {
            if let Some(a) = agg.get(&(variant.name().to_string(), benchmark.name().to_string()))
            {
                p += a.precision();
                r += a.recall();
                f1 += a.f1();
                auc += a.r_auc_pr();
                add += a.add_mean_std().0;
                n += 1.0;
            }
        }
        if n > 0.0 {
            rows.push(vec![
                variant.name().to_string(),
                f4(p / n),
                f4(r / n),
                f4(f1 / n),
                f4(auc / n),
                format!("{:.0}", add / n),
            ]);
        }
    }
    println!(
        "{}",
        render(&["Method", "P", "R", "F1", "R-AUC-PR", "ADD"], &rows)
    );
    let csv = cache::results_dir().join("table6.csv");
    write_csv(&csv, &["method", "P", "R", "F1", "R-AUC-PR", "ADD"], &rows)
        .expect("write table6.csv");
    eprintln!("wrote {}", csv.display());
}
