//! Reproduces **Table 2**: precision, recall, F1, F1-std and R-AUC-PR of
//! all eleven detectors on the six benchmark datasets, averaged over
//! independent runs.
//!
//! Results are cached in `results/offline_cells.csv`; the first run
//! computes every cell (minutes on one core), subsequent runs print
//! instantly. Artifacts: `results/table2.csv`.

use imdiff_bench::registry::TABLE2_DETECTORS;
use imdiff_bench::suite::{aggregate, run_offline_suite};
use imdiff_bench::table::{f4, render, write_csv};
use imdiff_bench::{cache, HarnessProfile};
use imdiff_data::synthetic::Benchmark;

fn main() {
    let profile = HarnessProfile::from_env();
    eprintln!(
        "Table 2: {} runs per cell, train/test length {}/{}",
        profile.runs, profile.size.train_len, profile.size.test_len
    );
    let cells = run_offline_suite(&profile);
    let agg = aggregate(&cells);

    let mut csv_rows = Vec::new();
    for benchmark in Benchmark::all() {
        let ds = benchmark.name();
        println!("\n=== {ds} ===");
        let mut rows = Vec::new();
        for det in TABLE2_DETECTORS {
            if let Some(a) = agg.get(&(det.to_string(), ds.to_string())) {
                rows.push(vec![
                    det.to_string(),
                    f4(a.precision()),
                    f4(a.recall()),
                    f4(a.f1()),
                    f4(a.f1_std()),
                    f4(a.r_auc_pr()),
                ]);
                csv_rows.push(vec![
                    ds.to_string(),
                    det.to_string(),
                    f4(a.precision()),
                    f4(a.recall()),
                    f4(a.f1()),
                    f4(a.f1_std()),
                    f4(a.r_auc_pr()),
                ]);
            }
        }
        println!(
            "{}",
            render(&["Method", "P", "R", "F1", "F1-std", "R-AUC-PR"], &rows)
        );
    }
    let csv = cache::results_dir().join("table2.csv");
    write_csv(
        &csv,
        &["dataset", "method", "P", "R", "F1", "F1-std", "R-AUC-PR"],
        &csv_rows,
    )
    .expect("write table2.csv");
    eprintln!("wrote {}", csv.display());
}
