//! Reproduces **Figure 2**: example of conditional vs unconditional
//! imputed diffusion on a series containing an anomaly — the unconditional
//! design should show a larger imputed-error gap between normal and
//! abnormal points. Artifact: `results/fig2.csv`.

use imdiff_bench::table::write_csv;
use imdiff_bench::{cache, HarnessProfile};
use imdiff_data::synthetic::{generate, Benchmark};
use imdiff_data::Detector;
use imdiffusion::{AblationVariant, ImDiffusionDetector};

fn main() {
    let profile = HarnessProfile::from_env();
    let ds = generate(Benchmark::Psm, &profile.size, 42);
    let mut errors = Vec::new();
    for variant in [AblationVariant::Conditional, AblationVariant::Full] {
        let cfg = variant.apply(&profile.imdiffusion_config());
        let mut det = ImDiffusionDetector::new(cfg, 42);
        det.fit(&ds.train).expect("fit");
        let d = det.detect(&ds.test).expect("detect");
        let (mut nsum, mut nc, mut asum, mut ac) = (0.0, 0usize, 0.0, 0usize);
        for (&e, &l) in d.scores.iter().zip(&ds.labels) {
            if l {
                asum += e;
                ac += 1;
            } else {
                nsum += e;
                nc += 1;
            }
        }
        let (ne, ae) = (nsum / nc.max(1) as f64, asum / ac.max(1) as f64);
        eprintln!(
            "{}: normal {:.4}, abnormal {:.4}, gap ratio {:.2}",
            if matches!(variant, AblationVariant::Full) {
                "unconditional"
            } else {
                "conditional"
            },
            ne,
            ae,
            ae / ne.max(1e-12)
        );
        errors.push(d.scores);
    }
    let rows: Vec<Vec<String>> = (0..ds.test.len())
        .map(|t| {
            vec![
                t.to_string(),
                format!("{:.5}", ds.test.get(t, 0)),
                u8::from(ds.labels[t]).to_string(),
                format!("{:.6}", errors[0][t]),
                format!("{:.6}", errors[1][t]),
            ]
        })
        .collect();
    let csv = cache::results_dir().join("fig2.csv");
    write_csv(
        &csv,
        &["t", "value_ch0", "label", "err_conditional", "err_unconditional"],
        &rows,
    )
    .expect("write fig2.csv");
    println!("wrote {}", csv.display());
}
