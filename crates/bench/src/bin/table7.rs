//! Reproduces **Table 7**: online production improvement of ImDiffusion
//! over the legacy detector, plus inference efficiency.
//!
//! The Microsoft email-delivery telemetry is confidential; the paper itself
//! only reports *relative* improvements. This binary runs ImDiffusion and
//! the legacy stand-in (LSTM-AD, the classic production deep detector) on
//! the simulated email-latency stream (`imdiff_data::production`) and
//! reports the same relative metrics, plus measured points/second
//! throughput of ensemble inference. Artifact: `results/table7.csv`.

use std::time::Instant;

use imdiff_baselines::LstmAd;
use imdiff_bench::eval::{evaluate_ensemble, evaluate_scores};
use imdiff_bench::table::{render, write_csv};
use imdiff_bench::{cache, HarnessProfile};
use imdiff_data::production::{generate_production_stream, ProductionConfig};
use imdiff_data::Detector;
use imdiffusion::ImDiffusionDetector;

fn main() {
    let profile = HarnessProfile::from_env();
    let cfg = ProductionConfig::default();
    let ds = generate_production_stream(&cfg, 77);
    eprintln!(
        "Table 7: {} services, {}+{} samples at 30s cadence, {} incidents",
        cfg.services,
        cfg.train_len,
        cfg.test_len,
        ds.events().len()
    );

    // Legacy detector: LSTM-AD.
    let mut legacy = LstmAd::new(7);
    legacy.fit(&ds.train).expect("legacy fit");
    let legacy_det = legacy.detect(&ds.test).expect("legacy detect");
    let legacy_m = evaluate_scores(&legacy_det, &ds);

    // ImDiffusion.
    let mut imd = ImDiffusionDetector::new(profile.imdiffusion_config(), 7);
    imd.fit(&ds.train).expect("imdiffusion fit");
    let t0 = Instant::now();
    let _ = imd.detect(&ds.test).expect("imdiffusion detect");
    let infer_secs = t0.elapsed().as_secs_f64();
    let m = evaluate_ensemble(imd.last_output().expect("output"), &ds);
    let points_per_sec = ds.test.len() as f64 / infer_secs;

    let rel = |ours: f64, theirs: f64| -> String {
        if theirs.abs() < 1e-12 {
            return "-".into();
        }
        format!("{:+.1}%", (ours - theirs) / theirs * 100.0)
    };
    // ADD improvement is a reduction: report the relative decrease.
    let add_impr = if legacy_m.add > 0.0 {
        format!("{:+.1}%", (legacy_m.add - m.add) / legacy_m.add * 100.0)
    } else {
        "-".into()
    };

    let rows = vec![
        vec![
            "ImDiffusion vs legacy".to_string(),
            rel(m.precision, legacy_m.precision),
            rel(m.recall, legacy_m.recall),
            rel(m.f1, legacy_m.f1),
            rel(m.r_auc_pr, legacy_m.r_auc_pr),
            add_impr,
            format!("{points_per_sec:.1}"),
        ],
        vec![
            "absolute (ImDiffusion)".to_string(),
            format!("{:.4}", m.precision),
            format!("{:.4}", m.recall),
            format!("{:.4}", m.f1),
            format!("{:.4}", m.r_auc_pr),
            format!("{:.1}", m.add),
            String::new(),
        ],
        vec![
            "absolute (legacy LSTM-AD)".to_string(),
            format!("{:.4}", legacy_m.precision),
            format!("{:.4}", legacy_m.recall),
            format!("{:.4}", legacy_m.f1),
            format!("{:.4}", legacy_m.r_auc_pr),
            format!("{:.1}", legacy_m.add),
            String::new(),
        ],
    ];
    let headers = ["", "P", "R", "F1", "R-AUC-PR", "ADD impr.", "points/sec"];
    println!("{}", render(&headers, &rows));
    let csv = cache::results_dir().join("table7.csv");
    write_csv(&csv, &headers, &rows).expect("write table7.csv");
    eprintln!("wrote {}", csv.display());
}
