//! Reproduces **Figure 9**: predicted error on normal vs abnormal data for
//! conditional and unconditional diffusion models, averaged over all
//! datasets — the unconditional design should show the larger
//! normal/abnormal gap. Reuses the ablation cache.
//! Artifact: `results/fig9.csv`.

use imdiff_bench::suite::run_ablation_suite;
use imdiff_bench::table::{render, write_csv};
use imdiff_bench::{cache, HarnessProfile};
use imdiffusion::AblationVariant;

fn main() {
    let profile = HarnessProfile::from_env();
    let cells = run_ablation_suite(&profile);

    let mut rows = Vec::new();
    for (label, variant) in [
        ("Conditional", AblationVariant::Conditional),
        ("Unconditional", AblationVariant::Full),
    ] {
        let vals: Vec<(f64, f64)> = cells
            .iter()
            .filter(|(k, _)| k.detector == variant.name())
            .map(|(_, m)| (m.normal_err, m.abnormal_err))
            .collect();
        if vals.is_empty() {
            continue;
        }
        let n = vals.len() as f64;
        let normal = vals.iter().map(|v| v.0).sum::<f64>() / n;
        let abnormal = vals.iter().map(|v| v.1).sum::<f64>() / n;
        let overall = (normal + abnormal) / 2.0;
        rows.push(vec![
            label.to_string(),
            format!("{overall:.4}"),
            format!("{normal:.4}"),
            format!("{abnormal:.4}"),
            format!("{:.4}", abnormal - normal),
        ]);
    }
    let headers = ["Model", "Overall", "Normal", "Abnormal", "Difference"];
    println!("{}", render(&headers, &rows));
    let csv = cache::results_dir().join("fig9.csv");
    write_csv(&csv, &headers, &rows).expect("write fig9.csv");
    eprintln!("wrote {}", csv.display());
}
