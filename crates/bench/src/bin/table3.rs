//! Reproduces **Table 3**: P/R/F1/F1-std/R-AUC-PR averaged over the six
//! benchmark datasets. Reuses (or populates) the Table 2 cell cache.
//! Artifact: `results/table3.csv`.

use imdiff_bench::registry::TABLE2_DETECTORS;
use imdiff_bench::suite::{aggregate, run_offline_suite};
use imdiff_bench::table::{f4, render, write_csv};
use imdiff_bench::{cache, HarnessProfile};
use imdiff_data::synthetic::Benchmark;

fn main() {
    let profile = HarnessProfile::from_env();
    let cells = run_offline_suite(&profile);
    let agg = aggregate(&cells);

    let mut rows = Vec::new();
    for det in TABLE2_DETECTORS {
        let (mut p, mut r, mut f1, mut f1s, mut auc) = (0.0, 0.0, 0.0, 0.0, 0.0);
        let mut n = 0.0;
        for benchmark in Benchmark::all() {
            if let Some(a) = agg.get(&(det.to_string(), benchmark.name().to_string())) {
                p += a.precision();
                r += a.recall();
                f1 += a.f1();
                f1s += a.f1_std();
                auc += a.r_auc_pr();
                n += 1.0;
            }
        }
        if n > 0.0 {
            rows.push(vec![
                det.to_string(),
                f4(p / n),
                f4(r / n),
                f4(f1 / n),
                f4(f1s / n),
                f4(auc / n),
            ]);
        }
    }
    println!(
        "{}",
        render(&["Method", "P", "R", "F1", "F1-std", "R-AUC-PR"], &rows)
    );
    let csv = cache::results_dir().join("table3.csv");
    write_csv(
        &csv,
        &["method", "P", "R", "F1", "F1-std", "R-AUC-PR"],
        &rows,
    )
    .expect("write table3.csv");
    eprintln!("wrote {}", csv.display());
}
