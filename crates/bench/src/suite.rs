//! Cached evaluation suites shared by the table binaries.

use std::collections::HashMap;
use std::path::PathBuf;

use imdiff_data::synthetic::{generate, Benchmark, LabeledDataset};
use imdiff_data::Detector;
use imdiffusion::{AblationVariant, ImDiffusionDetector};

use crate::cache::{self, CellKey, CellMetrics};
use crate::eval::{evaluate_ensemble, evaluate_scores};
use crate::registry::{make_baseline, TABLE2_DETECTORS};
use crate::HarnessProfile;

/// Cache file for the Table 2/3/4 offline suite.
pub fn offline_cache_path() -> PathBuf {
    cache::results_dir().join("offline_cells.csv")
}

/// Cache file for the Table 5/6 ablation suite.
pub fn ablation_cache_path() -> PathBuf {
    cache::results_dir().join("ablation_cells.csv")
}

/// Runs (or loads) the full offline suite: every Table 2 detector on every
/// benchmark for `profile.runs` seeds. Prints progress to stderr since a
/// cold run takes minutes.
pub fn run_offline_suite(profile: &HarnessProfile) -> HashMap<CellKey, CellMetrics> {
    let path = offline_cache_path();
    let mut cells = cache::load(&path);
    for benchmark in Benchmark::all() {
        for run in 0..profile.runs {
            let mut dataset: Option<LabeledDataset> = None;
            for detector in TABLE2_DETECTORS {
                let key = CellKey {
                    detector: detector.to_string(),
                    dataset: benchmark.name().to_string(),
                    run,
                };
                if cells.contains_key(&key) {
                    continue;
                }
                let ds = dataset
                    .get_or_insert_with(|| generate(benchmark, &profile.size, 1000 + run));
                let start = std::time::Instant::now();
                let metrics = run_cell(profile, detector, ds, run);
                eprintln!(
                    "[offline] {detector} on {} run {run}: F1={:.3} ({:.1}s)",
                    benchmark.name(),
                    metrics.f1,
                    start.elapsed().as_secs_f64()
                );
                cache::append(&path, &key, &metrics).expect("write cache");
                cells.insert(key, metrics);
            }
        }
    }
    cells
}

/// Evaluates one (detector, dataset, run) cell.
fn run_cell(
    profile: &HarnessProfile,
    detector: &str,
    ds: &LabeledDataset,
    run: u64,
) -> CellMetrics {
    let seed = 7000 + run;
    if detector == "ImDiffusion" {
        let mut det = ImDiffusionDetector::new(profile.imdiffusion_config(), seed);
        det.fit(&ds.train).expect("imdiffusion fit");
        let _ = det.detect(&ds.test).expect("imdiffusion detect");
        let out = det.last_output().expect("ensemble output");
        evaluate_ensemble(out, ds)
    } else {
        let mut det = make_baseline(detector, seed).expect("known baseline");
        det.fit(&ds.train).expect("baseline fit");
        let detection = det.detect(&ds.test).expect("baseline detect");
        evaluate_scores(&detection, ds)
    }
}

/// Runs (or loads) the ablation suite of Table 5/6: the eight
/// [`AblationVariant`]s on every benchmark. One run per cell in the quick
/// profile (ablations are deltas, not headline numbers).
pub fn run_ablation_suite(profile: &HarnessProfile) -> HashMap<CellKey, CellMetrics> {
    let path = ablation_cache_path();
    let mut cells = cache::load(&path);
    let runs = if profile.quick { 1 } else { profile.runs };
    for benchmark in Benchmark::all() {
        for run in 0..runs {
            let mut dataset: Option<LabeledDataset> = None;
            // The Full model's ensemble output is shared with
            // inference-only variants (NonEnsemble).
            let mut full_out: Option<imdiffusion::EnsembleOutput> = None;
            for variant in AblationVariant::all() {
                let key = CellKey {
                    detector: variant.name().to_string(),
                    dataset: benchmark.name().to_string(),
                    run,
                };
                if cells.contains_key(&key) {
                    continue;
                }
                let ds = dataset
                    .get_or_insert_with(|| generate(benchmark, &profile.size, 1000 + run));
                let cfg = variant.apply(&profile.imdiffusion_config());
                let seed = 7000 + run;
                let start = std::time::Instant::now();
                let metrics = if variant.reuses_full_model() {
                    if full_out.is_none() {
                        let mut det = ImDiffusionDetector::new(
                            AblationVariant::Full.apply(&profile.imdiffusion_config()),
                            seed,
                        );
                        det.fit(&ds.train).expect("fit full");
                        let _ = det.detect(&ds.test).expect("detect full");
                        full_out = Some(det.last_output().expect("output").clone());
                    }
                    let out = full_out.as_ref().expect("full output");
                    match variant {
                        AblationVariant::Full => evaluate_ensemble(out, ds),
                        // NonEnsemble: same trained model, but only the
                        // fully denoised step participates in thresholding.
                        _ => evaluate_ensemble(&non_ensemble_view(out), ds),
                    }
                } else {
                    let mut det = ImDiffusionDetector::new(cfg, seed);
                    det.fit(&ds.train).expect("fit variant");
                    let _ = det.detect(&ds.test).expect("detect variant");
                    evaluate_ensemble(det.last_output().expect("output"), ds)
                };
                eprintln!(
                    "[ablation] {} on {} run {run}: F1={:.3} ({:.1}s)",
                    variant.name(),
                    benchmark.name(),
                    metrics.f1,
                    start.elapsed().as_secs_f64()
                );
                cache::append(&path, &key, &metrics).expect("write cache");
                cells.insert(key, metrics);
            }
        }
    }
    cells
}

/// Restricts an ensemble output to its final denoising step (the
/// non-ensemble ablation: thresholding only the fully denoised error).
fn non_ensemble_view(out: &imdiffusion::EnsembleOutput) -> imdiffusion::EnsembleOutput {
    let last = out.steps.last().expect("at least one step").clone();
    imdiffusion::EnsembleOutput {
        scores: last.error.clone(),
        votes: last.labels.iter().map(|&l| u32::from(l)).collect(),
        labels: last.labels.clone(),
        steps: vec![last],
        tau_base: out.tau_base,
        vote_threshold: 0,
        cell_error: out.cell_error.clone(),
        channels: out.channels,
        missing_cells: out.missing_cells,
    }
}

/// Aggregates cells into per-(detector, dataset) run statistics.
pub fn aggregate(
    cells: &HashMap<CellKey, CellMetrics>,
) -> HashMap<(String, String), imdiff_metrics::RunAggregate> {
    let mut out: HashMap<(String, String), imdiff_metrics::RunAggregate> = HashMap::new();
    for (key, m) in cells {
        let agg = out
            .entry((key.detector.clone(), key.dataset.clone()))
            .or_default();
        agg.push(
            imdiff_metrics::PrF1 {
                precision: m.precision,
                recall: m.recall,
                f1: m.f1,
            },
            m.r_auc_pr,
            m.add,
        );
    }
    out
}
