//! Turning raw detections into the paper's metrics.

use imdiff_data::synthetic::LabeledDataset;
use imdiff_data::Detection;
use imdiff_metrics::{average_detection_delay, best_f1_threshold, point, range_auc_pr, threshold_at_percentile};
use imdiffusion::EnsembleOutput;

use crate::cache::CellMetrics;

/// Per-point error split into normal/abnormal means (figures 7 and 9).
pub fn error_split(errors: &[f64], labels: &[bool]) -> (f64, f64) {
    let (mut ns, mut nc, mut asum, mut ac) = (0.0f64, 0usize, 0.0f64, 0usize);
    for (&e, &l) in errors.iter().zip(labels) {
        if l {
            asum += e;
            ac += 1;
        } else {
            ns += e;
            nc += 1;
        }
    }
    (
        if nc > 0 { ns / nc as f64 } else { 0.0 },
        if ac > 0 { asum / ac as f64 } else { 0.0 },
    )
}

/// Evaluates a score-only detector: best-F1 threshold search over the
/// scores (the paper's protocol for baselines), plus R-AUC-PR and ADD.
pub fn evaluate_scores(detection: &Detection, ds: &LabeledDataset) -> CellMetrics {
    let (th, prf1) = best_f1_threshold(&detection.scores, &ds.labels);
    let labels: Vec<bool> = detection.scores.iter().map(|&s| s > th).collect();
    let add = average_detection_delay(&labels, &ds.labels);
    let r_auc_pr = range_auc_pr(&detection.scores, &ds.labels, None);
    let (normal_err, abnormal_err) = error_split(&detection.scores, &ds.labels);
    CellMetrics {
        precision: prf1.precision,
        recall: prf1.recall,
        f1: prf1.f1,
        r_auc_pr,
        add,
        normal_err,
        abnormal_err,
    }
}

/// Evaluates ImDiffusion through its native ensemble voting rule
/// (Eq. 12), calibrating the dataset-dependent τ and ξ the way the paper
/// does ("detection thresholds vary across subsets"; ξ "is
/// dataset-dependent"): a small grid over the τ percentile and vote
/// threshold, re-voting cheaply from the recorded step traces.
pub fn evaluate_ensemble(out: &EnsembleOutput, ds: &LabeledDataset) -> CellMetrics {
    let final_err = out.final_step_error();
    let n_steps = out.steps.len();
    let mut best = (point::PrF1::default(), vec![false; ds.labels.len()]);
    for &q in &[90.0, 94.0, 96.0, 97.0, 98.0, 99.0, 99.5] {
        let tau = threshold_at_percentile(final_err, q);
        for xi in [n_steps / 4, n_steps / 2, (3 * n_steps) / 4] {
            let labels = out.revote(tau, xi);
            let m = point::pa_prf1(&labels, &ds.labels);
            if m.f1 > best.0.f1 {
                best = (m, labels);
            }
        }
    }
    let (prf1, labels) = best;
    let add = average_detection_delay(&labels, &ds.labels);
    let r_auc_pr = range_auc_pr(&out.scores, &ds.labels, None);
    let (normal_err, abnormal_err) = error_split(final_err, &ds.labels);
    CellMetrics {
        precision: prf1.precision,
        recall: prf1.recall,
        f1: prf1.f1,
        r_auc_pr,
        add,
        normal_err,
        abnormal_err,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imdiff_data::Mts;

    fn toy_dataset(labels: Vec<bool>) -> LabeledDataset {
        let n = labels.len();
        LabeledDataset {
            name: "toy".into(),
            train: Mts::zeros(n, 1),
            test: Mts::zeros(n, 1),
            labels,
        }
    }

    #[test]
    fn perfect_scores_give_perfect_f1() {
        let labels: Vec<bool> = (0..50).map(|i| (20..30).contains(&i)).collect();
        let scores: Vec<f64> = labels.iter().map(|&l| if l { 5.0 } else { 1.0 }).collect();
        let m = evaluate_scores(&Detection::from_scores(scores), &toy_dataset(labels));
        assert_eq!(m.f1, 1.0);
        assert_eq!(m.add, 0.0);
        assert!(m.abnormal_err > m.normal_err);
    }

    #[test]
    fn evaluate_ensemble_calibrates_threshold() {
        // Hand-built ensemble output: one vote step whose error separates a
        // single anomalous segment. The calibration grid must find it.
        let n = 60;
        let labels: Vec<bool> = (0..n).map(|i| (20..30).contains(&i)).collect();
        let error: Vec<f64> = labels.iter().map(|&l| if l { 4.0 } else { 0.5 }).collect();
        let step = imdiffusion::StepTrace {
            t: 1,
            error: error.clone(),
            tau: 1.0,
            ratio: 1.0,
            labels: labels.clone(),
            imputed: imdiff_data::Mts::zeros(n, 1),
        };
        let out = imdiffusion::EnsembleOutput {
            scores: error.clone(),
            votes: labels.iter().map(|&l| u32::from(l)).collect(),
            labels: labels.clone(),
            steps: vec![step],
            tau_base: 1.0,
            vote_threshold: 0,
            cell_error: error.clone(),
            channels: 1,
            missing_cells: 0,
        };
        let m = evaluate_ensemble(&out, &toy_dataset(labels));
        assert_eq!(m.f1, 1.0, "calibration failed: {m:?}");
        assert_eq!(m.add, 0.0);
    }

    #[test]
    fn error_split_handles_empty_classes() {
        let (n, a) = error_split(&[1.0, 2.0], &[false, false]);
        assert_eq!(n, 1.5);
        assert_eq!(a, 0.0);
    }
}
