//! Noise schedules and DDPM forward/reverse transitions.

/// How the per-step noise level β_t is laid out over the T diffusion steps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BetaSchedule {
    /// β interpolates linearly from `start` to `end` (DDPM default).
    Linear {
        /// β at step 1.
        start: f32,
        /// β at step T.
        end: f32,
    },
    /// √β interpolates linearly (the schedule CSDI uses for imputation).
    Quadratic {
        /// β at step 1.
        start: f32,
        /// β at step T.
        end: f32,
    },
    /// Nichol & Dhariwal cosine schedule on ᾱ.
    Cosine,
}

impl BetaSchedule {
    /// The schedule ImDiffusion inherits from CSDI: quadratic between
    /// 1e-4 and 0.5.
    pub fn default_for_imputation() -> Self {
        BetaSchedule::Quadratic {
            start: 1e-4,
            end: 0.5,
        }
    }

    fn betas(&self, t: usize) -> Vec<f32> {
        assert!(t >= 1, "schedule needs at least one step");
        match *self {
            BetaSchedule::Linear { start, end } => (0..t)
                .map(|i| {
                    if t == 1 {
                        start
                    } else {
                        start + (end - start) * i as f32 / (t - 1) as f32
                    }
                })
                .collect(),
            BetaSchedule::Quadratic { start, end } => {
                let (s, e) = (start.sqrt(), end.sqrt());
                (0..t)
                    .map(|i| {
                        let v = if t == 1 {
                            s
                        } else {
                            s + (e - s) * i as f32 / (t - 1) as f32
                        };
                        v * v
                    })
                    .collect()
            }
            BetaSchedule::Cosine => {
                let s = 0.008f64;
                let f = |i: f64| ((i / t as f64 + s) / (1.0 + s) * std::f64::consts::FRAC_PI_2)
                    .cos()
                    .powi(2);
                (0..t)
                    .map(|i| {
                        let b = 1.0 - f((i + 1) as f64) / f(i as f64);
                        (b.clamp(1e-8, 0.999)) as f32
                    })
                    .collect()
            }
        }
    }
}

/// Precomputed DDPM coefficients for a fixed number of steps.
///
/// Step indices are 1-based in the paper's notation (`t ∈ 1..=T`); this
/// struct accepts 1-based `t` everywhere and maps internally.
#[derive(Debug, Clone)]
pub struct NoiseSchedule {
    betas: Vec<f32>,
    alpha_bar: Vec<f32>,
    sqrt_alpha_bar: Vec<f32>,
    sqrt_one_minus_alpha_bar: Vec<f32>,
    posterior_var: Vec<f32>,
}

impl NoiseSchedule {
    /// Builds a schedule with `t_max` steps.
    pub fn new(schedule: BetaSchedule, t_max: usize) -> Self {
        let betas = schedule.betas(t_max);
        let mut alpha_bar = Vec::with_capacity(t_max);
        let mut acc = 1.0f64;
        for &b in &betas {
            acc *= 1.0 - b as f64;
            alpha_bar.push(acc as f32);
        }
        let sqrt_alpha_bar: Vec<f32> = alpha_bar.iter().map(|a| a.sqrt()).collect();
        let sqrt_one_minus_alpha_bar: Vec<f32> =
            alpha_bar.iter().map(|a| (1.0 - a).sqrt()).collect();
        // β̃_t = (1-ᾱ_{t-1})/(1-ᾱ_t) β_t for t>1, β_1 at t=1 (Eq. 5).
        let posterior_var: Vec<f32> = (0..t_max)
            .map(|i| {
                if i == 0 {
                    betas[0]
                } else {
                    (1.0 - alpha_bar[i - 1]) / (1.0 - alpha_bar[i]) * betas[i]
                }
            })
            .collect();
        NoiseSchedule {
            betas,
            alpha_bar,
            sqrt_alpha_bar,
            sqrt_one_minus_alpha_bar,
            posterior_var,
        }
    }

    /// Number of diffusion steps T.
    pub fn t_max(&self) -> usize {
        self.betas.len()
    }

    /// β_t (1-based `t`).
    pub fn beta(&self, t: usize) -> f32 {
        self.betas[self.ix(t)]
    }

    /// ᾱ_t (1-based `t`).
    pub fn alpha_bar(&self, t: usize) -> f32 {
        self.alpha_bar[self.ix(t)]
    }

    /// √ᾱ_t.
    pub fn sqrt_alpha_bar(&self, t: usize) -> f32 {
        self.sqrt_alpha_bar[self.ix(t)]
    }

    /// √(1−ᾱ_t).
    pub fn sqrt_one_minus_alpha_bar(&self, t: usize) -> f32 {
        self.sqrt_one_minus_alpha_bar[self.ix(t)]
    }

    /// Posterior variance β̃_t from Eq. (5).
    pub fn posterior_variance(&self, t: usize) -> f32 {
        self.posterior_var[self.ix(t)]
    }

    fn ix(&self, t: usize) -> usize {
        assert!(
            (1..=self.t_max()).contains(&t),
            "step {t} out of range 1..={}",
            self.t_max()
        );
        t - 1
    }

    /// Closed-form forward sample: `x_t = √ᾱ_t x0 + √(1−ᾱ_t) ε`.
    pub fn q_sample(&self, x0: &[f32], eps: &[f32], t: usize) -> Vec<f32> {
        assert_eq!(x0.len(), eps.len(), "q_sample length mismatch");
        let a = self.sqrt_alpha_bar(t);
        let b = self.sqrt_one_minus_alpha_bar(t);
        x0.iter().zip(eps).map(|(&x, &e)| a * x + b * e).collect()
    }

    /// Writes the forward sample into `out` without allocating.
    pub fn q_sample_into(&self, x0: &[f32], eps: &[f32], t: usize, out: &mut [f32]) {
        assert_eq!(x0.len(), eps.len(), "q_sample length mismatch");
        assert_eq!(x0.len(), out.len(), "q_sample output length mismatch");
        let a = self.sqrt_alpha_bar(t);
        let b = self.sqrt_one_minus_alpha_bar(t);
        for ((o, &x), &e) in out.iter_mut().zip(x0).zip(eps) {
            *o = a * x + b * e;
        }
    }

    /// Reverse posterior mean of Eq. (5):
    /// `μ = 1/√α̃_t (x_t − β_t/√(1−ᾱ_t) ε̂)`.
    pub fn posterior_mean(&self, xt: &[f32], eps_hat: &[f32], t: usize) -> Vec<f32> {
        assert_eq!(xt.len(), eps_hat.len(), "posterior_mean length mismatch");
        let inv_sqrt_alpha = 1.0 / (1.0 - self.beta(t)).sqrt();
        let coef = self.beta(t) / self.sqrt_one_minus_alpha_bar(t);
        xt.iter()
            .zip(eps_hat)
            .map(|(&x, &e)| inv_sqrt_alpha * (x - coef * e))
            .collect()
    }

    /// One reverse transition `x_{t-1} = μ_Θ + √β̃_t z` (Eq. 4/5/9).
    ///
    /// `noise` must be standard normal of matching length; pass zeros for
    /// the deterministic final step (`t == 1` conventionally uses no noise).
    pub fn p_step(&self, xt: &[f32], eps_hat: &[f32], t: usize, noise: &[f32]) -> Vec<f32> {
        assert_eq!(xt.len(), noise.len(), "p_step noise length mismatch");
        let mut mean = self.posterior_mean(xt, eps_hat, t);
        if t > 1 {
            let sigma = self.posterior_variance(t).sqrt();
            for (m, &z) in mean.iter_mut().zip(noise) {
                *m += sigma * z;
            }
        }
        mean
    }

    /// Recovers the `x̂_0` implied by a noise prediction:
    /// `x̂0 = (x_t − √(1−ᾱ_t) ε̂)/√ᾱ_t`.
    pub fn predict_x0(&self, xt: &[f32], eps_hat: &[f32], t: usize) -> Vec<f32> {
        assert_eq!(xt.len(), eps_hat.len(), "predict_x0 length mismatch");
        let a = self.sqrt_alpha_bar(t);
        let b = self.sqrt_one_minus_alpha_bar(t);
        xt.iter()
            .zip(eps_hat)
            .map(|(&x, &e)| (x - b * e) / a)
            .collect()
    }

    /// One deterministic DDIM transition (Song et al., η = 0) from step `t`
    /// directly to step `t_prev` (`t_prev < t`; `t_prev = 0` returns the
    /// `x̂_0` estimate itself):
    ///
    /// `x_{t'} = √ᾱ_{t'} x̂0 + √(1−ᾱ_{t'}) ε_implied`, where
    /// `ε_implied = (x_t − √ᾱ_t x̂0)/√(1−ᾱ_t)`.
    ///
    /// Lets the reverse chain skip steps — the standard accelerated-sampling
    /// extension for diffusion inference.
    pub fn ddim_step(&self, xt: &[f32], x0_hat: &[f32], t: usize, t_prev: usize) -> Vec<f32> {
        assert_eq!(xt.len(), x0_hat.len(), "ddim_step length mismatch");
        assert!(t_prev < t, "ddim_step must move backwards (t_prev < t)");
        let a_t = self.sqrt_alpha_bar(t);
        let b_t = self.sqrt_one_minus_alpha_bar(t).max(1e-12);
        if t_prev == 0 {
            return x0_hat.to_vec();
        }
        let a_p = self.sqrt_alpha_bar(t_prev);
        let b_p = self.sqrt_one_minus_alpha_bar(t_prev);
        xt.iter()
            .zip(x0_hat)
            .map(|(&x, &x0)| {
                let eps_implied = (x - a_t * x0) / b_t;
                a_p * x0 + b_p * eps_implied
            })
            .collect()
    }

    /// One reverse transition parameterized by a (possibly clamped) `x̂_0`
    /// estimate instead of `ε̂`:
    ///
    /// `μ = √ᾱ_{t-1} β_t/(1−ᾱ_t) · x̂0 + √α̃_t (1−ᾱ_{t-1})/(1−ᾱ_t) · x_t`.
    ///
    /// Clamping `x̂_0` to the data range before this step is the standard
    /// DDPM stabilizer: it stops imperfect noise predictions from
    /// compounding through the `1/√α̃_t` factors of the ε̂-form.
    pub fn p_step_from_x0(
        &self,
        xt: &[f32],
        x0_hat: &[f32],
        t: usize,
        noise: &[f32],
    ) -> Vec<f32> {
        assert_eq!(xt.len(), x0_hat.len(), "p_step_from_x0 length mismatch");
        assert_eq!(xt.len(), noise.len(), "p_step_from_x0 noise length mismatch");
        let beta = self.beta(t);
        let ab_t = self.alpha_bar(t);
        let ab_prev = if t > 1 { self.alpha_bar(t - 1) } else { 1.0 };
        let coef_x0 = ab_prev.sqrt() * beta / (1.0 - ab_t);
        let coef_xt = (1.0 - beta).sqrt() * (1.0 - ab_prev) / (1.0 - ab_t);
        let sigma = if t > 1 {
            self.posterior_variance(t).sqrt()
        } else {
            0.0
        };
        xt.iter()
            .zip(x0_hat)
            .zip(noise)
            .map(|((&x, &x0), &z)| coef_x0 * x0 + coef_xt * x + sigma * z)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear(t: usize) -> NoiseSchedule {
        NoiseSchedule::new(
            BetaSchedule::Linear {
                start: 1e-4,
                end: 0.02,
            },
            t,
        )
    }

    #[test]
    fn alpha_bar_is_decreasing() {
        for sched in [
            BetaSchedule::Linear {
                start: 1e-4,
                end: 0.02,
            },
            BetaSchedule::default_for_imputation(),
            BetaSchedule::Cosine,
        ] {
            let ns = NoiseSchedule::new(sched, 50);
            for t in 2..=50 {
                assert!(
                    ns.alpha_bar(t) < ns.alpha_bar(t - 1),
                    "{sched:?} not decreasing at {t}"
                );
            }
            assert!(ns.alpha_bar(1) < 1.0 && ns.alpha_bar(50) > 0.0);
        }
    }

    #[test]
    fn betas_within_unit_interval() {
        for sched in [
            BetaSchedule::Linear {
                start: 1e-4,
                end: 0.02,
            },
            BetaSchedule::default_for_imputation(),
            BetaSchedule::Cosine,
        ] {
            let ns = NoiseSchedule::new(sched, 50);
            for t in 1..=50 {
                let b = ns.beta(t);
                assert!(b > 0.0 && b < 1.0, "{sched:?} β_{t} = {b}");
            }
        }
    }

    #[test]
    fn q_sample_zero_noise_shrinks_signal() {
        let ns = linear(50);
        let x0 = vec![1.0f32; 4];
        let eps = vec![0.0f32; 4];
        let xt = ns.q_sample(&x0, &eps, 50);
        assert!(xt.iter().all(|&v| v < 1.0 && v > 0.0));
        assert!((xt[0] - ns.sqrt_alpha_bar(50)).abs() < 1e-6);
    }

    #[test]
    fn perfect_eps_roundtrips_x0() {
        // If the model predicts the exact forward noise, predict_x0 recovers x0.
        let ns = NoiseSchedule::new(BetaSchedule::default_for_imputation(), 50);
        let x0 = vec![0.3f32, -1.2, 2.0];
        let eps = vec![0.5f32, -0.7, 0.1];
        for t in [1usize, 10, 25, 50] {
            let xt = ns.q_sample(&x0, &eps, t);
            let rec = ns.predict_x0(&xt, &eps, t);
            for (a, b) in rec.iter().zip(&x0) {
                assert!((a - b).abs() < 1e-3, "t={t}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn reverse_chain_with_perfect_eps_converges_to_x0() {
        // Deterministic reverse chain (zero injected noise) from x_T built
        // with known ε must land close to x0 when ε̂ tracks the true noise
        // direction at every step.
        let t_max = 50;
        let ns = NoiseSchedule::new(BetaSchedule::default_for_imputation(), t_max);
        let x0 = vec![0.8f32, -0.4];
        let eps = vec![0.3f32, -0.9];
        let mut x = ns.q_sample(&x0, &eps, t_max);
        let zeros = vec![0.0f32; 2];
        for t in (1..=t_max).rev() {
            // The "true" ε at the current point: ε = (x_t - √ᾱ x0)/√(1-ᾱ).
            let a = ns.sqrt_alpha_bar(t);
            let b = ns.sqrt_one_minus_alpha_bar(t);
            let eps_true: Vec<f32> = x.iter().zip(&x0).map(|(&xt, &x0v)| (xt - a * x0v) / b).collect();
            x = ns.p_step(&x, &eps_true, t, &zeros);
        }
        for (a, b) in x.iter().zip(&x0) {
            assert!((a - b).abs() < 5e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn posterior_variance_at_one_is_beta_one() {
        let ns = linear(10);
        assert!((ns.posterior_variance(1) - ns.beta(1)).abs() < 1e-8);
    }

    #[test]
    fn p_step_final_step_is_deterministic() {
        let ns = linear(10);
        let xt = vec![0.5f32];
        let eps = vec![0.1f32];
        let a = ns.p_step(&xt, &eps, 1, &[10.0]); // huge noise must be ignored
        let b = ns.p_step(&xt, &eps, 1, &[0.0]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn step_zero_rejected() {
        let ns = linear(10);
        let _ = ns.beta(0);
    }

    #[test]
    fn ddim_step_with_perfect_x0_is_consistent() {
        // Jumping t -> t_prev with the exact x0 lands on the exact forward
        // trajectory of the implied noise.
        let ns = NoiseSchedule::new(BetaSchedule::default_for_imputation(), 50);
        let x0 = vec![0.4f32, -0.8];
        let eps = vec![1.1f32, -0.2];
        let x20 = ns.q_sample(&x0, &eps, 20);
        let x5 = ns.ddim_step(&x20, &x0, 20, 5);
        let expected = ns.q_sample(&x0, &eps, 5);
        for (a, b) in x5.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn ddim_to_zero_returns_x0() {
        let ns = linear(10);
        let x0 = vec![0.7f32];
        let xt = ns.q_sample(&x0, &[0.3], 10);
        assert_eq!(ns.ddim_step(&xt, &x0, 10, 0), x0);
    }

    #[test]
    #[should_panic(expected = "move backwards")]
    fn ddim_forward_rejected() {
        let ns = linear(10);
        let _ = ns.ddim_step(&[0.0], &[0.0], 3, 5);
    }

    #[test]
    fn p_step_forms_agree_without_clamping() {
        // The x̂0-parameterized posterior equals the ε̂-parameterized one
        // when x̂0 = predict_x0(x_t, ε̂).
        let ns = NoiseSchedule::new(BetaSchedule::default_for_imputation(), 20);
        let xt = vec![0.7f32, -0.3, 1.5];
        let eps_hat = vec![0.2f32, -0.8, 0.4];
        let z = vec![0.1f32, 0.5, -0.2];
        for t in [2usize, 10, 20] {
            let a = ns.p_step(&xt, &eps_hat, t, &z);
            let x0 = ns.predict_x0(&xt, &eps_hat, t);
            let b = ns.p_step_from_x0(&xt, &x0, t, &z);
            for (u, v) in a.iter().zip(&b) {
                assert!((u - v).abs() < 1e-3, "t={t}: {u} vs {v}");
            }
        }
    }

    #[test]
    fn p_step_from_x0_final_step_returns_x0() {
        let ns = linear(10);
        let xt = vec![0.5f32];
        let x0 = vec![0.3f32];
        let out = ns.p_step_from_x0(&xt, &x0, 1, &[9.0]);
        // At t=1, ᾱ_0 = 1 so μ = x̂0 (up to the tiny β contribution).
        assert!((out[0] - 0.3).abs() < 0.05, "{}", out[0]);
    }

    #[test]
    fn q_sample_into_matches_alloc() {
        let ns = linear(10);
        let x0 = vec![0.1f32, 0.2, 0.3];
        let eps = vec![-1.0f32, 0.5, 2.0];
        let alloc = ns.q_sample(&x0, &eps, 5);
        let mut out = vec![0.0f32; 3];
        ns.q_sample_into(&x0, &eps, 5, &mut out);
        assert_eq!(alloc, out);
    }
}
