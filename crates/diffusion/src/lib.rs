//! `imdiff-diffusion` — denoising-diffusion (DDPM) machinery.
//!
//! Model-agnostic implementation of the forward noising process and the
//! reverse (denoising) transition used by ImDiffusion (§3.3 of the paper):
//!
//! * β-schedules ([`BetaSchedule`]): linear, quadratic, cosine;
//! * the closed-form forward sample `x_t = √ᾱ_t x_0 + √(1−ᾱ_t) ε`
//!   ([`NoiseSchedule::q_sample`]);
//! * the reverse posterior mean/variance of Eq. (5)
//!   ([`NoiseSchedule::p_step`]);
//! * the `x̂_0` estimate recovered from a predicted noise
//!   ([`NoiseSchedule::predict_x0`]).
//!
//! Note on the paper's Eq. (3): the text writes
//! `X_T = √ᾱ_T X_0 + (1 − ᾱ_T) ε`; the standard DDPM form (and the CSDI
//! reference implementation the paper builds on) uses `√(1 − ᾱ_T)`. This
//! crate uses the standard square-root form; DESIGN.md records the
//! substitution.

mod schedule;

pub use schedule::{BetaSchedule, NoiseSchedule};
