//! Streaming deployment: checkpoint a trained detector, reload it, and
//! monitor a live stream point by point.
//!
//! ```sh
//! cargo run --release --example streaming
//! ```

use imdiffusion_repro::core::{ImDiffusionConfig, ImDiffusionDetector, StreamingMonitor};
use imdiffusion_repro::data::production::{generate_production_stream, ProductionConfig};
use imdiffusion_repro::data::Detector;

fn main() {
    let cfg = ProductionConfig {
        services: 8,
        train_len: 600,
        test_len: 300,
        day_len: 200,
        incidents: 3,
    };
    let stream = generate_production_stream(&cfg, 55);

    // Train once...
    let mut det = ImDiffusionDetector::new(ImDiffusionConfig::quick(), 55);
    det.fit(&stream.train).expect("fit");

    // ...checkpoint to disk (what a production rollout would bake into the
    // serving image)...
    let ckpt = std::env::temp_dir().join("imdiffusion-example.ckpt");
    det.save(&ckpt).expect("save checkpoint");
    println!("checkpoint written to {}", ckpt.display());

    // ...and reload in the "serving process".
    let restored = ImDiffusionDetector::load(
        ImDiffusionConfig::quick(),
        55,
        stream.train.dim(),
        &ckpt,
    )
    .expect("load checkpoint");

    // Drive the restored detector over the live stream. hop=16 re-runs
    // ensemble inference every 16 arrivals (8 minutes of 30s samples).
    let mut monitor = StreamingMonitor::new(restored, stream.train.dim(), 16).expect("monitor");
    let mut alarms = 0usize;
    let mut judged = 0usize;
    for l in 0..stream.test.len() {
        let verdicts = monitor.push(stream.test.row(l)).expect("push");
        for v in verdicts {
            judged += 1;
            if v.anomalous {
                alarms += 1;
                let truth = stream.labels[v.index as usize];
                println!(
                    "ALARM at sample {} (votes {}, score {:.3}) — ground truth: {}",
                    v.index,
                    v.votes,
                    v.score,
                    if truth { "incident" } else { "false alarm" }
                );
            }
        }
    }
    println!(
        "\nstream finished: {judged} points judged, {alarms} alarms, {} true incidents",
        stream.events().len()
    );
    std::fs::remove_file(&ckpt).ok();
}
