//! Span-level profile of the ensemble inference hot path.
//!
//! Fits a small detector, resets the observability registry so training
//! spans do not pollute the numbers, runs detection repeatedly, and dumps
//! the span snapshot. Run with:
//!
//!     IMDIFF_OBS=1 cargo run --release --example profile_infer
//!
//! Useful when deciding which kernel to optimize next: `self_ns` is time
//! inside a span but outside every child span.

use imdiffusion_repro::core::{ImDiffusionConfig, ImDiffusionDetector};
use imdiffusion_repro::data::synthetic::{generate, Benchmark, SizeProfile};
use imdiffusion_repro::data::Detector;
use imdiffusion_repro::nn::obs;

fn main() {
    obs::set_enabled(true);
    let size = SizeProfile {
        train_len: 300,
        test_len: 192,
    };
    let ds = generate(Benchmark::Gcp, &size, 1);
    let cfg = ImDiffusionConfig {
        train_steps: 20,
        ddim_steps: Some(4),
        ..ImDiffusionConfig::quick()
    };
    let mut det = ImDiffusionDetector::new(cfg, 1);
    det.fit(&ds.train).expect("fit");

    obs::reset();
    let start = std::time::Instant::now();
    let iters = 5;
    for _ in 0..iters {
        let _ = det.detect(&ds.test).expect("detect");
    }
    let elapsed = start.elapsed();
    println!(
        "detect: {:.1}ms/iter over {iters} iters",
        elapsed.as_secs_f64() * 1e3 / iters as f64
    );
    println!("{}", obs::snapshot_json());
}
