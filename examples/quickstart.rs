//! Quickstart: train ImDiffusion on a synthetic benchmark and detect
//! anomalies.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use imdiffusion_repro::core::{ImDiffusionConfig, ImDiffusionDetector};
use imdiffusion_repro::data::synthetic::{generate, Benchmark, SizeProfile};
use imdiffusion_repro::data::Detector;
use imdiffusion_repro::metrics::{point, range_auc_pr};

fn main() {
    // 1. Get data: a synthetic stand-in for the SMD benchmark. `train` is
    //    anomaly-free; `test` carries labelled injected anomalies.
    let ds = generate(Benchmark::Smd, &SizeProfile::quick(), 42);
    println!(
        "dataset {}: {} train / {} test steps, {} channels, {:.1}% anomalous",
        ds.name,
        ds.train.len(),
        ds.test.len(),
        ds.train.dim(),
        ds.anomaly_rate() * 100.0
    );

    // 2. Configure and fit the detector. `quick()` is CPU-sized; use
    //    `ImDiffusionConfig::paper()` for the Table 1 hyper-parameters.
    let mut detector = ImDiffusionDetector::new(ImDiffusionConfig::quick(), 42);
    detector.fit(&ds.train).expect("training failed");
    println!(
        "trained, final loss {:.4}",
        detector.last_train_report().unwrap().final_loss()
    );

    // 3. Detect: ImDiffusion returns continuous scores and its native
    //    ensemble-voted labels.
    let detection = detector.detect(&ds.test).expect("detection failed");
    let labels = detection.labels.as_ref().expect("native labels");

    // 4. Evaluate with the paper's metrics.
    let prf1 = point::pa_prf1(labels, &ds.labels);
    let auc = range_auc_pr(&detection.scores, &ds.labels, None);
    println!(
        "point-adjusted P={:.3} R={:.3} F1={:.3}, R-AUC-PR={:.3}",
        prf1.precision, prf1.recall, prf1.f1, auc
    );

    // 5. Inspect the ensemble: per-step traces underlie figures 2 and 8.
    let out = detector.last_output().expect("ensemble trace");
    println!(
        "ensemble voted over denoising steps {:?} with ξ={}",
        out.steps.iter().map(|s| s.t).collect::<Vec<_>>(),
        out.vote_threshold
    );
}
