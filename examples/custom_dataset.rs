//! Using ImDiffusion (and the baselines) on your own data.
//!
//! Shows the full path from raw `Vec<f32>` buffers to detections: building
//! an [`Mts`], fitting several detectors through the common `Detector`
//! trait, and comparing their scores — no synthetic generator involved.
//!
//! ```sh
//! cargo run --release --example custom_dataset
//! ```

use imdiffusion_repro::baselines::{IsolationForest, TranAd};
use imdiffusion_repro::core::{ImDiffusionConfig, ImDiffusionDetector};
use imdiffusion_repro::data::{Detector, Mts};
use imdiffusion_repro::metrics::best_f1_threshold;

/// Pretend this came from your metrics store: three correlated signals
/// sampled at a fixed cadence, plus a fault you already know about.
fn load_my_data() -> (Mts, Mts, Vec<bool>) {
    let train_len = 600;
    let test_len = 400;
    let gen_row = |t: usize| -> [f32; 3] {
        let x = t as f32;
        let load = (x * 0.05).sin() + 0.3 * (x * 0.011).cos();
        [
            50.0 + 20.0 * load,          // requests/sec
            5.0 + 2.0 * load,            // cpu load
            120.0 + 35.0 * load * load,  // p99 latency
        ]
    };
    let mut train = Vec::new();
    for t in 0..train_len {
        train.extend_from_slice(&gen_row(t));
    }
    let mut test = Vec::new();
    let mut labels = vec![false; test_len];
    for (t, label) in labels.iter_mut().enumerate() {
        let mut row = gen_row(train_len + t);
        // A 40-step latency regression that the other metrics don't show:
        // a contextual anomaly breaking the cross-channel relationship.
        if (200..240).contains(&t) {
            row[2] += 180.0;
            *label = true;
        }
        test.extend_from_slice(&row);
    }
    (
        Mts::new(train, train_len, 3),
        Mts::new(test, test_len, 3),
        labels,
    )
}

fn main() {
    let (train, test, labels) = load_my_data();
    println!(
        "custom data: {} train / {} test steps, {} channels",
        train.len(),
        test.len(),
        train.dim()
    );

    // Every detector implements the same trait, so comparing is a loop.
    let mut imdiff = ImDiffusionDetector::new(ImDiffusionConfig::quick(), 7);
    let mut detectors: Vec<(&str, &mut dyn Detector)> = Vec::new();
    let mut iforest = IsolationForest::new(7);
    let mut tranad = TranAd::new(7);
    detectors.push(("ImDiffusion", &mut imdiff));
    detectors.push(("IForest", &mut iforest));
    detectors.push(("TranAD", &mut tranad));

    for (name, det) in detectors {
        det.fit(&train).expect("fit");
        let d = det.detect(&test).expect("detect");
        let (_, m) = best_f1_threshold(&d.scores, &labels);
        println!(
            "{name:<12} best-threshold F1 {:.3} (P {:.3} / R {:.3})",
            m.f1, m.precision, m.recall
        );
    }
}
