//! End-to-end tour of the serving layer: an in-process multi-tenant
//! server driven by a replayed client — steady traffic (verified
//! bit-identical to a local sequential monitor), an overload burst with
//! explicit backpressure, a hot checkpoint reload mid-traffic, and a
//! clean drain. Prints the final health report and the serve.* slice of
//! the observability snapshot. Every stage asserts, so CI runs this as a
//! gate.
//!
//! ```sh
//! cargo run --release --example serve_demo
//! ```

use std::path::PathBuf;
use std::time::{Duration, Instant};

use imdiffusion_repro::core::{ImDiffusionConfig, ImDiffusionDetector, StreamingMonitor};
use imdiffusion_repro::data::replay::{replay_chunks, ReplayConfig};
use imdiffusion_repro::data::synthetic::{generate, Benchmark, SizeProfile};
use imdiffusion_repro::data::Detector;
use imdiffusion_repro::nn::obs;
use imdiffusion_repro::serve::{
    ClientError, ErrorCode, ServeClient, ServeConfig, Server, TenantSpec,
};

fn demo_cfg() -> ImDiffusionConfig {
    ImDiffusionConfig {
        window: 16,
        train_stride: 8,
        hidden: 8,
        heads: 2,
        residual_blocks: 1,
        diffusion_steps: 5,
        train_steps: 10,
        batch_size: 2,
        vote_span: 5,
        vote_every: 2,
        ..ImDiffusionConfig::quick()
    }
}

fn main() {
    obs::set_enabled(true);
    let dir = PathBuf::from("target/serve_demo");
    std::fs::create_dir_all(&dir).expect("create demo dir");

    // --- Fit one detector per tenant and checkpoint them -------------------
    let profile = SizeProfile {
        train_len: 80,
        test_len: 64,
    };
    let mut specs = Vec::new();
    let mut datasets = Vec::new();
    for (id, seed) in [("payments", 4u64), ("telemetry", 5u64)] {
        let ds = generate(Benchmark::Gcp, &profile, seed);
        let mut det = ImDiffusionDetector::new(demo_cfg(), seed);
        det.fit(&ds.train).expect("fit");
        let checkpoint = dir.join(format!("{id}.imdf"));
        det.save(&checkpoint).expect("save checkpoint");
        specs.push(TenantSpec {
            id: id.into(),
            checkpoint,
            cfg: demo_cfg(),
            seed,
            channels: ds.train.dim(),
            hop: 4,
            holdout: None,
            drift_policy: None,
            family: imdiffusion_repro::registry::DetectorKind::ImDiffusion,
            escalation: None,
        });
        datasets.push(ds);
    }

    let server = Server::start(
        ServeConfig {
            shards: 2,
            max_batch: 4,
            max_wait: Duration::from_millis(10),
            max_queue: 8,
            shed_after: Duration::from_secs(30),
            deadline: Duration::from_secs(60),
            reload_poll: Some(Duration::from_millis(40)),
            ..ServeConfig::default()
        },
        specs.clone(),
    )
    .expect("server start");
    println!("serving {} tenants on {}", specs.len(), server.addr());

    // --- Steady traffic: replayed chunks, pipelined in windows of 4 --------
    // The shards coalesce the pipelined requests into ensemble batches;
    // the verdicts must still be bit-identical to a local monitor fed the
    // same chunks one row at a time.
    let replay = ReplayConfig {
        chunk_rows: 5,
        jitter: true,
        gap_rate: 0.1,
        max_gap: 3,
        nan_rate: 0.02,
    };
    for (spec, ds) in specs.iter().zip(&datasets) {
        let chunks = replay_chunks(&ds.test, &replay, spec.seed);
        let mut client = ServeClient::connect(server.addr()).expect("connect");
        client.set_timeout(Some(Duration::from_secs(60))).unwrap();
        let mut wire = Vec::new();
        for window in chunks.chunks(4) {
            for c in window {
                client
                    .send_score(&spec.id, c.gap_before as u32, c.rows.clone())
                    .expect("send");
            }
            for _ in window {
                wire.extend(client.recv_scored().expect("scored").verdicts);
            }
        }

        let det = ImDiffusionDetector::load(
            spec.cfg.clone(),
            spec.seed,
            spec.channels,
            &spec.checkpoint,
        )
        .expect("load");
        let mut local = StreamingMonitor::new(det, spec.channels, spec.hop).expect("monitor");
        let mut expect = Vec::new();
        for c in &chunks {
            if c.gap_before > 0 {
                local.notify_gap(c.gap_before);
            }
            for row in &c.rows {
                expect.extend(local.push(row).expect("push"));
            }
        }
        assert_eq!(wire.len(), expect.len());
        for (w, l) in wire.iter().zip(&expect) {
            assert_eq!(w.index, l.index);
            assert_eq!(w.score.to_bits(), l.score.to_bits());
            assert_eq!(w.anomalous, l.anomalous);
        }
        let anomalies = wire.iter().filter(|v| v.anomalous).count();
        println!(
            "tenant {:<10} {} chunks -> {} verdicts ({} anomalous), bit-identical to \
             sequential scoring",
            spec.id,
            chunks.len(),
            wire.len(),
            anomalies
        );
    }

    // --- Overload burst: explicit backpressure, no silent drops ------------
    let burst = 64;
    let spec = &specs[0];
    let ds = &datasets[0];
    let mut client = ServeClient::connect(server.addr()).expect("connect");
    client.set_timeout(Some(Duration::from_secs(60))).unwrap();
    for i in 0..burst {
        let rows: Vec<Vec<f32>> = (0..4)
            .map(|r| ds.test.row((i * 4 + r) % ds.test.len()).to_vec())
            .collect();
        client.send_score(&spec.id, 0, rows).expect("send burst");
    }
    let (mut scored, mut refused) = (0, 0);
    for _ in 0..burst {
        match client.recv_scored() {
            Ok(_) => scored += 1,
            Err(ClientError::Server {
                code: ErrorCode::Overloaded,
                ..
            }) => refused += 1,
            Err(other) => panic!("burst reply was neither verdicts nor refusal: {other}"),
        }
    }
    assert_eq!(scored + refused, burst);
    assert!(refused > 0, "burst never hit the queue cap");
    client.ping().expect("server survived the burst");
    println!(
        "overload burst: {burst} requests -> {scored} scored, {refused} refused with \
         explicit Overloaded (0 dropped)"
    );

    // --- Hot reload mid-traffic --------------------------------------------
    let mut det2 = ImDiffusionDetector::new(demo_cfg(), 77);
    det2.fit(&datasets[0].train).expect("fit replacement");
    det2.save(&spec.checkpoint).expect("atomic rewrite");
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut requests = 0;
    let generation = loop {
        let rows: Vec<Vec<f32>> = (0..4)
            .map(|r| ds.test.row((requests * 4 + r) % ds.test.len()).to_vec())
            .collect();
        let scored = client.score(&spec.id, 0, rows).expect("request failed mid-reload");
        requests += 1;
        if scored.generation >= 2 {
            break scored.generation;
        }
        assert!(Instant::now() < deadline, "reload did not land in 30s");
    };
    println!(
        "hot reload: new checkpoint picked up after {requests} in-flight requests, \
         now serving generation {generation} (zero failed requests)"
    );

    // --- Health + drain ----------------------------------------------------
    let health = client.health().expect("health");
    println!("health report:");
    for t in &health {
        println!(
            "  {:<10} {:?} gen {} rows_seen {} rejected {} degraded_evals {}",
            t.id, t.state, t.generation, t.rows_seen, t.rows_rejected, t.degraded_evals
        );
    }
    assert!(health.iter().any(|t| t.generation == 2));

    let json = client.obs_snapshot().expect("obs snapshot");
    let snap = obs::Snapshot::from_json(&json).expect("snapshot parses");
    println!("serve.* observability counters:");
    for (name, value) in snap
        .counters
        .iter()
        .filter(|(n, _)| n.starts_with("serve."))
    {
        println!("  {name:<24} {value}");
    }
    assert!(snap.counter("serve.batches").unwrap_or(0) > 0);
    assert!(snap.counter("serve.reloads").unwrap_or(0) >= 1);
    assert!(snap.counter("serve.overloaded").unwrap_or(0) > 0);
    // Micro-batching actually coalesced: fewer ensemble batches than
    // scored requests.
    let batches = snap.counter("serve.batches").unwrap();
    let items = snap.counter("serve.batch_items").unwrap();
    assert!(items > batches, "no coalescing happened ({items} items in {batches} batches)");

    drop(client);
    server.drain();
    println!(
        "drained cleanly; micro-batching packed {items} requests into {batches} ensemble \
         calls ({:.2} per batch)",
        items as f64 / batches as f64
    );
}
