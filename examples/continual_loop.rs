//! The closed continual-learning loop, end to end: a tenant serves a
//! drifting stream, the debounced drift detector latches and degrades
//! its health, a fine-tuning round on recent post-change rows produces a
//! candidate, the labeled validation gate promotes it with zero refused
//! requests, and the tenant recovers — then a corrupt rewrite is refused
//! without touching the adapted generation. Every stage asserts, so CI
//! runs this as a gate (at `IMDIFF_THREADS=1` and default; the episode
//! is bit-deterministic either way).
//!
//! ```sh
//! cargo run --release --example continual_loop
//! ```

use std::path::PathBuf;
use std::time::Duration;

use imdiffusion_repro::core::{
    FineTuneOptions, FineTuner, ImDiffusionConfig, ImDiffusionDetector,
};
use imdiffusion_repro::data::scenario::{drift, ScenarioProfile};
use imdiffusion_repro::data::{Detector, Mts};
use imdiffusion_repro::nn::obs;
use imdiffusion_repro::serve::{
    HoldoutSpec, PromotionVerdict, ServeClient, ServeConfig, Server, TenantSpec,
    WireHealthState,
};

fn loop_cfg() -> ImDiffusionConfig {
    ImDiffusionConfig {
        window: 16,
        train_stride: 8,
        hidden: 8,
        heads: 2,
        residual_blocks: 1,
        diffusion_steps: 5,
        train_steps: 10,
        batch_size: 2,
        vote_span: 5,
        vote_every: 2,
        ..ImDiffusionConfig::quick()
    }
}

fn main() {
    obs::set_enabled(true);
    let dir = PathBuf::from("target/continual_loop");
    std::fs::create_dir_all(&dir).expect("create demo dir");
    let checkpoint = dir.join("sensors.imdf");

    // --- A drifting scenario with ground truth -----------------------------
    let profile = ScenarioProfile::quick();
    let sc = drift(&profile, 11);
    let channels = sc.train.dim();
    let settled = sc.change_start + profile.ramp_len;
    let retrain_at = sc.change_start + 300;
    println!(
        "scenario `{}`: {} training rows, {}-row stream, distribution departs at row {}",
        sc.name,
        sc.train.len(),
        sc.stream.len(),
        sc.change_start
    );

    // --- Fit, checkpoint, and serve with the loop armed --------------------
    let mut stale = ImDiffusionDetector::new(loop_cfg(), 4);
    stale.fit(&sc.train).expect("fit");
    stale.save(&checkpoint).expect("save checkpoint");

    let h0 = settled + 48;
    let server = Server::start(
        ServeConfig {
            shards: 1,
            max_batch: 4,
            max_wait: Duration::from_millis(5),
            max_queue: 1024,
            shed_after: Duration::from_secs(60),
            deadline: Duration::from_secs(120),
            reload_poll: None,
            ..ServeConfig::default()
        },
        vec![TenantSpec {
            id: "sensors".into(),
            checkpoint: checkpoint.clone(),
            cfg: loop_cfg(),
            seed: 4,
            channels,
            hop: 8,
            // The promotion gate replays this labeled post-change slice.
            holdout: Some(HoldoutSpec {
                rows: (h0..h0 + 48).map(|l| sc.stream.row(l).to_vec()).collect(),
                labels: Some(sc.labels[h0..h0 + 48].to_vec()),
                score_tolerance: 0.0,
            }),
            drift_policy: Some((3.0, 2)),
            family: imdiffusion_repro::registry::DetectorKind::ImDiffusion,
            escalation: None,
        }],
    )
    .expect("server start");
    let mut client = ServeClient::connect(server.addr()).expect("connect");
    client.set_timeout(Some(Duration::from_secs(120))).unwrap();

    // Every score call is unwrapped: one refused request fails the run.
    let stream_span = |client: &mut ServeClient, from: usize, to: usize, generation: u64| {
        for start in (from..to).step_by(8) {
            let rows: Vec<Vec<f32>> =
                (start..to.min(start + 8)).map(|l| sc.stream.row(l).to_vec()).collect();
            let scored = client.score("sensors", 0, rows).expect("healthy-path request");
            assert_eq!(scored.generation, generation, "serving gap at row {start}");
        }
    };

    // --- Phase 1: pre-change traffic stays healthy -------------------------
    stream_span(&mut client, 0, sc.change_start, 1);
    let h = &client.health().expect("health")[0];
    assert_eq!(h.state, WireHealthState::Healthy);
    assert!(!h.drifted, "drift latched on the training distribution");
    println!(
        "phase 1: rows 0..{} on generation 1 -> {:?}, drift latch clear",
        sc.change_start, h.state
    );

    // --- Phase 2: the distribution departs, the tenant degrades ------------
    stream_span(&mut client, sc.change_start, retrain_at, 1);
    let h = &client.health().expect("health")[0];
    assert!(h.drifted, "drift never latched after the change");
    assert_eq!(h.state, WireHealthState::Degraded);
    println!(
        "phase 2: rows {}..{} -> {:?}, drift latched ({} debounced trip(s)) — stale \
         model flagged for retraining",
        sc.change_start, retrain_at, h.state, h.drift_trips
    );

    // --- Phase 3: fine-tune on recent post-change rows ---------------------
    let clean: Vec<usize> = (settled..retrain_at).filter(|&l| !sc.labels[l]).collect();
    let mut corpus = Vec::with_capacity(clean.len() * channels);
    for &l in &clean {
        corpus.extend_from_slice(sc.stream.row(l));
    }
    let corpus = Mts::new(corpus, clean.len(), channels);
    let tuner = FineTuner::new(FineTuneOptions {
        steps: 48,
        ema: Some(0.99),
        seed_salt: 1,
        ..FineTuneOptions::default()
    });
    let outcome = tuner.run(&stale, &corpus).expect("fine-tune");
    assert!(outcome.report.applied, "vetoed: {:?}", outcome.report.reason);
    let candidate = outcome.candidate.expect("applied implies candidate");
    println!(
        "phase 3: fine-tuned {} steps on {} verdict-negative rows in {:?} (final loss \
         {:.4}, EMA weights)",
        outcome.report.steps_run,
        corpus.len(),
        outcome.report.elapsed,
        outcome.report.final_loss.unwrap_or(f32::NAN)
    );

    // --- Phase 4: gate, promote, recover -----------------------------------
    candidate.save(&checkpoint).expect("publish candidate");
    let reload = client.reload("sensors").expect("reload");
    assert_eq!(
        reload.verdict,
        PromotionVerdict::Promoted,
        "gate refused the adapted candidate: {}",
        reload.detail
    );
    assert_eq!(reload.generation, 2);
    println!("phase 4: promoted to generation 2 ({})", reload.detail);

    stream_span(&mut client, retrain_at, sc.stream.len(), 2);
    let h = &client.health().expect("health")[0];
    assert!(!h.drifted, "drift still latched after promotion");
    assert_eq!(h.state, WireHealthState::Healthy);
    assert!(h.recoveries >= 1);
    println!(
        "         rows {}..{} on generation 2 -> {:?}, drift latch cleared, {} \
         recovery transition(s), zero refused requests",
        retrain_at,
        sc.stream.len(),
        h.state,
        h.recoveries
    );

    // --- Phase 5: a corrupt candidate cannot regress the tenant ------------
    std::fs::write(&checkpoint, b"IMDF garbage, not a checkpoint").expect("scribble");
    let refused = client.reload("sensors").expect("reload");
    assert_eq!(refused.verdict, PromotionVerdict::RejectedCorrupt);
    assert_eq!(refused.generation, 2);
    println!("phase 5: corrupt rewrite refused, still serving generation 2");

    // --- The loop's observability trail ------------------------------------
    let json = client.obs_snapshot().expect("obs snapshot");
    let snap = obs::Snapshot::from_json(&json).expect("snapshot parses");
    println!("continual-loop counters:");
    for (name, value) in snap.counters.iter().filter(|(n, _)| {
        n.starts_with("serve.promotion.")
            || n.starts_with("train.finetune.")
            || n.starts_with("stream.drift.")
            || n.starts_with("serve.reload")
    }) {
        println!("  {name:<28} {value}");
    }
    assert!(snap.counter("serve.promotion.promoted").unwrap_or(0) >= 1);
    assert!(snap.counter("serve.promotion.rejected_corrupt").unwrap_or(0) >= 1);
    assert!(snap.counter("stream.drift.trips").unwrap_or(0) >= 1);
    // The default post-promotion regression watch (64 verdicts) armed on
    // the swap and confirmed the candidate instead of rolling it back.
    assert!(snap.counter("serve.promotion.confirmed").unwrap_or(0) >= 1);

    drop(client);
    server.drain();
    println!("drained cleanly: drift -> degrade -> retrain -> promote -> recover");
}
