//! Exploring the design space: run every ablation variant of §5.3 on one
//! dataset and compare.
//!
//! ```sh
//! cargo run --release --example ablation
//! ```

use imdiffusion_repro::core::{AblationVariant, ImDiffusionConfig, ImDiffusionDetector};
use imdiffusion_repro::data::synthetic::{generate, Benchmark, SizeProfile};
use imdiffusion_repro::data::Detector;
use imdiffusion_repro::metrics::{average_detection_delay, best_f1_threshold};

fn main() {
    let size = SizeProfile {
        train_len: 600,
        test_len: 600,
    };
    let ds = generate(Benchmark::Psm, &size, 11);
    println!("ablation study on {} ({} channels)\n", ds.name, ds.train.dim());
    println!("{:<26} {:>6} {:>6} {:>8}", "variant", "F1", "ADD", "seconds");

    for variant in AblationVariant::all() {
        let cfg = variant.apply(&ImDiffusionConfig::quick());
        let mut det = ImDiffusionDetector::new(cfg, 11);
        let t0 = std::time::Instant::now();
        det.fit(&ds.train).expect("fit");
        let d = det.detect(&ds.test).expect("detect");
        let secs = t0.elapsed().as_secs_f64();
        let (th, m) = best_f1_threshold(&d.scores, &ds.labels);
        let labels: Vec<bool> = d.scores.iter().map(|&s| s > th).collect();
        let add = average_detection_delay(&labels, &ds.labels);
        println!(
            "{:<26} {:>6.3} {:>6.1} {:>8.1}",
            variant.name(),
            m.f1,
            add,
            secs
        );
    }
}
