//! Chaos drill for the replicated serving tier — the executable proof
//! behind DESIGN.md §"Failure model".
//!
//! Two seeded fault plans run against a real router + replicas over the
//! real wire protocol:
//!
//! 1. **Crash**: snapshot every tenant mid-stream, then kill the replica
//!    owning tenant 0 while traffic is flowing.
//! 2. **Partition**: the same, but the replica stays alive and only the
//!    network drops it — the supervisor must fence it before adopting.
//!
//! Both must end with every affected tenant restored from its IMSM
//! sidecar and its verdict stream **bit-identical** to an uninterrupted
//! monitor replayed from the same snapshot; every request caught by the
//! fault must have surfaced as a typed error, never a hang or a silent
//! drop. The process exits non-zero on any contract violation, which is
//! what CI gates on (at 1 thread and at default threads — the ensemble
//! is bit-reproducible either way).
//!
//! Run with: `cargo run --release --example chaos_failover`

use imdiffusion_repro::serve::chaos::{run_chaos, ChaosPlan, ChaosReport};

fn show(label: &str, report: &ChaosReport) {
    println!("--- {label} ---");
    println!("  chunks scored ok        {}", report.chunks_ok);
    println!("  typed errors (recovered){}", report.typed_errors);
    println!("  redeliveries bit-checked{}", report.redelivered_checked);
    println!("  duplicates deduplicated {}", report.duplicates_deduped);
    println!("  truncations survived    {}", report.truncations_survived);
    println!("  replicas lost           {}", report.replicas_lost);
    println!("  tenants bit-identical   {}", report.tenants_bit_identical);
    for v in &report.violations {
        println!("  VIOLATION: {v}");
    }
}

fn check(label: &str, report: &ChaosReport, failures: &mut u32) {
    show(label, report);
    // The drill is only meaningful if the fault actually bit: a replica
    // must have died and at least one tenant must have been proven
    // bit-identical after adoption.
    if !report.ok() {
        *failures += 1;
    } else if report.replicas_lost == 0 {
        println!("  VIOLATION: no replica was lost — the drill tested nothing");
        *failures += 1;
    } else if report.tenants_bit_identical == 0 {
        println!("  VIOLATION: no tenant was verified bit-identical");
        *failures += 1;
    } else {
        println!("  ok");
    }
}

fn main() {
    let mut failures = 0u32;

    let crash = run_chaos(&ChaosPlan::standard(7)).expect("crash drill setup");
    check("crash failover", &crash, &mut failures);
    if crash.duplicates_deduped == 0 {
        println!("  VIOLATION: duplicate probe did not run");
        failures += 1;
    }
    if crash.truncations_survived == 0 {
        println!("  VIOLATION: truncation probe did not run");
        failures += 1;
    }

    let partition = run_chaos(&ChaosPlan::partition(11)).expect("partition drill setup");
    check("partition failover", &partition, &mut failures);

    if failures > 0 {
        eprintln!("chaos drill FAILED ({failures} scenario(s))");
        std::process::exit(1);
    }
    println!("chaos drill passed: failover is typed, deduplicated and bit-identical");
}
