//! Walkthrough of the built-in observability layer: spans, counters and
//! histograms recorded across training, ensemble inference, the worker
//! pool and the streaming monitor, exported as a JSON snapshot — with the
//! determinism contract demonstrated along the way (enabled vs disabled
//! observability produces bit-identical detector output).
//!
//! ```sh
//! IMDIFF_OBS=1 cargo run --release --example observability
//! ```
//!
//! Without `IMDIFF_OBS=1` every primitive is a no-op: the example then
//! verifies that nothing was recorded and writes no snapshot file.

use imdiffusion_repro::core::{ImDiffusionConfig, ImDiffusionDetector, StreamingMonitor};
use imdiffusion_repro::data::faults::{Fault, FaultInjector};
use imdiffusion_repro::data::synthetic::{generate, Benchmark, SizeProfile};
use imdiffusion_repro::data::Detector;
use imdiffusion_repro::nn::obs;

const SNAPSHOT_PATH: &str = "target/observability.json";

fn main() {
    let enabled = obs::enabled(); // resolves IMDIFF_OBS once
    println!(
        "observability: {} (IMDIFF_OBS={})",
        if enabled { "ENABLED" } else { "disabled" },
        std::env::var("IMDIFF_OBS").unwrap_or_else(|_| "<unset>".into())
    );
    obs::reset();

    // ── Workload: train, detect, stream ─────────────────────────────────
    let size = SizeProfile {
        train_len: 200,
        test_len: 64,
    };
    let ds = generate(Benchmark::Gcp, &size, 7);
    let cfg = ImDiffusionConfig {
        window: 16,
        train_steps: 16,
        ddim_steps: Some(4),
        ..ImDiffusionConfig::quick()
    };
    let mut det = ImDiffusionDetector::new(cfg, 7);
    det.fit(&ds.train).expect("fit"); // trainer.* spans
    let detection = det.detect(&ds.test).expect("detect"); // infer.* spans
    println!(
        "trained {} steps, scored {} points",
        16,
        detection.scores.len()
    );

    // Determinism contract: spans only observe. Score the same series with
    // observability toggled off and on — the bits must match exactly.
    obs::set_enabled(false);
    let reference = det.detect(&ds.test).expect("reference detect");
    obs::set_enabled(enabled);
    let bits = |d: &[f64]| d.iter().map(|s| s.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&detection.scores),
        bits(&reference.scores),
        "observability perturbed detector output"
    );
    println!("determinism: enabled vs disabled scores are bit-identical");

    // Streaming leg: corrupted telemetry through the monitor records the
    // stream.* counters (imputed cells, bridged gap, state transitions)
    // and the faults.* injection counters.
    let clean = ds.test.slice_time(0, 64);
    let faulty = FaultInjector::new(11)
        .with(Fault::NanCells { rate: 0.02 })
        .with(Fault::Gap { start: 30, len: 2 })
        .corrupt(&clean);
    let mut monitor = StreamingMonitor::new(det, clean.dim(), 8).expect("monitor");
    let mut pending = 0usize;
    let mut verdicts = 0usize;
    for row in &faulty.rows {
        let Some(values) = row else {
            pending += 1;
            continue;
        };
        if pending > 0 {
            monitor.notify_gap(pending);
            pending = 0;
        }
        verdicts += monitor.push(values).expect("push").len();
    }
    println!(
        "streamed {} rows ({} verdicts), health {:?}",
        faulty.delivered(),
        verdicts,
        monitor.health().state
    );

    if !enabled {
        // Disabled path: the registry must be empty and no snapshot file
        // may be produced.
        let snap = obs::snapshot();
        assert!(snap.is_empty(), "disabled observability recorded data");
        std::fs::remove_file(SNAPSHOT_PATH).ok(); // drop stale artifacts
        println!("no-op fast path verified: nothing recorded, no file written");
        println!("re-run with IMDIFF_OBS=1 to export a snapshot");
        return;
    }

    // ── Snapshot: export, re-parse, verify round-trip ───────────────────
    let snap = obs::snapshot();
    obs::export(SNAPSHOT_PATH.as_ref()).expect("export snapshot");
    let text = std::fs::read_to_string(SNAPSHOT_PATH).expect("read snapshot back");
    let parsed = obs::Snapshot::from_json(&text).expect("parse snapshot");
    assert_eq!(parsed, snap, "JSON round-trip altered the snapshot");
    println!("exported {SNAPSHOT_PATH} ({} bytes), round-trip OK", text.len());

    for name in [
        "trainer.run",
        "trainer.step",
        "infer.ensemble",
        "infer.denoise_step",
        "pool.worker",
        "nn.matmul",
        "stream.evaluate",
    ] {
        let s = snap
            .span(name)
            .unwrap_or_else(|| panic!("expected span {name} missing"));
        assert!(s.total_ns >= s.self_ns, "span {name}: self time > total");
    }

    println!("\ntop spans by total time:");
    let mut spans = snap.spans.clone();
    spans.sort_by_key(|(_, s)| std::cmp::Reverse(s.total_ns));
    for (name, s) in spans.iter().take(8) {
        println!(
            "  {name:<24} calls {:>6}  total {:>9.3} ms  self {:>9.3} ms",
            s.count,
            s.total_ns as f64 / 1e6,
            s.self_ns as f64 / 1e6
        );
    }
    println!("\ncounters:");
    for (name, v) in &snap.counters {
        println!("  {name:<24} {v}");
    }
}
