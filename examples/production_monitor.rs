//! Production-style latency monitoring (the §6 deployment scenario).
//!
//! Simulates the email-delivery microservice telemetry, trains ImDiffusion
//! as a latency monitor, compares it with the legacy LSTM-AD detector on
//! the same stream, and reports detection delay per incident.
//!
//! ```sh
//! cargo run --release --example production_monitor
//! ```

use std::time::Instant;

use imdiffusion_repro::baselines::LstmAd;
use imdiffusion_repro::core::{
    HealthState, ImDiffusionConfig, ImDiffusionDetector, StreamingMonitor,
};
use imdiffusion_repro::data::faults::{Fault, FaultInjector};
use imdiffusion_repro::data::production::{generate_production_stream, ProductionConfig};
use imdiffusion_repro::data::Detector;
use imdiffusion_repro::metrics::{average_detection_delay, best_f1_threshold};

fn main() {
    let cfg = ProductionConfig {
        services: 10,
        train_len: 900,
        test_len: 900,
        day_len: 300,
        incidents: 6,
    };
    let stream = generate_production_stream(&cfg, 123);
    println!(
        "monitoring {} services over {} samples (30s cadence); {} injected incidents",
        cfg.services,
        cfg.test_len,
        stream.events().len()
    );

    // The new detector.
    let mut imd = ImDiffusionDetector::new(ImDiffusionConfig::quick(), 123);
    imd.fit(&stream.train).expect("imdiffusion fit");
    let t0 = Instant::now();
    let imd_det = imd.detect(&stream.test).expect("imdiffusion detect");
    let imd_secs = t0.elapsed().as_secs_f64();
    let imd_labels = imd_det.labels.clone().expect("native labels");

    // The legacy detector.
    let mut legacy = LstmAd::new(123);
    legacy.fit(&stream.train).expect("legacy fit");
    let legacy_det = legacy.detect(&stream.test).expect("legacy detect");
    let (th, legacy_f1) = best_f1_threshold(&legacy_det.scores, &stream.labels);
    let legacy_labels: Vec<bool> = legacy_det.scores.iter().map(|&s| s > th).collect();

    let (_, imd_f1) = best_f1_threshold(&imd_det.scores, &stream.labels);
    println!(
        "ImDiffusion: best F1 {:.3}, ADD {:.1} steps, throughput {:.1} points/s",
        imd_f1.f1,
        average_detection_delay(&imd_labels, &stream.labels),
        stream.test.len() as f64 / imd_secs
    );
    println!(
        "legacy LSTM-AD: best F1 {:.3}, ADD {:.1} steps",
        legacy_f1.f1,
        average_detection_delay(&legacy_labels, &stream.labels)
    );

    // Per-incident detection timing, the view an on-call engineer cares
    // about: how many samples after incident start was the alarm raised,
    // and which service is the likely culprit (per-channel attribution).
    let trace = imd.last_output().expect("ensemble trace");
    println!("\nper-incident first alarm (ImDiffusion):");
    for (i, (start, end)) in stream.events().iter().enumerate() {
        let first = (*start..*end + (end - start)).find(|&l| {
            l < imd_labels.len() && imd_labels[l]
        });
        match first {
            Some(l) => {
                let culprits = trace.top_channels(l, 2);
                println!(
                    "  incident {i} [{start}..{end}): alarm after {} samples (~{}s); \
                     suspect services: {}",
                    l - start,
                    (l - start) * 30,
                    culprits
                        .iter()
                        .map(|(c, share)| format!("svc-{c} ({:.0}%)", share * 100.0))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
            }
            None => println!("  incident {i} [{start}..{end}): MISSED"),
        }
    }

    // ── Fault-tolerant streaming ─────────────────────────────────────────
    // Real collectors drop rows, ship NaNs and wedge sensors. Re-feed the
    // same telemetry through the streaming monitor with injected faults:
    // NaN cells are imputed natively by the diffusion model, the short
    // collector outage is bridged, and the stuck sensor keeps the monitor
    // in full-inference mode (it is just another pattern to explain).
    println!("\nfault-tolerant streaming replay (injected collector faults):");
    let stream_len = 400.min(stream.test.len());
    let faulty = FaultInjector::new(777)
        .with(Fault::NanCells { rate: 0.02 })
        .with(Fault::Gap {
            start: 150,
            len: 4,
        })
        .with(Fault::StuckChannel {
            channel: 3,
            start: 220,
            len: 40,
        })
        .corrupt(&stream.test.slice_time(0, stream_len));
    println!(
        "  injected: {} NaN cells, {} dropped rows, 1 stuck sensor (svc-3)",
        faulty.nan_cells(),
        stream_len - faulty.delivered(),
    );

    let mut monitor =
        StreamingMonitor::new(imd, stream.test.dim(), 48).expect("fitted monitor");
    let mut pending_gap = 0usize;
    let mut alarms = 0usize;
    let mut degraded_points = 0usize;
    for row in &faulty.rows {
        let Some(values) = row else {
            pending_gap += 1;
            continue;
        };
        if pending_gap > 0 {
            monitor.notify_gap(pending_gap);
            pending_gap = 0;
        }
        for v in monitor.push(values).expect("fault-hardened push") {
            alarms += usize::from(v.anomalous);
            degraded_points += usize::from(v.degraded);
        }
    }
    let health = monitor.health();
    assert_eq!(health.state, HealthState::Healthy, "monitor should recover");
    println!(
        "  health: {:?} | rows seen {} | cells imputed {} | gaps bridged {} \
         ({} rows) | degraded evals {} | recoveries {}",
        health.state,
        health.rows_seen,
        health.cells_imputed,
        health.gaps_bridged,
        health.rows_bridged,
        health.degraded_evals,
        health.recoveries,
    );
    println!("  verdicts: {alarms} alarm points, {degraded_points} from degraded mode");
}
