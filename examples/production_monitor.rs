//! Production-style latency monitoring (the §6 deployment scenario).
//!
//! Simulates the email-delivery microservice telemetry, trains ImDiffusion
//! as a latency monitor, compares it with the legacy LSTM-AD detector on
//! the same stream, and reports detection delay per incident.
//!
//! ```sh
//! cargo run --release --example production_monitor
//! ```

use std::time::Instant;

use imdiffusion_repro::baselines::LstmAd;
use imdiffusion_repro::core::{ImDiffusionConfig, ImDiffusionDetector};
use imdiffusion_repro::data::production::{generate_production_stream, ProductionConfig};
use imdiffusion_repro::data::Detector;
use imdiffusion_repro::metrics::{average_detection_delay, best_f1_threshold};

fn main() {
    let cfg = ProductionConfig {
        services: 10,
        train_len: 900,
        test_len: 900,
        day_len: 300,
        incidents: 6,
    };
    let stream = generate_production_stream(&cfg, 123);
    println!(
        "monitoring {} services over {} samples (30s cadence); {} injected incidents",
        cfg.services,
        cfg.test_len,
        stream.events().len()
    );

    // The new detector.
    let mut imd = ImDiffusionDetector::new(ImDiffusionConfig::quick(), 123);
    imd.fit(&stream.train).expect("imdiffusion fit");
    let t0 = Instant::now();
    let imd_det = imd.detect(&stream.test).expect("imdiffusion detect");
    let imd_secs = t0.elapsed().as_secs_f64();
    let imd_labels = imd_det.labels.clone().expect("native labels");

    // The legacy detector.
    let mut legacy = LstmAd::new(123);
    legacy.fit(&stream.train).expect("legacy fit");
    let legacy_det = legacy.detect(&stream.test).expect("legacy detect");
    let (th, legacy_f1) = best_f1_threshold(&legacy_det.scores, &stream.labels);
    let legacy_labels: Vec<bool> = legacy_det.scores.iter().map(|&s| s > th).collect();

    let (_, imd_f1) = best_f1_threshold(&imd_det.scores, &stream.labels);
    println!(
        "ImDiffusion: best F1 {:.3}, ADD {:.1} steps, throughput {:.1} points/s",
        imd_f1.f1,
        average_detection_delay(&imd_labels, &stream.labels),
        stream.test.len() as f64 / imd_secs
    );
    println!(
        "legacy LSTM-AD: best F1 {:.3}, ADD {:.1} steps",
        legacy_f1.f1,
        average_detection_delay(&legacy_labels, &stream.labels)
    );

    // Per-incident detection timing, the view an on-call engineer cares
    // about: how many samples after incident start was the alarm raised,
    // and which service is the likely culprit (per-channel attribution).
    let trace = imd.last_output().expect("ensemble trace");
    println!("\nper-incident first alarm (ImDiffusion):");
    for (i, (start, end)) in stream.events().iter().enumerate() {
        let first = (*start..*end + (end - start)).find(|&l| {
            l < imd_labels.len() && imd_labels[l]
        });
        match first {
            Some(l) => {
                let culprits = trace.top_channels(l, 2);
                println!(
                    "  incident {i} [{start}..{end}): alarm after {} samples (~{}s); \
                     suspect services: {}",
                    l - start,
                    (l - start) * 30,
                    culprits
                        .iter()
                        .map(|(c, share)| format!("svc-{c} ({:.0}%)", share * 100.0))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
            }
            None => println!("  incident {i} [{start}..{end}): MISSED"),
        }
    }
}
