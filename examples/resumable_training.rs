//! Crash-safe training: interrupt a run mid-flight, then resume it from
//! the persisted `IMTS` checkpoint and verify the result is bit-identical
//! to never having crashed. Also injects a NaN into the training data to
//! show the divergence sentinels rolling back and retrying.
//!
//! ```sh
//! cargo run --release --example resumable_training
//! ```

use imdiffusion_repro::core::{
    train, train_resume, ImDiffusionConfig, ImTransformer, SentinelConfig, Trainer,
    TrainerOptions,
};
use imdiffusion_repro::data::synthetic::{generate, Benchmark, SizeProfile};
use imdiffusion_repro::data::{NormMethod, Normalizer};
use imdiffusion_repro::diffusion::NoiseSchedule;
use imdiffusion_repro::nn::layers::Module;

fn main() {
    let size = SizeProfile {
        train_len: 400,
        test_len: 100,
    };
    let ds = generate(Benchmark::Gcp, &size, 17);
    let cfg = ImDiffusionConfig {
        train_steps: 60,
        ..ImDiffusionConfig::quick()
    };
    let norm = Normalizer::fit(&ds.train, NormMethod::MinMax);
    let train_n = norm.transform(&ds.train);
    let schedule = NoiseSchedule::new(cfg.schedule, cfg.diffusion_steps);
    let (model_seed, train_seed) = (17u64, 99u64);

    // Reference: one uninterrupted run.
    let reference = ImTransformer::new(&cfg, train_n.dim(), model_seed);
    let ref_report = train(&reference, &cfg, &schedule, &train_n, train_seed)
        .expect("reference run");
    println!(
        "uninterrupted: {} steps, final loss {:.5}",
        ref_report.losses.len(),
        ref_report.final_loss()
    );

    // "Crash" at step 37 — the trainer checkpointed every 10 steps, so the
    // IMTS file on disk holds the complete state as of step 30.
    let ckpt = std::env::temp_dir().join("imdiffusion-resumable-example.imts");
    let victim = ImTransformer::new(&cfg, train_n.dim(), model_seed);
    Trainer::new(TrainerOptions {
        checkpoint_every: 10,
        checkpoint_path: Some(ckpt.clone()),
        stop_after: Some(37),
        ..TrainerOptions::default()
    })
    .run(&victim, &cfg, &schedule, &train_n, train_seed)
    .expect("interrupted run");
    println!("simulated crash at step 37 (last checkpoint: step 30)");

    // A new process: fresh model with the same seeds, resume from disk.
    let revived = ImTransformer::new(&cfg, train_n.dim(), model_seed);
    let resumed = train_resume(&revived, &cfg, &schedule, &train_n, train_seed, &ckpt)
        .expect("resumed run");
    println!(
        "resumed from step {:?}: {} steps total, final loss {:.5}",
        resumed.resumed_at,
        resumed.losses.len(),
        resumed.final_loss()
    );
    let identical = resumed.losses == ref_report.losses
        && reference
            .params()
            .iter()
            .zip(revived.params())
            .all(|(a, b)| a.to_vec() == b.to_vec());
    println!(
        "bit-identical to the uninterrupted run: {}",
        if identical { "yes" } else { "NO (bug!)" }
    );
    std::fs::remove_file(&ckpt).ok();

    // Divergence sentinels: poison one training cell with NaN and watch
    // the trainer roll back, back off the learning rate, and recover. A
    // short checkpoint interval keeps each rollback cheap; row 370 falls
    // in a single stride-24 window, so only ~1/15 of samples are doomed,
    // and a widened retry budget rides out unlucky batch streaks.
    let mut poisoned = train_n.clone();
    poisoned.set(370, 0, f32::NAN);
    let model = ImTransformer::new(&cfg, poisoned.dim(), model_seed);
    let report = Trainer::new(TrainerOptions {
        checkpoint_every: 5,
        sentinel: SentinelConfig {
            max_retries: 8,
            ..SentinelConfig::default()
        },
        ..TrainerOptions::default()
    })
    .run(&model, &cfg, &schedule, &poisoned, train_seed)
    .expect("sentinels should recover from one poisoned cell");
    println!(
        "\npoisoned run: {} sentinel incident(s), final loss {:.5}",
        report.incidents.len(),
        report.final_loss()
    );
    for inc in report.incidents.iter().take(5) {
        println!(
            "  step {:>3}  retry {}  lr x{:.4}  {:?}",
            inc.step, inc.retry, inc.lr_scale, inc.kind
        );
    }
}
