//! Property-based tests on the evaluation metrics (proptest).

use imdiffusion_repro::metrics::{
    average_detection_delay, best_f1_threshold, point, pot_threshold, range_auc_pr,
    threshold_at_percentile,
};
use proptest::prelude::*;

fn labels_strategy(n: usize) -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(proptest::bool::weighted(0.15), n)
}

fn scores_strategy(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..10.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn point_adjustment_never_hurts(
        pred in labels_strategy(200),
        truth in labels_strategy(200),
    ) {
        let raw = point::raw_prf1(&pred, &truth);
        let pa = point::pa_prf1(&pred, &truth);
        // PA only flips negatives inside detected true segments to
        // positives, which can only increase recall; F1 must not decrease.
        prop_assert!(pa.recall >= raw.recall - 1e-12);
        prop_assert!(pa.f1 >= raw.f1 - 1e-12);
    }

    #[test]
    fn pa_is_idempotent(
        pred in labels_strategy(150),
        truth in labels_strategy(150),
    ) {
        let once = point::point_adjust(&pred, &truth);
        let twice = point::point_adjust(&once, &truth);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn metric_ranges(
        pred in labels_strategy(150),
        truth in labels_strategy(150),
        scores in scores_strategy(150),
    ) {
        let m = point::pa_prf1(&pred, &truth);
        prop_assert!((0.0..=1.0).contains(&m.precision));
        prop_assert!((0.0..=1.0).contains(&m.recall));
        prop_assert!((0.0..=1.0).contains(&m.f1));
        let auc = range_auc_pr(&scores, &truth, None);
        prop_assert!((0.0..=1.0).contains(&auc));
        let add = average_detection_delay(&pred, &truth);
        prop_assert!(add >= 0.0);
    }

    #[test]
    fn best_threshold_is_at_least_as_good_as_any_percentile(
        scores in scores_strategy(200),
        truth in labels_strategy(200),
        q in 0.0f64..100.0,
    ) {
        let (_, best) = best_f1_threshold(&scores, &truth);
        let th = threshold_at_percentile(&scores, q);
        let pred: Vec<bool> = scores.iter().map(|&s| s > th).collect();
        let m = point::pa_prf1(&pred, &truth);
        prop_assert!(best.f1 >= m.f1 - 1e-9,
            "best {} < percentile {} at q={q}", best.f1, m.f1);
    }

    #[test]
    fn perfect_detector_has_perfect_metrics(truth in labels_strategy(120)) {
        prop_assume!(truth.iter().any(|&b| b));
        let m = point::pa_prf1(&truth, &truth);
        prop_assert_eq!(m.f1, 1.0);
        prop_assert_eq!(average_detection_delay(&truth, &truth), 0.0);
    }

    #[test]
    fn percentile_is_monotone(scores in scores_strategy(100), a in 0.0f64..100.0, b in 0.0f64..100.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(threshold_at_percentile(&scores, lo) <= threshold_at_percentile(&scores, hi));
    }

    #[test]
    fn constant_scores_never_yield_infinite_thresholds(
        v in -5.0f64..5.0,
        truth in labels_strategy(120),
    ) {
        let scores = vec![v; truth.len()];
        let (th, m) = best_f1_threshold(&scores, &truth);
        // A constant series separates nothing: F1 is 0 and the fallback
        // threshold is the (finite) constant itself, never ±∞.
        prop_assert_eq!(m.f1, 0.0);
        prop_assert_eq!(th, v);
        prop_assert_eq!(threshold_at_percentile(&scores, 50.0), v);
        // Zero exceedances above any quantile: POT must decline to fit.
        prop_assert!(pot_threshold(&scores, 98.0, 1e-3).is_none());
    }

    #[test]
    fn all_anomalous_truth_is_fully_detectable(scores in scores_strategy(120)) {
        // At least two distinct scores, so some threshold predicts a
        // non-empty positive set.
        prop_assume!(scores.iter().any(|&s| s != scores[0]));
        let truth = vec![true; scores.len()];
        // One true segment spans the series: any hit point-adjusts to
        // full recall at precision 1.
        let (_, m) = best_f1_threshold(&scores, &truth);
        prop_assert_eq!(m.f1, 1.0);
    }

    #[test]
    fn nan_heavy_series_stay_finite_and_unbiased(
        scores in scores_strategy(150),
        nan_mask in proptest::collection::vec(proptest::bool::weighted(0.4), 150),
        truth in labels_strategy(150),
    ) {
        let mixed: Vec<f64> = scores
            .iter()
            .zip(&nan_mask)
            .map(|(&s, &m)| if m { f64::NAN } else { s })
            .collect();
        prop_assume!(mixed.iter().any(|s| s.is_finite()));
        let (th, _) = best_f1_threshold(&mixed, &truth);
        prop_assert!(th.is_finite());
        prop_assert!(threshold_at_percentile(&mixed, 99.0).is_finite());
        // The POT fit must be bit-identical whether the NaNs are present
        // or pre-filtered (both paths see the same finite sample).
        let finite: Vec<f64> = mixed.iter().copied().filter(|s| s.is_finite()).collect();
        match (pot_threshold(&finite, 90.0, 1e-2), pot_threshold(&mixed, 90.0, 1e-2)) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                prop_assert_eq!(a.threshold.to_bits(), b.threshold.to_bits());
                prop_assert_eq!(a.t0.to_bits(), b.t0.to_bits());
            }
            (a, b) => prop_assert!(false, "NaN pollution changed the POT fit: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn best_f1_invariant_under_affine_rescaling(
        raw in proptest::collection::vec(0usize..1000, 120),
        truth in labels_strategy(120),
        a in 0.5f64..4.0,
        b in -5.0f64..5.0,
    ) {
        // Scores on a 0.01 grid keep inter-score gaps far above f64
        // rounding error, so the scaled comparisons decide identically.
        let scores: Vec<f64> = raw.iter().map(|&r| r as f64 / 100.0).collect();
        let scaled: Vec<f64> = scores.iter().map(|&s| a * s + b).collect();
        let (_, m0) = best_f1_threshold(&scores, &truth);
        let (_, m1) = best_f1_threshold(&scaled, &truth);
        // A positive affine map preserves score order, hence the
        // reachable prediction sets and the optimal F1.
        prop_assert!((m0.f1 - m1.f1).abs() < 1e-12,
            "affine rescaling changed best F1: {} vs {}", m0.f1, m1.f1);
    }

    #[test]
    fn add_bounded_by_detection_window(truth in labels_strategy(200)) {
        // With an all-negative prediction every event is penalized by at
        // most twice its own duration.
        let pred = vec![false; truth.len()];
        let add = average_detection_delay(&pred, &truth);
        let max_dur = {
            let mut max = 0usize;
            let mut cur = 0usize;
            for &l in &truth {
                if l { cur += 1; max = max.max(cur); } else { cur = 0; }
            }
            max
        };
        prop_assert!(add <= 2.0 * max_dur as f64 + 1e-9);
    }
}
