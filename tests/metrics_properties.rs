//! Property-based tests on the evaluation metrics (proptest).

use imdiffusion_repro::metrics::{
    average_detection_delay, best_f1_threshold, point, range_auc_pr, threshold_at_percentile,
};
use proptest::prelude::*;

fn labels_strategy(n: usize) -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(proptest::bool::weighted(0.15), n)
}

fn scores_strategy(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..10.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn point_adjustment_never_hurts(
        pred in labels_strategy(200),
        truth in labels_strategy(200),
    ) {
        let raw = point::raw_prf1(&pred, &truth);
        let pa = point::pa_prf1(&pred, &truth);
        // PA only flips negatives inside detected true segments to
        // positives, which can only increase recall; F1 must not decrease.
        prop_assert!(pa.recall >= raw.recall - 1e-12);
        prop_assert!(pa.f1 >= raw.f1 - 1e-12);
    }

    #[test]
    fn pa_is_idempotent(
        pred in labels_strategy(150),
        truth in labels_strategy(150),
    ) {
        let once = point::point_adjust(&pred, &truth);
        let twice = point::point_adjust(&once, &truth);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn metric_ranges(
        pred in labels_strategy(150),
        truth in labels_strategy(150),
        scores in scores_strategy(150),
    ) {
        let m = point::pa_prf1(&pred, &truth);
        prop_assert!((0.0..=1.0).contains(&m.precision));
        prop_assert!((0.0..=1.0).contains(&m.recall));
        prop_assert!((0.0..=1.0).contains(&m.f1));
        let auc = range_auc_pr(&scores, &truth, None);
        prop_assert!((0.0..=1.0).contains(&auc));
        let add = average_detection_delay(&pred, &truth);
        prop_assert!(add >= 0.0);
    }

    #[test]
    fn best_threshold_is_at_least_as_good_as_any_percentile(
        scores in scores_strategy(200),
        truth in labels_strategy(200),
        q in 50.0f64..100.0,
    ) {
        let (_, best) = best_f1_threshold(&scores, &truth);
        let th = threshold_at_percentile(&scores, q);
        let pred: Vec<bool> = scores.iter().map(|&s| s > th).collect();
        let m = point::pa_prf1(&pred, &truth);
        prop_assert!(best.f1 >= m.f1 - 1e-9,
            "best {} < percentile {} at q={q}", best.f1, m.f1);
    }

    #[test]
    fn perfect_detector_has_perfect_metrics(truth in labels_strategy(120)) {
        prop_assume!(truth.iter().any(|&b| b));
        let m = point::pa_prf1(&truth, &truth);
        prop_assert_eq!(m.f1, 1.0);
        prop_assert_eq!(average_detection_delay(&truth, &truth), 0.0);
    }

    #[test]
    fn percentile_is_monotone(scores in scores_strategy(100), a in 0.0f64..100.0, b in 0.0f64..100.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(threshold_at_percentile(&scores, lo) <= threshold_at_percentile(&scores, hi));
    }

    #[test]
    fn add_bounded_by_detection_window(truth in labels_strategy(200)) {
        // With an all-negative prediction every event is penalized by at
        // most twice its own duration.
        let pred = vec![false; truth.len()];
        let add = average_detection_delay(&pred, &truth);
        let max_dur = {
            let mut max = 0usize;
            let mut cur = 0usize;
            for &l in &truth {
                if l { cur += 1; max = max.max(cur); } else { cur = 0; }
            }
            max
        };
        prop_assert!(add <= 2.0 * max_dur as f64 + 1e-9);
    }
}
