//! End-to-end tests of the serving layer: batched scoring over the wire
//! is bit-identical to a local sequential monitor, hot reloads never fail
//! in-flight traffic or mix generations, overload produces explicit
//! backpressure, and drain flushes every queued request.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use imdiffusion_repro::core::{
    ImDiffusionConfig, ImDiffusionDetector, PointVerdict, StreamingMonitor,
};
use imdiffusion_repro::data::replay::{replay_chunks, ReplayConfig};
use imdiffusion_repro::data::synthetic::{generate, Benchmark, LabeledDataset, SizeProfile};
use imdiffusion_repro::data::Detector;
use imdiffusion_repro::serve::{
    ClientError, ErrorCode, ServeClient, ServeConfig, Server, TenantSpec,
};

fn tiny_cfg() -> ImDiffusionConfig {
    ImDiffusionConfig {
        window: 16,
        train_stride: 8,
        hidden: 8,
        heads: 2,
        residual_blocks: 1,
        diffusion_steps: 5,
        train_steps: 10,
        batch_size: 2,
        vote_span: 5,
        vote_every: 2,
        ..ImDiffusionConfig::quick()
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "imdiff-serve-{}-{name}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

/// Trains a tiny detector on a fresh synthetic dataset and checkpoints it.
fn train_and_save(path: &Path, seed: u64) -> LabeledDataset {
    let ds = generate(
        Benchmark::Gcp,
        &SizeProfile {
            train_len: 80,
            test_len: 64,
        },
        seed,
    );
    let mut det = ImDiffusionDetector::new(tiny_cfg(), seed);
    det.fit(&ds.train).unwrap();
    det.save(path).unwrap();
    ds
}

fn tenant_spec(id: &str, path: &Path, seed: u64, channels: usize, hop: usize) -> TenantSpec {
    TenantSpec {
        id: id.into(),
        checkpoint: path.to_path_buf(),
        cfg: tiny_cfg(),
        seed,
        channels,
        hop,
        holdout: None,
        drift_policy: None,
        family: imdiffusion_repro::registry::DetectorKind::ImDiffusion,
        escalation: None,
    }
}

/// Generous limits: no shedding or timeouts unless a test opts in.
fn lenient_config(shards: usize, max_batch: usize) -> ServeConfig {
    ServeConfig {
        shards,
        max_batch,
        max_wait: Duration::from_millis(20),
        max_queue: 1024,
        shed_after: Duration::from_secs(60),
        deadline: Duration::from_secs(120),
        reload_poll: None,
        ..ServeConfig::default()
    }
}

fn assert_verdicts_bit_identical(wire: &[(u64, f64, u32, bool, bool)], local: &[PointVerdict]) {
    assert_eq!(wire.len(), local.len(), "verdict counts differ");
    for (w, l) in wire.iter().zip(local) {
        assert_eq!(w.0, l.index);
        assert_eq!(
            w.1.to_bits(),
            l.score.to_bits(),
            "score bits differ at index {}",
            l.index
        );
        assert_eq!(w.2, l.votes, "votes differ at index {}", l.index);
        assert_eq!(w.3, l.anomalous, "label differs at index {}", l.index);
        assert_eq!(w.4, l.degraded, "degraded flag differs at index {}", l.index);
    }
}

/// Drives two tenants through a server (pipelined, so the shards batch)
/// and checks every verdict bit-matches a local sequential monitor fed
/// the identical replayed traffic.
fn batched_matches_sequential(shards: usize) {
    let dir = tmp_dir(&format!("bitid-{shards}"));
    let tenants = [("alpha", 4u64), ("beta", 5u64)];
    let mut specs = Vec::new();
    let mut datasets = Vec::new();
    for (id, seed) in tenants {
        let path = dir.join(format!("{id}.imdf"));
        let ds = train_and_save(&path, seed);
        specs.push(tenant_spec(id, &path, seed, ds.train.dim(), 4));
        datasets.push(ds);
    }
    let server = Server::start(lenient_config(shards, 4), specs.clone()).unwrap();

    let replay = ReplayConfig {
        chunk_rows: 5,
        jitter: true,
        gap_rate: 0.1,
        max_gap: 3,
        nan_rate: 0.02,
    };
    for ((id, seed), ds) in tenants.iter().zip(&datasets) {
        let chunks = replay_chunks(&ds.test, &replay, *seed);

        // Wire path: pipeline every chunk, then collect replies in order.
        let mut client = ServeClient::connect(server.addr()).unwrap();
        client.set_timeout(Some(Duration::from_secs(120))).unwrap();
        for c in &chunks {
            client
                .send_score(id, c.gap_before as u32, c.rows.clone())
                .unwrap();
        }
        let mut wire = Vec::new();
        for _ in &chunks {
            let scored = client.recv_scored().expect("no request may fail");
            for v in scored.verdicts {
                wire.push((v.index, v.score, v.votes, v.anomalous, v.degraded));
            }
        }

        // Local sequential path from the same checkpoint.
        let spec = specs.iter().find(|s| s.id == *id).unwrap();
        let det = ImDiffusionDetector::load(
            spec.cfg.clone(),
            spec.seed,
            spec.channels,
            &spec.checkpoint,
        )
        .unwrap();
        let mut monitor = StreamingMonitor::new(det, spec.channels, spec.hop).unwrap();
        let mut local = Vec::new();
        for c in &chunks {
            if c.gap_before > 0 {
                monitor.notify_gap(c.gap_before);
            }
            for row in &c.rows {
                local.extend(monitor.push(row).unwrap());
            }
        }

        assert!(!local.is_empty(), "replay produced no verdicts");
        assert_verdicts_bit_identical(&wire, &local);
    }
    server.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batched_scoring_bit_identical_single_shard() {
    batched_matches_sequential(1);
}

#[test]
fn batched_scoring_bit_identical_multi_shard() {
    batched_matches_sequential(2);
}

#[test]
fn hot_reload_mid_traffic_never_fails_requests_or_mixes_generations() {
    let dir = tmp_dir("reload");
    let path = dir.join("tenant.imdf");
    let ds = train_and_save(&path, 4);
    let channels = ds.train.dim();
    let cfg = ServeConfig {
        reload_poll: Some(Duration::from_millis(40)),
        ..lenient_config(1, 4)
    };
    let server =
        Server::start(cfg, vec![tenant_spec("live", &path, 4, channels, 4)]).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(120))).unwrap();

    // Replacement weights: same architecture, different training run.
    // Written only after some traffic is in flight.
    let mut det2 = ImDiffusionDetector::new(tiny_cfg(), 77);
    det2.fit(&ds.train).unwrap();

    let mut generations = Vec::new();
    let mut row_iter = (0..).map(|i| ds.test.row(i % ds.test.len()).to_vec());
    let mut send_chunk = |client: &mut ServeClient| {
        let rows: Vec<Vec<f32>> = row_iter.by_ref().take(4).collect();
        client.score("live", 0, rows).expect("request failed mid-reload")
    };

    for _ in 0..8 {
        generations.push(send_chunk(&mut client).generation);
    }
    // Atomic rewrite; the watcher must pick it up without disturbing the
    // request stream.
    det2.save(&path).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let scored = send_chunk(&mut client);
        generations.push(scored.generation);
        if scored.generation >= 2 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "reload did not land within 30s; generations: {generations:?}"
        );
    }
    for _ in 0..4 {
        generations.push(send_chunk(&mut client).generation);
    }

    assert_eq!(generations[0], 1);
    assert_eq!(*generations.last().unwrap(), 2);
    assert!(
        generations.windows(2).all(|w| w[0] <= w[1]),
        "generations regressed: {generations:?}"
    );
    let health = client.health().unwrap();
    assert_eq!(health.len(), 1);
    assert_eq!(health[0].generation, 2);
    assert_eq!(health[0].rows_rejected, 0);

    drop(client);
    server.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overload_burst_yields_explicit_backpressure() {
    let dir = tmp_dir("overload");
    let path = dir.join("tenant.imdf");
    let ds = train_and_save(&path, 4);
    let channels = ds.train.dim();
    let cfg = ServeConfig {
        max_queue: 2,
        max_batch: 1,
        max_wait: Duration::ZERO,
        ..lenient_config(1, 1)
    };
    let server =
        Server::start(cfg, vec![tenant_spec("burst", &path, 4, channels, 4)]).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(120))).unwrap();

    // Fire a burst far beyond the queue cap. Every request must receive
    // an explicit reply: verdicts or a typed Overloaded refusal.
    let burst = 40;
    for i in 0..burst {
        let rows: Vec<Vec<f32>> =
            (0..4).map(|r| ds.test.row((i * 4 + r) % ds.test.len()).to_vec()).collect();
        client.send_score("burst", 0, rows).unwrap();
    }
    let mut scored = 0;
    let mut refused = 0;
    for _ in 0..burst {
        match client.recv_scored() {
            Ok(_) => scored += 1,
            Err(ClientError::Server {
                code: ErrorCode::Overloaded,
                ..
            }) => refused += 1,
            Err(other) => panic!("unexpected reply during burst: {other}"),
        }
    }
    assert_eq!(scored + refused, burst);
    assert!(refused > 0, "queue cap 2 never refused during a {burst}-deep burst");
    assert!(scored > 0, "admission control starved the queue entirely");
    // The server survived the burst.
    client.ping().unwrap();

    drop(client);
    server.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shed_requests_get_degraded_verdicts_not_drops() {
    let dir = tmp_dir("shed");
    let path = dir.join("tenant.imdf");
    let ds = train_and_save(&path, 4);
    let channels = ds.train.dim();
    let cfg = ServeConfig {
        shed_after: Duration::ZERO, // any queue wait at all sheds
        ..lenient_config(1, 4)
    };
    let server =
        Server::start(cfg, vec![tenant_spec("shed", &path, 4, channels, 4)]).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(120))).unwrap();

    let rows: Vec<Vec<f32>> = (0..48).map(|l| ds.test.row(l).to_vec()).collect();
    let mut verdicts = Vec::new();
    for chunk in rows.chunks(4) {
        let scored = client.score("shed", 0, chunk.to_vec()).unwrap();
        verdicts.extend(scored.verdicts);
    }
    assert!(!verdicts.is_empty(), "shed traffic produced no verdicts");
    assert!(
        verdicts.iter().all(|v| v.degraded && v.votes == 0),
        "a fully shed stream must be served by the fallback"
    );

    drop(client);
    server.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drain_flushes_queued_work_and_refuses_new() {
    let dir = tmp_dir("drain");
    let path = dir.join("tenant.imdf");
    let ds = train_and_save(&path, 4);
    let channels = ds.train.dim();
    let server = Server::start(
        lenient_config(1, 4),
        vec![tenant_spec("drain", &path, 4, channels, 4)],
    )
    .unwrap();
    let addr = server.addr();
    let mut client = ServeClient::connect(addr).unwrap();
    client.set_timeout(Some(Duration::from_secs(120))).unwrap();

    // Typed refusals for bad requests, before any drain.
    match client.score("nobody", 0, vec![vec![0.0; channels]]) {
        Err(ClientError::Server {
            code: ErrorCode::UnknownTenant,
            ..
        }) => {}
        other => panic!("unknown tenant accepted: {other:?}"),
    }
    match client.score("drain", 0, vec![vec![0.0; channels + 1]]) {
        Err(ClientError::Server {
            code: ErrorCode::BadRequest,
            ..
        }) => {}
        other => panic!("channel mismatch accepted: {other:?}"),
    }

    // Queue work, then drain: every queued request must still be answered
    // with real verdicts.
    let pipelined = 10;
    for i in 0..pipelined {
        let rows: Vec<Vec<f32>> =
            (0..4).map(|r| ds.test.row((i * 4 + r) % ds.test.len()).to_vec()).collect();
        client.send_score("drain", 0, rows).unwrap();
    }
    client.send(&imdiffusion_repro::serve::Request::Drain).unwrap();
    let mut answered = 0;
    for _ in 0..pipelined {
        client.recv_scored().expect("drain dropped queued work");
        answered += 1;
    }
    assert_eq!(answered, pipelined);
    match client.recv() {
        Ok(imdiffusion_repro::serve::Response::Ok) => {}
        other => panic!("drain not acknowledged: {other:?}"),
    }
    drop(client);
    server.drain();

    // The listener is gone (or at best refuses scoring).
    match ServeClient::connect(addr) {
        Err(_) => {}
        Ok(mut late) => {
            let _ = late.set_timeout(Some(Duration::from_secs(5)));
            assert!(
                late.score("drain", 0, vec![vec![0.0; channels]]).is_err(),
                "scoring still possible after drain"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
