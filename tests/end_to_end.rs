//! End-to-end behaviour: the full ImDiffusion pipeline produces useful
//! detections on data it should handle well, and the headline qualitative
//! claims of the paper hold at test scale.

use imdiffusion_repro::core::{ImDiffusionConfig, ImDiffusionDetector};
use imdiffusion_repro::data::synthetic::{generate, Benchmark, SizeProfile};
use imdiffusion_repro::data::Detector;
use imdiffusion_repro::metrics::{best_f1_threshold, point, range_auc_pr};

fn test_cfg() -> ImDiffusionConfig {
    ImDiffusionConfig {
        window: 32,
        train_stride: 16,
        hidden: 16,
        heads: 2,
        residual_blocks: 1,
        diffusion_steps: 12,
        train_steps: 140,
        batch_size: 4,
        vote_span: 8,
        vote_every: 2,
        ..ImDiffusionConfig::quick()
    }
}

#[test]
fn imdiffusion_separates_anomalies_on_smd_like_data() {
    let ds = generate(
        Benchmark::Smd,
        &SizeProfile {
            train_len: 400,
            test_len: 400,
        },
        3,
    );
    let mut det = ImDiffusionDetector::new(test_cfg(), 3);
    det.fit(&ds.train).expect("fit");
    let d = det.detect(&ds.test).expect("detect");

    // Thresholdable signal: best-F1 over the continuous scores must beat a
    // trivial detector by a wide margin.
    let (_, m) = best_f1_threshold(&d.scores, &ds.labels);
    assert!(m.f1 > 0.5, "best F1 only {:.3}", m.f1);

    // Scores on anomalous points are higher on average.
    let (mut anom, mut na, mut norm, mut nn) = (0.0, 0, 0.0, 0);
    for (&s, &l) in d.scores.iter().zip(&ds.labels) {
        if l {
            anom += s;
            na += 1;
        } else {
            norm += s;
            nn += 1;
        }
    }
    assert!(anom / na as f64 > norm / nn as f64);
}

#[test]
fn native_vote_labels_agree_with_scores() {
    let ds = generate(
        Benchmark::Psm,
        &SizeProfile {
            train_len: 300,
            test_len: 200,
        },
        7,
    );
    let mut det = ImDiffusionDetector::new(test_cfg(), 7);
    det.fit(&ds.train).expect("fit");
    let d = det.detect(&ds.test).expect("detect");
    let labels = d.labels.expect("native labels");

    // The native voting should itself be a meaningful detector.
    let m = point::pa_prf1(&labels, &ds.labels);
    assert!(m.f1 > 0.25, "native vote F1 only {:.3}", m.f1);

    // Voted-anomalous points must have higher mean score than the rest.
    let (mut yes, mut ny, mut no, mut nn) = (0.0, 0usize, 0.0, 0usize);
    for (&s, &l) in d.scores.iter().zip(&labels) {
        if l {
            yes += s;
            ny += 1;
        } else {
            no += s;
            nn += 1;
        }
    }
    if ny > 0 && nn > 0 {
        assert!(yes / ny as f64 > no / nn as f64);
    }
}

#[test]
fn ensemble_traces_expose_progressive_refinement() {
    // The paper's Fig. 8 claim: imputation quality improves step by step,
    // so the summed error at the final step is the smallest.
    let ds = generate(
        Benchmark::Gcp,
        &SizeProfile {
            train_len: 300,
            test_len: 150,
        },
        9,
    );
    let mut det = ImDiffusionDetector::new(test_cfg(), 9);
    det.fit(&ds.train).expect("fit");
    let _ = det.detect(&ds.test).expect("detect");
    let out = det.last_output().expect("trace");
    let sums: Vec<f64> = out
        .steps
        .iter()
        .map(|s| s.error.iter().sum::<f64>())
        .collect();
    let last = *sums.last().expect("steps");
    let first = sums[0];
    assert!(
        last < first,
        "final step error {last:.4} not below first vote step {first:.4}"
    );
}

#[test]
fn r_auc_pr_beats_random_scoring() {
    let ds = generate(
        Benchmark::Smd,
        &SizeProfile {
            train_len: 400,
            test_len: 400,
        },
        5,
    );
    let mut det = ImDiffusionDetector::new(test_cfg(), 5);
    det.fit(&ds.train).expect("fit");
    let d = det.detect(&ds.test).expect("detect");
    let auc = range_auc_pr(&d.scores, &ds.labels, None);
    // A random scorer achieves roughly the (buffered) anomaly rate.
    let rate = ds.anomaly_rate();
    assert!(
        auc > rate * 1.5,
        "R-AUC-PR {auc:.3} not above chance level {rate:.3}"
    );
}
