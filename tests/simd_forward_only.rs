//! Contract tests for the SIMD dispatch tiers and tape-free forward-only
//! execution added for the inference fast path.
//!
//! The determinism contract has two halves:
//! - **within a tier**: results are bit-identical run-to-run and at any
//!   thread count, and the tape-free forward path reproduces the graph
//!   path bit-for-bit;
//! - **across tiers**: AVX2+FMA contracts intermediate roundings, so the
//!   SIMD and scalar kernels agree only to an elementwise tolerance.

use imdiffusion_repro::nn::simd::{self, Tier};
use imdiffusion_repro::nn::{pool, rng::seeded, Tensor};
use rand::Rng;

fn filled(len: usize, rng: &mut impl Rng) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// SIMD and scalar matmul agree within a relative elementwise tolerance on
/// random shapes, including shapes that exercise the packed panel edge
/// lanes (n not a multiple of the panel width) and the k remainder.
#[test]
fn simd_matmul_matches_scalar_within_tolerance() {
    if !simd::avx2_available() {
        eprintln!("skipping: AVX2 unavailable");
        return;
    }
    let mut rng = seeded(71);
    for &(m, k, n) in &[
        (1usize, 1usize, 1usize),
        (4, 8, 16),
        (5, 23, 19),
        (17, 64, 33),
        (3, 7, 47),
        (32, 96, 96),
    ] {
        let a = filled(m * k, &mut rng);
        let b = filled(k * n, &mut rng);
        let run = |t: Tier| {
            simd::with_tier(t, || {
                let at = Tensor::from_vec(a.clone(), &[m, k]).unwrap();
                let bt = Tensor::from_vec(b.clone(), &[k, n]).unwrap();
                at.matmul(&bt).to_vec()
            })
        };
        let fast = run(Tier::Avx2Fma);
        let slow = run(Tier::Scalar);
        for (i, (x, y)) in fast.iter().zip(&slow).enumerate() {
            let scale = y.abs().max(1.0);
            assert!(
                (x - y).abs() <= 1e-4 * scale,
                "({m}x{k}x{n}) elem {i}: simd {x} vs scalar {y}"
            );
        }
    }
}

/// IEEE faithfulness: neither tier may skip zero multiplicands, so a NaN
/// paired with a zero weight must poison the output under both tiers.
#[test]
fn zero_times_nan_propagates_under_both_tiers() {
    let mut tiers = vec![Tier::Scalar];
    if simd::avx2_available() {
        tiers.push(Tier::Avx2Fma);
    }
    for t in tiers {
        let y = simd::with_tier(t, || {
            let a = Tensor::from_vec(vec![f32::NAN, 1.0], &[1, 2]).unwrap();
            let b = Tensor::from_vec(vec![0.0, 0.0, 2.0, 2.0], &[2, 2]).unwrap();
            a.matmul(&b).to_vec()
        });
        assert!(
            y.iter().all(|v| v.is_nan()),
            "{}: 0*NaN must propagate, got {y:?}",
            t.name()
        );
    }
}

/// The packed-panel cache is keyed by parameter generation: mutating a
/// cached weight in place must invalidate the stale panels.
#[test]
fn pack_cache_invalidated_on_param_update() {
    if !simd::avx2_available() {
        eprintln!("skipping: AVX2 unavailable");
        return;
    }
    let mut rng = seeded(73);
    let a = filled(6 * 24, &mut rng);
    let b0 = filled(24 * 18, &mut rng);
    let b1 = filled(24 * 18, &mut rng);

    let w = Tensor::param_from_vec(b0, &[24, 18]).unwrap();
    let x = Tensor::from_vec(a.clone(), &[6, 24]).unwrap();
    let _warm = x.matmul(&w).to_vec(); // populates the panel cache
    w.set_data(&b1); // bumps the generation
    let after = x.matmul(&w).to_vec();

    let fresh_w = Tensor::param_from_vec(b1.clone(), &[24, 18]).unwrap();
    let fresh = x.matmul(&fresh_w).to_vec();
    assert_eq!(bits(&after), bits(&fresh), "stale packed panels were reused");
}

/// The SIMD path is run-to-run deterministic at every thread count: the
/// per-element accumulation order is fixed, so only the work partitioning
/// changes with the pool width.
#[test]
fn simd_matmul_thread_and_rerun_invariant() {
    if !simd::avx2_available() {
        eprintln!("skipping: AVX2 unavailable");
        return;
    }
    let mut rng = seeded(79);
    let a = filled(9 * 41, &mut rng);
    let b = filled(41 * 37, &mut rng);
    let run = || {
        simd::with_tier(Tier::Avx2Fma, || {
            let at = Tensor::from_vec(a.clone(), &[9, 41]).unwrap();
            let bt = Tensor::from_vec(b.clone(), &[41, 37]).unwrap();
            at.matmul(&bt).to_vec()
        })
    };
    let reference = bits(&pool::with_threads(1, run));
    for t in [1usize, 2, 4, 8] {
        for rerun in 0..2 {
            let got = bits(&pool::with_threads(t, run));
            assert_eq!(got, reference, "t={t} rerun={rerun} diverged");
        }
    }
}

mod forward_only_inference {
    use imdiffusion_repro::core::{ImDiffusionConfig, ImDiffusionDetector};
    use imdiffusion_repro::data::synthetic::{generate, Benchmark, SizeProfile};
    use imdiffusion_repro::data::Detector;
    use imdiffusion_repro::nn::{pool, with_forward_only};

    fn fitted() -> (
        ImDiffusionDetector,
        imdiffusion_repro::data::synthetic::LabeledDataset,
    ) {
        let size = SizeProfile {
            train_len: 160,
            test_len: 64,
        };
        let ds = generate(Benchmark::Gcp, &size, 3);
        let cfg = ImDiffusionConfig {
            train_steps: 8,
            ddim_steps: Some(4),
            ..ImDiffusionConfig::quick()
        };
        let mut det = ImDiffusionDetector::new(cfg, 9);
        pool::with_threads(1, || det.fit(&ds.train).expect("fit"));
        (det, ds)
    }

    /// Tape-free forward-only execution reproduces the graph path
    /// bit-for-bit on the same dispatch tier, at 1 and N threads: the
    /// arena recycles buffers and skips node construction but never
    /// changes any arithmetic.
    #[test]
    fn forward_only_bit_identical_to_tape_path() {
        let (mut det, ds) = fitted();
        let taped = with_forward_only(false, || {
            pool::with_threads(1, || det.detect(&ds.test).expect("detect"))
        });
        let ref_bits: Vec<u64> = taped.scores.iter().map(|s| s.to_bits()).collect();
        for t in [1usize, 4] {
            let fwd = with_forward_only(true, || {
                pool::with_threads(t, || det.detect(&ds.test).expect("detect"))
            });
            let got: Vec<u64> = fwd.scores.iter().map(|s| s.to_bits()).collect();
            assert_eq!(got, ref_bits, "forward-only scores differ at {t} threads");
            assert_eq!(
                fwd.labels, taped.labels,
                "forward-only verdicts differ at {t} threads"
            );
        }
    }

    /// Arena buffer recycling is invisible: two consecutive forward-only
    /// detections produce identical bits (recycled buffers are re-zeroed,
    /// never reused dirty).
    #[test]
    fn forward_only_rerun_identical() {
        let (mut det, ds) = fitted();
        let one = with_forward_only(true, || det.detect(&ds.test).expect("detect"));
        let two = with_forward_only(true, || det.detect(&ds.test).expect("detect"));
        let a: Vec<u64> = one.scores.iter().map(|s| s.to_bits()).collect();
        let b: Vec<u64> = two.scores.iter().map(|s| s.to_bits()).collect();
        assert_eq!(a, b);
        assert_eq!(one.labels, two.labels);
    }
}
