//! Every ablation variant of §5.3 must run end-to-end and produce sane
//! detections — these paths power Tables 5/6 and Figures 1/2/7/9.

use imdiffusion_repro::core::{AblationVariant, ImDiffusionConfig, ImDiffusionDetector};
use imdiffusion_repro::data::synthetic::{generate, Benchmark, SizeProfile};
use imdiffusion_repro::data::Detector;

fn tiny_cfg() -> ImDiffusionConfig {
    ImDiffusionConfig {
        window: 16,
        train_stride: 8,
        hidden: 8,
        heads: 2,
        residual_blocks: 1,
        diffusion_steps: 6,
        train_steps: 10,
        batch_size: 2,
        vote_span: 6,
        vote_every: 2,
        ..ImDiffusionConfig::quick()
    }
}

#[test]
fn every_variant_runs_end_to_end() {
    let ds = generate(
        Benchmark::Gcp,
        &SizeProfile {
            train_len: 96,
            test_len: 64,
        },
        13,
    );
    for variant in AblationVariant::all() {
        let cfg = variant.apply(&tiny_cfg());
        let mut det = ImDiffusionDetector::new(cfg, 13);
        det.fit(&ds.train)
            .unwrap_or_else(|e| panic!("{} fit: {e}", variant.name()));
        let d = det
            .detect(&ds.test)
            .unwrap_or_else(|e| panic!("{} detect: {e}", variant.name()));
        assert_eq!(d.scores.len(), 64, "{}", variant.name());
        assert!(
            d.scores.iter().all(|s| s.is_finite() && *s >= 0.0),
            "{} scores invalid",
            variant.name()
        );
        let out = det.last_output().expect("trace");
        assert_eq!(out.labels.len(), 64);
        // Non-ensemble votes over exactly one step; ensemble over several.
        if matches!(variant, AblationVariant::NonEnsemble) {
            assert_eq!(out.steps.len(), 1, "{}", variant.name());
        } else {
            assert!(out.steps.len() > 1, "{}", variant.name());
        }
    }
}

#[test]
fn conditional_and_unconditional_models_differ() {
    let ds = generate(
        Benchmark::Psm,
        &SizeProfile {
            train_len: 96,
            test_len: 48,
        },
        17,
    );
    let mut scores = Vec::new();
    for variant in [AblationVariant::Full, AblationVariant::Conditional] {
        let mut det = ImDiffusionDetector::new(variant.apply(&tiny_cfg()), 17);
        det.fit(&ds.train).unwrap();
        scores.push(det.detect(&ds.test).unwrap().scores);
    }
    assert_ne!(scores[0], scores[1], "conditional flag had no effect");
}

#[test]
fn task_modes_produce_distinct_detectors() {
    let ds = generate(
        Benchmark::Smd,
        &SizeProfile {
            train_len: 96,
            test_len: 48,
        },
        19,
    );
    let mut all_scores = Vec::new();
    for variant in [
        AblationVariant::Full,
        AblationVariant::Forecasting,
        AblationVariant::Reconstruction,
    ] {
        let mut det = ImDiffusionDetector::new(variant.apply(&tiny_cfg()), 19);
        det.fit(&ds.train).unwrap();
        all_scores.push(det.detect(&ds.test).unwrap().scores);
    }
    assert_ne!(all_scores[0], all_scores[1]);
    assert_ne!(all_scores[0], all_scores[2]);
    assert_ne!(all_scores[1], all_scores[2]);
}

#[test]
fn ddim_extension_composes_with_variants() {
    let ds = generate(
        Benchmark::Gcp,
        &SizeProfile {
            train_len: 96,
            test_len: 48,
        },
        23,
    );
    let cfg = ImDiffusionConfig {
        ddim_steps: Some(3),
        ..tiny_cfg()
    };
    let mut det = ImDiffusionDetector::new(cfg, 23);
    det.fit(&ds.train).unwrap();
    let d = det.detect(&ds.test).unwrap();
    assert!(d.scores.iter().all(|s| s.is_finite()));
    // The sparse chain must still anchor its final vote step at t = 1.
    assert_eq!(det.last_output().unwrap().steps.last().unwrap().t, 1);
}
