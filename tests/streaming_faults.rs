//! Fault-injection property tests: [`StreamingMonitor::push`] must never
//! panic, and every verdict it emits must carry a finite score — no matter
//! what combination of NaN cells, dropped-row gaps, stuck channels and
//! spikes the (seeded) fault injector throws at it. Failures must surface
//! only as typed [`DetectorError`] values.

use std::path::PathBuf;
use std::sync::OnceLock;

use imdiffusion_repro::core::{ImDiffusionConfig, ImDiffusionDetector, StreamingMonitor};
use imdiffusion_repro::data::faults::{Fault, FaultInjector};
use imdiffusion_repro::data::synthetic::{generate, Benchmark, SizeProfile};
use imdiffusion_repro::data::{Detector, DetectorError, Mts};
use proptest::prelude::*;

const SEED: u64 = 97;
const HOP: usize = 4;

fn tiny_cfg() -> ImDiffusionConfig {
    ImDiffusionConfig {
        window: 16,
        train_stride: 8,
        hidden: 8,
        heads: 2,
        residual_blocks: 1,
        diffusion_steps: 6,
        train_steps: 15,
        batch_size: 2,
        vote_span: 6,
        vote_every: 2,
        ..ImDiffusionConfig::quick()
    }
}

/// Trains one tiny detector and checkpoints it; each property case then
/// restores a fresh monitor from the checkpoint instead of re-training.
fn shared_checkpoint() -> &'static (PathBuf, usize, Mts) {
    static SETUP: OnceLock<(PathBuf, usize, Mts)> = OnceLock::new();
    SETUP.get_or_init(|| {
        let ds = generate(
            Benchmark::Smd,
            &SizeProfile {
                train_len: 96,
                test_len: 64,
            },
            SEED,
        );
        let mut det = ImDiffusionDetector::new(tiny_cfg(), SEED);
        det.fit(&ds.train).expect("fit tiny detector");
        let path = std::env::temp_dir().join(format!(
            "imdiff-streaming-faults-{}.imdf",
            std::process::id()
        ));
        det.save(&path).expect("write shared checkpoint");
        (path, ds.train.dim(), ds.test)
    })
}

fn fresh_monitor() -> StreamingMonitor {
    let (path, channels, _) = shared_checkpoint();
    let det = ImDiffusionDetector::load(tiny_cfg(), SEED, *channels, path)
        .expect("restore shared checkpoint");
    StreamingMonitor::new(det, *channels, HOP).expect("monitor from fitted detector")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn push_never_panics_under_injected_faults(
        fault_seed in 0u64..10_000,
        nan_rate in 0.0f64..0.3,
        gap_start in 0usize..56,
        gap_len in 0usize..20,
        stuck_channel in 0usize..40,
        stuck_start in 0usize..56,
        stuck_len in 0usize..24,
        spike_rate in 0.0f64..0.1,
        spike_magnitude in 0.5f32..25.0,
    ) {
        let (_, _, clean) = shared_checkpoint();
        let stream = FaultInjector::new(fault_seed)
            .with(Fault::NanCells { rate: nan_rate })
            .with(Fault::Gap { start: gap_start, len: gap_len })
            .with(Fault::StuckChannel {
                channel: stuck_channel, // out-of-range channels are ignored
                start: stuck_start,
                len: stuck_len,
            })
            .with(Fault::Spikes { rate: spike_rate, magnitude: spike_magnitude })
            .corrupt(clean);

        let mut mon = fresh_monitor();
        let mut pending_gap = 0usize;
        for row in &stream.rows {
            let Some(values) = row else {
                pending_gap += 1;
                continue;
            };
            if pending_gap > 0 {
                mon.notify_gap(pending_gap);
                pending_gap = 0;
            }
            match mon.push(values) {
                Ok(verdicts) => {
                    for v in verdicts {
                        prop_assert!(
                            v.score.is_finite(),
                            "non-finite score {} at index {} (degraded = {})",
                            v.score,
                            v.index,
                            v.degraded
                        );
                    }
                }
                // The injector only produces finite values and NaNs, and
                // every row has the right width — any error here would be
                // a monitor bug, not a caller mistake.
                Err(e) => prop_assert!(
                    !matches!(
                        e,
                        DetectorError::DimensionMismatch { .. }
                            | DetectorError::NotFitted
                            | DetectorError::NonFiniteInput { .. }
                    ),
                    "unexpected typed error: {e}"
                ),
            }
        }
        prop_assert_eq!(mon.health().rows_rejected, 0);
        prop_assert!(mon.seen() >= stream.delivered() as u64);
    }
}
