//! Soak-shaped regression tests for the readiness-multiplexed serving
//! data plane: frame reassembly across arbitrary read boundaries, the
//! slowloris per-frame progress deadline, and the core scalability
//! claim — server thread count does not grow with connection count.
//!
//! These tests deliberately use a registered-but-inactive tenant
//! (`start_placed` with an all-false mask) so no detector has to be
//! trained: the protocol plumbing under test is identical, and tenant
//! requests draw typed `Unavailable` errors instead of verdicts.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use imdiffusion_repro::core::ImDiffusionConfig;
use imdiffusion_repro::serve::{
    ErrorCode, Request, Response, ServeClient, ServeConfig, Server, TenantSpec,
};

fn spec(id: &str) -> TenantSpec {
    TenantSpec {
        id: id.into(),
        // Never loaded: the tenant is registered but inactive.
        checkpoint: std::env::temp_dir().join("imdiff-soak-never-written.imdf"),
        cfg: ImDiffusionConfig::quick(),
        seed: 1,
        channels: 3,
        hop: 4,
        holdout: None,
        drift_policy: None,
        family: imdiffusion_repro::registry::DetectorKind::ImDiffusion,
        escalation: None,
    }
}

fn start_server(cfg: ServeConfig) -> Server {
    Server::start_placed(cfg, vec![spec("idle-tenant")], &[false]).expect("start server")
}

fn base_cfg() -> ServeConfig {
    ServeConfig {
        reload_poll: None,
        snapshot_every: None,
        ..ServeConfig::default()
    }
}

/// Reads exactly one response frame off a raw stream.
fn read_response(stream: &mut TcpStream) -> Response {
    let mut header = [0u8; 12];
    stream.read_exact(&mut header).expect("response header");
    let len = u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize;
    let mut frame = header.to_vec();
    frame.resize(12 + len, 0);
    stream.read_exact(&mut frame[12..]).expect("response payload");
    Response::from_bytes(&frame).expect("decode response")
}

/// The event loop must reassemble frames no matter how the peer's bytes
/// arrive: dripped one byte at a time, split mid-header, split
/// mid-payload, or many frames coalesced into a single write.
#[test]
fn frames_are_reassembled_across_arbitrary_read_boundaries() {
    let server = start_server(base_cfg());
    let addr = server.addr();

    // One byte at a time, with pauses so the loop really sees partial
    // frames (scan must return "incomplete" at every prefix).
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut bytes = Request::Ping.to_bytes();
    bytes.extend_from_slice(
        &Request::Score {
            tenant: "idle-tenant".into(),
            seq: 1,
            start_row: 0,
            gap_before: 0,
            rows: vec![vec![1.0, 2.0, 3.0]; 2],
        }
        .to_bytes(),
    );
    bytes.extend_from_slice(&Request::Ping.to_bytes());
    for chunk in bytes.chunks(1) {
        stream.write_all(chunk).expect("dripped byte");
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(read_response(&mut stream), Response::Ok);
    match read_response(&mut stream) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Unavailable),
        other => panic!("expected typed Unavailable for inactive tenant, got {other:?}"),
    }
    assert_eq!(read_response(&mut stream), Response::Ok);

    // The opposite extreme: 50 pipelined frames in one write, answered
    // in order.
    let burst: Vec<u8> = (0..50).flat_map(|_| Request::Ping.to_bytes()).collect();
    stream.write_all(&burst).expect("burst");
    for i in 0..50 {
        assert_eq!(read_response(&mut stream), Response::Ok, "burst reply {i}");
    }

    drop(stream);
    server.drain();
}

/// Slowloris defense (the reader-pinning fix): a peer that starts a
/// frame and stalls forever is closed once the per-frame progress
/// deadline lapses — while a healthy connection on the same event loop
/// keeps being served throughout. An idle timeout alone cannot catch
/// this: the stalled peer is never "silent enough" if it drips bytes,
/// and here it holds reader state mid-frame.
#[test]
fn slowloris_peer_is_closed_without_stalling_healthy_peers() {
    let server = start_server(ServeConfig {
        frame_deadline: Some(Duration::from_millis(300)),
        idle_timeout: Some(Duration::from_secs(30)),
        ..base_cfg()
    });
    let addr = server.addr();

    // The attacker: half a frame header, then silence.
    let mut slow = TcpStream::connect(addr).expect("connect slow");
    slow.set_nodelay(true).unwrap();
    slow.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let partial = &Request::Ping.to_bytes()[..6];
    slow.write_all(partial).expect("partial header");

    // The healthy peer keeps pinging while the attacker stalls.
    let mut healthy = ServeClient::connect(addr).expect("connect healthy");
    for _ in 0..10 {
        healthy.ping().expect("healthy ping during stall");
        std::thread::sleep(Duration::from_millis(50));
    }

    // The stalled connection must be closed (EOF), not kept forever.
    let mut buf = [0u8; 16];
    match slow.read(&mut buf) {
        Ok(0) => {}                   // clean EOF — the loop closed us
        Ok(n) => panic!("expected EOF for the stalled peer, got {n} bytes"),
        Err(_) => {}                  // reset also acceptable
    }

    // And the healthy connection is still fine afterwards.
    healthy.ping().expect("healthy ping after slowloris close");
    drop(healthy);
    server.drain();
}

#[cfg(target_os = "linux")]
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("read status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

/// The scalability claim of the event-loop data plane: server-side
/// thread count is a function of shards, not of connection count. The
/// old design burned two threads per connection; 128 idle-but-connected
/// clients would have added 256 threads here.
#[cfg(target_os = "linux")]
#[test]
fn thread_count_does_not_grow_with_connections() {
    let server = start_server(base_cfg());
    let addr = server.addr();

    let baseline = thread_count();
    let mut conns = Vec::new();
    for i in 0..128 {
        let mut c = ServeClient::connect(addr).expect("connect");
        c.ping().unwrap_or_else(|e| panic!("ping on conn {i}: {e}"));
        conns.push(c);
    }
    let with_conns = thread_count();
    assert!(
        with_conns <= baseline + 2,
        "server grew {} threads for 128 connections (baseline {baseline}, now \
         {with_conns}); the data plane must not spawn per-connection threads",
        with_conns - baseline,
    );

    // Still responsive across all of them.
    for c in conns.iter_mut() {
        c.ping().expect("ping over held-open connection");
    }
    drop(conns);
    server.drain();
}
