//! Training-resilience properties: interrupt-and-resume must be
//! bit-identical to an uninterrupted run (at any thread count), divergence
//! sentinels must recover from poisoned batches without letting a NaN
//! reach the optimizer, and any corruption of a persisted checkpoint —
//! IMDF v2 weights, IMSM v2 stream sidecar, or IMTS training state — must
//! surface as a typed error, never as silently altered state.

use std::path::PathBuf;
use std::sync::OnceLock;

use imdiffusion_repro::core::{
    train, train_resume, ImDiffusionConfig, ImDiffusionDetector, ImTransformer,
    StreamingMonitor, Trainer, TrainerOptions,
};
use imdiffusion_repro::data::{Detector, DetectorError, Mts};
use imdiffusion_repro::diffusion::NoiseSchedule;
use imdiffusion_repro::nn::layers::Module;
use imdiffusion_repro::nn::{pool, Tensor};
use proptest::prelude::*;

const MODEL_SEED: u64 = 3;
const TRAIN_SEED: u64 = 11;

fn tiny_cfg() -> ImDiffusionConfig {
    ImDiffusionConfig {
        window: 16,
        train_stride: 8,
        hidden: 8,
        heads: 2,
        residual_blocks: 1,
        diffusion_steps: 6,
        train_steps: 18,
        batch_size: 2,
        vote_span: 6,
        vote_every: 2,
        ..ImDiffusionConfig::quick()
    }
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("imdiff-resilience-{}-{name}", std::process::id()))
}

/// A small deterministic multivariate series: per-channel phase-shifted
/// waves with a mild deterministic jitter. Cheap enough for the 1-core CI
/// runner (the benchmark generators carry 19+ channels; the resilience
/// properties don't depend on channel count).
fn wave(len: usize, k: usize, seed: u64) -> Mts {
    let mut m = Mts::zeros(len, k);
    for t in 0..len {
        for c in 0..k {
            let x = t as f32 * 0.21 + c as f32 * 0.7 + seed as f32;
            let jitter = 0.05 * ((t * 31 + c * 17 + seed as usize) % 13) as f32;
            m.set(t, c, x.sin() + 0.3 * (2.3 * x).cos() + jitter);
        }
    }
    m
}

fn train_series() -> &'static Mts {
    static DATA: OnceLock<Mts> = OnceLock::new();
    DATA.get_or_init(|| wave(96, 4, MODEL_SEED))
}

/// Exact bit patterns of every trainable parameter.
fn param_bits(params: &[Tensor]) -> Vec<Vec<u32>> {
    params
        .iter()
        .map(|p| p.to_vec().iter().map(|x| x.to_bits()).collect())
        .collect()
}

fn loss_bits(losses: &[f32]) -> Vec<u32> {
    losses.iter().map(|x| x.to_bits()).collect()
}

/// Runs training to completion in one go and returns (losses, params).
fn uninterrupted(cfg: &ImDiffusionConfig, every: usize) -> (Vec<u32>, Vec<Vec<u32>>) {
    let schedule = NoiseSchedule::new(cfg.schedule, cfg.diffusion_steps);
    let model = ImTransformer::new(cfg, train_series().dim(), MODEL_SEED);
    let report = Trainer::new(TrainerOptions {
        checkpoint_every: every,
        ..TrainerOptions::default()
    })
    .run(&model, cfg, &schedule, train_series(), TRAIN_SEED)
    .expect("uninterrupted run");
    (loss_bits(&report.losses), param_bits(&model.params()))
}

/// Runs training interrupted at `stop`, then resumes from the on-disk
/// checkpoint with a *fresh* model, and returns (resumed_at, losses,
/// params) of the resumed run.
fn interrupted_then_resumed(
    cfg: &ImDiffusionConfig,
    every: usize,
    stop: usize,
    path: &std::path::Path,
) -> (Option<usize>, Vec<u32>, Vec<Vec<u32>>) {
    let schedule = NoiseSchedule::new(cfg.schedule, cfg.diffusion_steps);
    let k = train_series().dim();

    // "Crash": a run that halts cleanly after `stop` steps, having
    // persisted its state every `every` steps.
    let victim = ImTransformer::new(cfg, k, MODEL_SEED);
    let partial = Trainer::new(TrainerOptions {
        checkpoint_every: every,
        checkpoint_path: Some(path.to_path_buf()),
        stop_after: Some(stop),
        ..TrainerOptions::default()
    })
    .run(&victim, cfg, &schedule, train_series(), TRAIN_SEED)
    .expect("interrupted run");
    assert_eq!(partial.losses.len(), stop);

    // A new process: fresh model, same construction seeds, resume.
    let model = ImTransformer::new(cfg, k, MODEL_SEED);
    let report =
        train_resume(&model, cfg, &schedule, train_series(), TRAIN_SEED, path)
            .expect("resumed run");
    (
        report.resumed_at,
        loss_bits(&report.losses),
        param_bits(&model.params()),
    )
}

/// Headline property: training interrupted at an arbitrary step and
/// resumed from the persisted checkpoint yields bit-identical final
/// parameters and loss curve to the uninterrupted run.
#[test]
fn resume_equivalence_bit_identical() {
    let cfg = tiny_cfg();
    let (ref_losses, ref_params) = uninterrupted(&cfg, 5);
    let path = tmp("resume-eq.imts");
    let (resumed_at, losses, params) = interrupted_then_resumed(&cfg, 5, 13, &path);
    // checkpoint_every = 5, stop at 13 → last persisted anchor is step 10.
    assert_eq!(resumed_at, Some(10));
    assert_eq!(losses, ref_losses, "loss curve diverged after resume");
    assert_eq!(params, ref_params, "final weights diverged after resume");
    std::fs::remove_file(&path).ok();
}

/// The equivalence holds at every thread count, and the trajectories are
/// identical *across* thread counts (the parallel substrate is bit-exact).
#[test]
fn resume_equivalence_thread_invariant() {
    let cfg = tiny_cfg();
    let (ref_losses, ref_params) = pool::with_threads(1, || uninterrupted(&cfg, 4));
    for threads in [2usize, 4] {
        let path = tmp(&format!("resume-t{threads}.imts"));
        let (resumed_at, losses, params) = pool::with_threads(threads, || {
            interrupted_then_resumed(&cfg, 4, 10, &path)
        });
        assert_eq!(resumed_at, Some(8));
        assert_eq!(losses, ref_losses, "{threads} threads: loss curve diverged");
        assert_eq!(params, ref_params, "{threads} threads: weights diverged");
        std::fs::remove_file(&path).ok();
    }
}

/// The detector-level wrapper: `fit_resumable` interrupted mid-run and
/// invoked again completes the fit and detects bitwise identically to a
/// plain uninterrupted `fit`.
#[test]
fn fit_resumable_matches_plain_fit() {
    let train = train_series();
    let test = wave(40, 4, 9);
    let cfg = ImDiffusionConfig {
        train_steps: 15,
        ..tiny_cfg()
    };
    let mut plain = ImDiffusionDetector::new(cfg.clone(), MODEL_SEED);
    plain.fit(train).unwrap();
    let reference = plain.detect(&test).unwrap();

    let path = tmp("fit-resumable.imts");
    let mut det = ImDiffusionDetector::new(cfg.clone(), MODEL_SEED);
    det.fit_resumable(
        train,
        TrainerOptions {
            checkpoint_every: 4,
            checkpoint_path: Some(path.clone()),
            stop_after: Some(9),
            ..TrainerOptions::default()
        },
    )
    .unwrap();
    // Second call finds the IMTS file and resumes instead of restarting.
    det.fit_resumable(
        train,
        TrainerOptions {
            checkpoint_every: 4,
            checkpoint_path: Some(path.clone()),
            ..TrainerOptions::default()
        },
    )
    .unwrap();
    assert_eq!(
        det.last_train_report().and_then(|r| r.resumed_at),
        Some(8)
    );
    let resumed = det.detect(&test).unwrap();
    let score_bits =
        |s: &[f64]| s.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
    assert_eq!(score_bits(&resumed.scores), score_bits(&reference.scores));
    assert_eq!(resumed.labels, reference.labels);
    std::fs::remove_file(&path).ok();
}

/// A NaN cell poisoning a couple of training windows trips the sentinel:
/// the trainer rolls back, retries, records the incidents — and still
/// finishes with finite losses and finite weights, because the poisoned
/// update never reaches the optimizer.
#[test]
fn sentinel_recovers_from_poisoned_window() {
    let cfg = tiny_cfg();
    let mut data = train_series().clone();
    // Row 88 falls in exactly one stride-8 window (offset 80), so roughly
    // one batch in six samples the poisoned window.
    data.set(88, 0, f32::NAN);
    let schedule = NoiseSchedule::new(cfg.schedule, cfg.diffusion_steps);
    let model = ImTransformer::new(&cfg, data.dim(), MODEL_SEED);
    // A tight rollback anchor keeps each retry cheap: with the default
    // cadence (32 > train_steps) every trip would replay from step 0.
    let report = Trainer::new(TrainerOptions {
        checkpoint_every: 2,
        ..TrainerOptions::default()
    })
    .run(&model, &cfg, &schedule, &data, TRAIN_SEED)
    .expect("sentinel must recover, not abort");
    assert!(
        !report.incidents.is_empty(),
        "poisoned window never sampled — incident log empty"
    );
    assert_eq!(report.losses.len(), cfg.train_steps);
    assert!(report.losses.iter().all(|l| l.is_finite()));
    for p in model.params() {
        assert!(p.to_vec().iter().all(|x| x.is_finite()));
    }
}

/// Unrecoverable data (every window NaN): the consecutive-retry budget
/// exhausts and training aborts with a typed error instead of looping or
/// handing NaN weights back.
#[test]
fn all_nan_data_aborts_with_typed_error() {
    let cfg = tiny_cfg();
    let mut data = Mts::zeros(48, 2);
    data.values_mut().fill(f32::NAN);
    let schedule = NoiseSchedule::new(cfg.schedule, cfg.diffusion_steps);
    let model = ImTransformer::new(&cfg, 2, MODEL_SEED);
    let err = train(&model, &cfg, &schedule, &data, TRAIN_SEED).unwrap_err();
    assert!(matches!(err, DetectorError::Internal(_)), "{err}");
    assert!(err.to_string().contains("diverged"));
}

/// Observability enabled vs disabled must leave the training trajectory
/// bit-identical: the spans/histograms never touch the RNG stream, the
/// batch composition, or the update arithmetic. Also checks the snapshot
/// captured the trainer's spans with consistent total/self durations.
#[test]
fn observability_does_not_perturb_training() {
    use imdiffusion_repro::nn::obs;

    let cfg = tiny_cfg();
    obs::set_enabled(false);
    let (ref_losses, ref_params) = uninterrupted(&cfg, 5);

    obs::set_enabled(true);
    obs::reset();
    let (losses, params) = uninterrupted(&cfg, 5);
    let snap = obs::snapshot();
    obs::set_enabled(false);

    assert_eq!(losses, ref_losses, "obs-enabled losses diverged");
    assert_eq!(params, ref_params, "obs-enabled weights diverged");

    let run = snap.span("trainer.run").expect("trainer.run span");
    assert!(run.count >= 1);
    let step = snap.span("trainer.step").expect("trainer.step span");
    assert!(step.count >= cfg.train_steps as u64);
    assert!(step.total_ns >= step.self_ns);
    // `>=`: other tests in this binary may train concurrently while the
    // toggle is on — their steps land in the same registry.
    assert!(snap.counter("trainer.steps").unwrap_or(0) >= cfg.train_steps as u64);
    let loss_hist = snap.histogram("trainer.loss").expect("trainer.loss histogram");
    assert!(loss_hist.count >= cfg.train_steps as u64);
    assert!(snap.histogram("trainer.grad_norm").is_some());
}

// ---------------------------------------------------------------------------
// Corruption properties: no damaged checkpoint ever loads
// ---------------------------------------------------------------------------

/// Pristine bytes of each persisted artifact: IMDF v2 detector weights,
/// IMSM v2 stream sidecar, IMTS training state — plus the channel count.
struct Artifacts {
    imdf: Vec<u8>,
    imsm: Vec<u8>,
    imts: Vec<u8>,
    channels: usize,
}

fn artifacts() -> &'static Artifacts {
    static SETUP: OnceLock<Artifacts> = OnceLock::new();
    SETUP.get_or_init(|| {
        let cfg = corrupt_cfg();
        let train = train_series();
        let test = wave(32, 4, 23);
        let k = train.dim();
        let mut det = ImDiffusionDetector::new(cfg.clone(), MODEL_SEED);
        det.fit(train).unwrap();

        let imdf_path = tmp("pristine.imdf");
        det.save(&imdf_path).unwrap();
        let imdf = std::fs::read(&imdf_path).unwrap();

        let mut monitor = StreamingMonitor::new(det, k, 8).unwrap();
        for l in 0..24 {
            monitor.push(test.row(l)).unwrap();
        }
        monitor.checkpoint(&imdf_path).unwrap();
        let stream_path = {
            let mut os = imdf_path.as_os_str().to_owned();
            os.push(".stream");
            PathBuf::from(os)
        };
        let imsm = std::fs::read(&stream_path).unwrap();
        std::fs::remove_file(&imdf_path).ok();
        std::fs::remove_file(&stream_path).ok();

        let imts_path = tmp("pristine.imts");
        let schedule = NoiseSchedule::new(cfg.schedule, cfg.diffusion_steps);
        let model = ImTransformer::new(&cfg, k, MODEL_SEED);
        Trainer::new(TrainerOptions {
            checkpoint_every: 4,
            checkpoint_path: Some(imts_path.clone()),
            stop_after: Some(9),
            ..TrainerOptions::default()
        })
        .run(&model, &cfg, &schedule, train, TRAIN_SEED)
        .unwrap();
        let imts = std::fs::read(&imts_path).unwrap();
        std::fs::remove_file(&imts_path).ok();

        Artifacts {
            imdf,
            imsm,
            imts,
            channels: k,
        }
    })
}

fn corrupt_cfg() -> ImDiffusionConfig {
    ImDiffusionConfig {
        train_steps: 10,
        ..tiny_cfg()
    }
}

fn flip(bytes: &[u8], idx: usize, bit: u8) -> Vec<u8> {
    let mut out = bytes.to_vec();
    let i = idx % out.len();
    out[i] ^= 1 << bit;
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any single bit flip anywhere in an IMDF v2 weight file makes the
    /// load fail with a typed error — never `Ok` with altered weights.
    #[test]
    fn flipped_byte_never_loads_imdf(idx in 0usize..1 << 20, bit in 0u8..8) {
        let a = artifacts();
        let path = tmp("flip.imdf");
        std::fs::write(&path, flip(&a.imdf, idx, bit)).unwrap();
        let res = ImDiffusionDetector::load(corrupt_cfg(), MODEL_SEED, a.channels, &path);
        let err = match res {
            Ok(_) => {
                std::fs::remove_file(&path).ok();
                return Err(TestCaseError::fail("corrupted IMDF loaded"));
            }
            Err(e) => e,
        };
        std::fs::remove_file(&path).ok();
        prop_assert!(
            matches!(
                err,
                DetectorError::CorruptCheckpoint(_) | DetectorError::InvalidTrainingData(_)
            ),
            "unexpected error class: {err}"
        );
    }

    /// The same property for the IMSM v2 stream sidecar.
    #[test]
    fn flipped_byte_never_restores_imsm(idx in 0usize..1 << 20, bit in 0u8..8) {
        let a = artifacts();
        let path = tmp("flip-stream.imdf");
        let mut os = path.as_os_str().to_owned();
        os.push(".stream");
        let stream = PathBuf::from(os);
        std::fs::write(&path, &a.imdf).unwrap();
        std::fs::write(&stream, flip(&a.imsm, idx, bit)).unwrap();
        let res = StreamingMonitor::restore(corrupt_cfg(), MODEL_SEED, &path);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&stream).ok();
        match res {
            Ok(_) => return Err(TestCaseError::fail("corrupted IMSM restored")),
            Err(e) => prop_assert!(
                matches!(e, DetectorError::CorruptCheckpoint(_)),
                "unexpected error class: {e}"
            ),
        }
    }

    /// And for the IMTS training-state file: a flipped byte can never feed
    /// a resumed run from silently altered optimizer or RNG state.
    #[test]
    fn flipped_byte_never_resumes_imts(idx in 0usize..1 << 20, bit in 0u8..8) {
        let a = artifacts();
        let cfg = corrupt_cfg();
        let path = tmp("flip.imts");
        std::fs::write(&path, flip(&a.imts, idx, bit)).unwrap();
        let schedule = NoiseSchedule::new(cfg.schedule, cfg.diffusion_steps);
        let model = ImTransformer::new(&cfg, a.channels, MODEL_SEED);
        let res =
            train_resume(&model, &cfg, &schedule, train_series(), TRAIN_SEED, &path);
        std::fs::remove_file(&path).ok();
        match res {
            Ok(_) => return Err(TestCaseError::fail("corrupted IMTS resumed")),
            Err(e) => prop_assert!(
                matches!(e, DetectorError::CorruptCheckpoint(_)),
                "unexpected error class: {e}"
            ),
        }
    }

    /// A truncated file of any of the three formats — a torn write that an
    /// atomic rename prevents, simulated directly — is always rejected.
    #[test]
    fn truncated_checkpoints_never_load(cut in 0usize..1 << 20) {
        let a = artifacts();
        let cfg = corrupt_cfg();
        let schedule = NoiseSchedule::new(cfg.schedule, cfg.diffusion_steps);

        let path = tmp("trunc.imdf");
        std::fs::write(&path, &a.imdf[..cut % a.imdf.len()]).unwrap();
        let r = ImDiffusionDetector::load(cfg.clone(), MODEL_SEED, a.channels, &path);
        std::fs::remove_file(&path).ok();
        prop_assert!(
            matches!(r, Err(DetectorError::CorruptCheckpoint(_))),
            "truncated IMDF must be corrupt"
        );

        let base = tmp("trunc-stream.imdf");
        let mut os = base.as_os_str().to_owned();
        os.push(".stream");
        let stream = PathBuf::from(os);
        std::fs::write(&base, &a.imdf).unwrap();
        std::fs::write(&stream, &a.imsm[..cut % a.imsm.len()]).unwrap();
        let r = StreamingMonitor::restore(cfg.clone(), MODEL_SEED, &base);
        std::fs::remove_file(&base).ok();
        std::fs::remove_file(&stream).ok();
        prop_assert!(
            matches!(r, Err(DetectorError::CorruptCheckpoint(_))),
            "truncated IMSM must be corrupt"
        );

        let tpath = tmp("trunc.imts");
        std::fs::write(&tpath, &a.imts[..cut % a.imts.len()]).unwrap();
        let model = ImTransformer::new(&cfg, a.channels, MODEL_SEED);
        let r = train_resume(&model, &cfg, &schedule, train_series(), TRAIN_SEED, &tpath);
        std::fs::remove_file(&tpath).ok();
        prop_assert!(
            matches!(r, Err(DetectorError::CorruptCheckpoint(_))),
            "truncated IMTS must be corrupt"
        );
    }
}
