//! CSV I/O integration: exporting a synthetic dataset and loading it back
//! through the benchmark-layout loader feeds the detectors identically.

use imdiffusion_repro::baselines::IsolationForest;
use imdiffusion_repro::data::io::{load_benchmark_csv, to_csv};
use imdiffusion_repro::data::synthetic::{generate, Benchmark, SizeProfile};
use imdiffusion_repro::data::Detector;

#[test]
fn csv_roundtrip_preserves_detection_results() {
    let ds = generate(
        Benchmark::Gcp,
        &SizeProfile {
            train_len: 200,
            test_len: 120,
        },
        31,
    );

    // Export in the classic benchmark layout.
    let dir = std::env::temp_dir().join(format!("imdiff-csvio-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let train_path = dir.join("train.csv");
    let test_path = dir.join("test.csv");
    std::fs::write(&train_path, to_csv(&ds.train, None)).unwrap();
    std::fs::write(&test_path, to_csv(&ds.test, Some(&ds.labels))).unwrap();

    // Re-load and verify the dataset is identical.
    let loaded = load_benchmark_csv("GCP-file", &train_path, &test_path, false).unwrap();
    assert_eq!(loaded.train.len(), ds.train.len());
    assert_eq!(loaded.train.dim(), ds.train.dim());
    assert_eq!(loaded.labels, ds.labels);
    for (a, b) in loaded.test.values().iter().zip(ds.test.values()) {
        assert!((a - b).abs() < 1e-4);
    }

    // A deterministic detector must score both identically.
    let run = |train: &_, test: &_| {
        let mut det = IsolationForest::new(5);
        det.fit(train).unwrap();
        det.detect(test).unwrap().scores
    };
    let original = run(&ds.train, &ds.test);
    let reloaded = run(&loaded.train, &loaded.test);
    for (a, b) in original.iter().zip(&reloaded) {
        assert!((a - b).abs() < 1e-9);
    }
    std::fs::remove_dir_all(&dir).ok();
}
