//! Property-based tests on the substrates: autodiff gradients, diffusion
//! schedule identities and masking invariants.

use imdiffusion_repro::data::mask::MaskStrategy;
use imdiffusion_repro::diffusion::{BetaSchedule, NoiseSchedule};
use imdiffusion_repro::nn::{backward, rng::seeded, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Gradient check: d(sum(f(x)))/dx matches central differences for a
    /// composite expression through several ops.
    #[test]
    fn composite_gradient_matches_numeric(
        vals in proptest::collection::vec(-2.0f32..2.0, 4),
    ) {
        let f = |v: &[f32], grad: bool| -> (f32, Option<Vec<f32>>) {
            let x = if grad {
                Tensor::param_from_vec(v.to_vec(), &[2, 2]).unwrap()
            } else {
                Tensor::from_vec(v.to_vec(), &[2, 2]).unwrap()
            };
            let w = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.25], &[2, 2]).unwrap();
            // y = sum(sigmoid(x @ w) * x)
            let y = x.matmul(&w).sigmoid().mul(&x).sum_all();
            let out = y.item();
            if grad {
                backward(&y);
                (out, x.grad())
            } else {
                (out, None)
            }
        };
        let (_, g) = f(&vals, true);
        let g = g.expect("gradient");
        let eps = 1e-2f32;
        for i in 0..4 {
            let mut p = vals.clone();
            p[i] += eps;
            let mut m = vals.clone();
            m[i] -= eps;
            let num = (f(&p, false).0 - f(&m, false).0) / (2.0 * eps);
            prop_assert!((g[i] - num).abs() < 0.05,
                "index {i}: analytic {} vs numeric {}", g[i], num);
        }
    }

    /// q_sample is linear: scaling x0 and ε scales the sample.
    #[test]
    fn q_sample_linearity(
        x0 in proptest::collection::vec(-3.0f32..3.0, 6),
        eps in proptest::collection::vec(-3.0f32..3.0, 6),
        t in 1usize..=20,
        c in 0.5f32..2.0,
    ) {
        let ns = NoiseSchedule::new(BetaSchedule::default_for_imputation(), 20);
        let base = ns.q_sample(&x0, &eps, t);
        let x0s: Vec<f32> = x0.iter().map(|v| v * c).collect();
        let epss: Vec<f32> = eps.iter().map(|v| v * c).collect();
        let scaled = ns.q_sample(&x0s, &epss, t);
        for (a, b) in base.iter().zip(&scaled) {
            prop_assert!((a * c - b).abs() < 1e-3);
        }
    }

    /// predict_x0 inverts q_sample exactly (up to float error).
    #[test]
    fn predict_x0_inverts_q_sample(
        x0 in proptest::collection::vec(-3.0f32..3.0, 5),
        eps in proptest::collection::vec(-3.0f32..3.0, 5),
        t in 1usize..=20,
    ) {
        let ns = NoiseSchedule::new(BetaSchedule::default_for_imputation(), 20);
        let xt = ns.q_sample(&x0, &eps, t);
        let rec = ns.predict_x0(&xt, &eps, t);
        for (a, b) in rec.iter().zip(&x0) {
            prop_assert!((a - b).abs() < 2e-2, "{a} vs {b} at t={t}");
        }
    }

    /// Complementary masks partition every cell, for both strategies and
    /// arbitrary window geometry.
    #[test]
    fn mask_pairs_partition(
        len in 4usize..120,
        dim in 1usize..12,
        seed in 0u64..1000,
        random in proptest::bool::ANY,
    ) {
        let strategy = if random {
            MaskStrategy::Random { p: 0.5 }
        } else {
            MaskStrategy::default_grating()
        };
        let [m0, m1] = strategy.masks(&mut seeded(seed), len, dim);
        for l in 0..len {
            for k in 0..dim {
                prop_assert!(m0.observed(l, k) != m1.observed(l, k));
            }
        }
        prop_assert_eq!(m0.masked_count() + m1.masked_count(), len * dim);
    }

    /// Posterior variance is positive and below β_t for t > 1.
    #[test]
    fn posterior_variance_bounds(t in 2usize..=50) {
        let ns = NoiseSchedule::new(BetaSchedule::default_for_imputation(), 50);
        let pv = ns.posterior_variance(t);
        prop_assert!(pv > 0.0);
        prop_assert!(pv <= ns.beta(t) + 1e-9);
    }
}
