//! Property-based tests on the substrates: autodiff gradients, diffusion
//! schedule identities, masking invariants, and bit-exact determinism of
//! the parallel compute substrate across thread counts.

use imdiffusion_repro::data::mask::MaskStrategy;
use imdiffusion_repro::diffusion::{BetaSchedule, NoiseSchedule};
use imdiffusion_repro::nn::{backward, rng::seeded, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Gradient check: d(sum(f(x)))/dx matches central differences for a
    /// composite expression through several ops.
    #[test]
    fn composite_gradient_matches_numeric(
        vals in proptest::collection::vec(-2.0f32..2.0, 4),
    ) {
        let f = |v: &[f32], grad: bool| -> (f32, Option<Vec<f32>>) {
            let x = if grad {
                Tensor::param_from_vec(v.to_vec(), &[2, 2]).unwrap()
            } else {
                Tensor::from_vec(v.to_vec(), &[2, 2]).unwrap()
            };
            let w = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.25], &[2, 2]).unwrap();
            // y = sum(sigmoid(x @ w) * x)
            let y = x.matmul(&w).sigmoid().mul(&x).sum_all();
            let out = y.item();
            if grad {
                backward(&y);
                (out, x.grad())
            } else {
                (out, None)
            }
        };
        let (_, g) = f(&vals, true);
        let g = g.expect("gradient");
        let eps = 1e-2f32;
        for i in 0..4 {
            let mut p = vals.clone();
            p[i] += eps;
            let mut m = vals.clone();
            m[i] -= eps;
            let num = (f(&p, false).0 - f(&m, false).0) / (2.0 * eps);
            prop_assert!((g[i] - num).abs() < 0.05,
                "index {i}: analytic {} vs numeric {}", g[i], num);
        }
    }

    /// q_sample is linear: scaling x0 and ε scales the sample.
    #[test]
    fn q_sample_linearity(
        x0 in proptest::collection::vec(-3.0f32..3.0, 6),
        eps in proptest::collection::vec(-3.0f32..3.0, 6),
        t in 1usize..=20,
        c in 0.5f32..2.0,
    ) {
        let ns = NoiseSchedule::new(BetaSchedule::default_for_imputation(), 20);
        let base = ns.q_sample(&x0, &eps, t);
        let x0s: Vec<f32> = x0.iter().map(|v| v * c).collect();
        let epss: Vec<f32> = eps.iter().map(|v| v * c).collect();
        let scaled = ns.q_sample(&x0s, &epss, t);
        for (a, b) in base.iter().zip(&scaled) {
            prop_assert!((a * c - b).abs() < 1e-3);
        }
    }

    /// predict_x0 inverts q_sample exactly (up to float error).
    #[test]
    fn predict_x0_inverts_q_sample(
        x0 in proptest::collection::vec(-3.0f32..3.0, 5),
        eps in proptest::collection::vec(-3.0f32..3.0, 5),
        t in 1usize..=20,
    ) {
        let ns = NoiseSchedule::new(BetaSchedule::default_for_imputation(), 20);
        let xt = ns.q_sample(&x0, &eps, t);
        let rec = ns.predict_x0(&xt, &eps, t);
        for (a, b) in rec.iter().zip(&x0) {
            prop_assert!((a - b).abs() < 2e-2, "{a} vs {b} at t={t}");
        }
    }

    /// Complementary masks partition every cell, for both strategies and
    /// arbitrary window geometry.
    #[test]
    fn mask_pairs_partition(
        len in 4usize..120,
        dim in 1usize..12,
        seed in 0u64..1000,
        random in proptest::bool::ANY,
    ) {
        let strategy = if random {
            MaskStrategy::Random { p: 0.5 }
        } else {
            MaskStrategy::default_grating()
        };
        let [m0, m1] = strategy.masks(&mut seeded(seed), len, dim);
        for l in 0..len {
            for k in 0..dim {
                prop_assert!(m0.observed(l, k) != m1.observed(l, k));
            }
        }
        prop_assert_eq!(m0.masked_count() + m1.masked_count(), len * dim);
    }

    /// Posterior variance is positive and below β_t for t > 1.
    #[test]
    fn posterior_variance_bounds(t in 2usize..=50) {
        let ns = NoiseSchedule::new(BetaSchedule::default_for_imputation(), 50);
        let pv = ns.posterior_variance(t);
        prop_assert!(pv > 0.0);
        prop_assert!(pv <= ns.beta(t) + 1e-9);
    }
}

/// Bit-exact determinism of the worker pool: every kernel and the full
/// ensemble-inference pipeline must produce identical bits at 1, 2 and N
/// threads. The pool partitions work into runs whose internal arithmetic
/// order never depends on the thread count; these tests are the contract
/// that keeps that property from regressing.
mod thread_determinism {
    use imdiffusion_repro::core::{ImDiffusionConfig, ImDiffusionDetector};
    use imdiffusion_repro::data::synthetic::{generate, Benchmark, SizeProfile};
    use imdiffusion_repro::data::Detector;
    use imdiffusion_repro::nn::layers::MultiHeadAttention;
    use imdiffusion_repro::nn::{backward, pool, rng::seeded, Tensor};
    use rand::Rng;

    const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

    fn filled(len: usize, rng: &mut impl Rng) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    /// Runs `f` once per thread count and asserts every run reproduces the
    /// first run's bit patterns exactly.
    fn assert_invariant(label: &str, f: impl Fn() -> Vec<Vec<f32>>) {
        let reference: Vec<Vec<u32>> = pool::with_threads(THREAD_COUNTS[0], &f)
            .iter()
            .map(|v| bits(v))
            .collect();
        for &t in &THREAD_COUNTS[1..] {
            let got: Vec<Vec<u32>> = pool::with_threads(t, &f).iter().map(|v| bits(v)).collect();
            assert_eq!(got, reference, "{label}: bits differ at {t} threads");
        }
    }

    #[test]
    fn matmul_forward_backward_thread_invariant() {
        let mut rng = seeded(41);
        // Batched lhs with a shared rhs, the transformer's hot shape; odd
        // dims to exercise the blocked kernel's remainder paths.
        let a_data = filled(3 * 17 * 29, &mut rng);
        let b_data = filled(29 * 13, &mut rng);
        assert_invariant("matmul", || {
            let a = Tensor::param_from_vec(a_data.clone(), &[3, 17, 29]).unwrap();
            let b = Tensor::param_from_vec(b_data.clone(), &[29, 13]).unwrap();
            let y = a.matmul(&b);
            backward(&y.square().sum_all());
            vec![y.to_vec(), a.grad().unwrap(), b.grad().unwrap()]
        });
    }

    #[test]
    fn conv_forward_backward_thread_invariant() {
        let mut rng = seeded(43);
        let x_data = filled(2 * 6 * 31, &mut rng);
        let w_data = filled(8 * 6 * 3, &mut rng);
        let b_data = filled(8, &mut rng);
        assert_invariant("conv1d", || {
            let x = Tensor::param_from_vec(x_data.clone(), &[2, 6, 31]).unwrap();
            let w = Tensor::param_from_vec(w_data.clone(), &[8, 6, 3]).unwrap();
            let b = Tensor::param_from_vec(b_data.clone(), &[8]).unwrap();
            let y = x.conv1d(&w, &b, 1);
            backward(&y.square().sum_all());
            vec![y.to_vec(), x.grad().unwrap(), w.grad().unwrap(), b.grad().unwrap()]
        });
    }

    #[test]
    fn attention_forward_backward_thread_invariant() {
        let mut rng = seeded(47);
        let x_data = filled(2 * 12 * 16, &mut rng);
        assert_invariant("attention", || {
            let attn = MultiHeadAttention::new(&mut seeded(5), 16, 4);
            let x = Tensor::param_from_vec(x_data.clone(), &[2, 12, 16]).unwrap();
            let y = attn.forward(&x);
            backward(&y.square().sum_all());
            vec![y.to_vec(), x.grad().unwrap()]
        });
    }

    /// One fitted detector, detection run at 1/2/4 threads: identical
    /// scores (bit-for-bit) and identical verdicts.
    #[test]
    fn ensemble_inference_thread_invariant() {
        let size = SizeProfile {
            train_len: 160,
            test_len: 64,
        };
        let ds = generate(Benchmark::Gcp, &size, 3);
        let cfg = ImDiffusionConfig {
            train_steps: 8,
            ddim_steps: Some(4),
            ..ImDiffusionConfig::quick()
        };
        let mut det = ImDiffusionDetector::new(cfg, 9);
        pool::with_threads(1, || det.fit(&ds.train).expect("fit"));

        let reference = pool::with_threads(1, || det.detect(&ds.test).expect("detect"));
        let ref_bits: Vec<u64> = reference.scores.iter().map(|s| s.to_bits()).collect();
        for t in [2usize, 4] {
            let got = pool::with_threads(t, || det.detect(&ds.test).expect("detect"));
            let got_bits: Vec<u64> = got.scores.iter().map(|s| s.to_bits()).collect();
            assert_eq!(got_bits, ref_bits, "scores differ at {t} threads");
            assert_eq!(got.labels, reference.labels, "labels differ at {t} threads");
        }
    }

    /// Observability may only *observe*: with spans/counters enabled, the
    /// detector must reproduce the disabled-path scores and verdicts
    /// bit-for-bit at every thread count (spans must not perturb RNG
    /// streams or merge order), while the snapshot actually captures the
    /// inference and pool spans.
    #[test]
    fn observability_does_not_perturb_inference() {
        use imdiffusion_repro::nn::obs;

        let size = SizeProfile {
            train_len: 160,
            test_len: 64,
        };
        let ds = generate(Benchmark::Gcp, &size, 3);
        let cfg = ImDiffusionConfig {
            train_steps: 8,
            ddim_steps: Some(4),
            ..ImDiffusionConfig::quick()
        };
        let mut det = ImDiffusionDetector::new(cfg, 9);
        pool::with_threads(1, || det.fit(&ds.train).expect("fit"));

        obs::set_enabled(false);
        let reference = pool::with_threads(1, || det.detect(&ds.test).expect("detect"));
        let ref_bits: Vec<u64> = reference.scores.iter().map(|s| s.to_bits()).collect();

        obs::set_enabled(true);
        obs::reset();
        for t in [1usize, 2, 4] {
            let got = pool::with_threads(t, || det.detect(&ds.test).expect("detect"));
            let got_bits: Vec<u64> = got.scores.iter().map(|s| s.to_bits()).collect();
            assert_eq!(got_bits, ref_bits, "obs-enabled scores differ at {t} threads");
            assert_eq!(
                got.labels, reference.labels,
                "obs-enabled labels differ at {t} threads"
            );
        }
        let snap = obs::snapshot();
        obs::set_enabled(false);
        for name in ["infer.ensemble", "infer.group", "infer.denoise_step", "pool.worker"] {
            let s = snap.span(name).unwrap_or_else(|| panic!("span {name} missing"));
            assert!(s.count > 0, "span {name} recorded no calls");
            assert!(s.total_ns >= s.self_ns, "span {name}: self > total");
        }
        // `>=`: other tests in this binary may also run inference while
        // the toggle is on — their counts land in the same registry.
        assert!(snap.counter("infer.runs").unwrap_or(0) >= 3);
        assert!(snap.counter("nn.matmul.calls").unwrap_or(0) > 0);
    }

    /// `IMDIFF_THREADS=1` and an unset variable resolve to different pool
    /// widths yet must agree bit-for-bit, because every result is
    /// thread-count invariant by construction. (Mutating the process
    /// environment is safe here precisely because no outcome in this
    /// binary depends on the resolved width.)
    #[test]
    fn env_override_does_not_change_results() {
        let mut rng = seeded(53);
        let a = filled(5 * 23, &mut rng);
        let b = filled(23 * 19, &mut rng);
        let run = || {
            let at = Tensor::from_vec(a.clone(), &[5, 23]).unwrap();
            let bt = Tensor::from_vec(b.clone(), &[23, 19]).unwrap();
            at.matmul(&bt).to_vec()
        };
        std::env::remove_var("IMDIFF_THREADS");
        let unset = bits(&run());
        std::env::set_var("IMDIFF_THREADS", "1");
        let pinned = bits(&run());
        std::env::remove_var("IMDIFF_THREADS");
        assert_eq!(pinned, unset);
    }
}
