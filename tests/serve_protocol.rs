//! Property tests on the serving wire protocol: every frame round-trips
//! bit-exactly, and no corruption — truncation, byte flips, arbitrary
//! garbage — ever panics the decoder or slips through undetected.

use imdiffusion_repro::serve::wire::{
    frame_bytes, read_request, read_response, ErrorCode, PromotionVerdict, Request,
    Response, TenantHealth, WireHealthState, WireVerdict, HEADER_LEN, MAGIC, MAX_PAYLOAD,
    PAYLOAD_READ_CHUNK, WIRE_VERSION,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministically builds an arbitrary score request from a seed:
/// random tenant id, gap, row grid, with ~10% NaN (declared-missing)
/// cells and occasional infinities.
fn arb_score(seed: u64) -> Request {
    let mut rng = StdRng::seed_from_u64(seed);
    let id_len = rng.gen_range(0..12usize);
    let tenant: String = (0..id_len)
        .map(|_| char::from(rng.gen_range(b'a'..=b'z')))
        .collect();
    let n_rows = rng.gen_range(0..6usize);
    let channels = rng.gen_range(1..5usize);
    let rows = (0..n_rows)
        .map(|_| {
            (0..channels)
                .map(|_| match rng.gen_range(0..10u32) {
                    0 => f32::NAN,
                    1 => f32::INFINITY,
                    _ => rng.gen_range(-1e3f32..1e3),
                })
                .collect()
        })
        .collect();
    Request::Score {
        tenant,
        // seq 0 (dedup opt-out) and start_row u64::MAX (position-check
        // opt-out) are the sentinel values — keep them common.
        seq: if rng.gen_bool(0.3) { 0 } else { rng.gen() },
        start_row: if rng.gen_bool(0.3) { u64::MAX } else { rng.gen() },
        gap_before: rng.gen_range(0..100),
        rows,
    }
}

/// Deterministically builds an arbitrary response from a seed, cycling
/// through every variant.
fn arb_response(seed: u64) -> Response {
    let mut rng = StdRng::seed_from_u64(seed);
    match rng.gen_range(0..6u32) {
        0 => Response::Verdicts {
            generation: rng.gen(),
            verdicts: (0..rng.gen_range(0..8usize))
                .map(|_| WireVerdict {
                    index: rng.gen(),
                    score: rng.gen_range(-1e6f64..1e6),
                    votes: rng.gen_range(0..10),
                    anomalous: rng.gen(),
                    degraded: rng.gen(),
                })
                .collect(),
        },
        1 => Response::Error {
            code: match rng.gen_range(0..8u32) {
                0 => ErrorCode::Overloaded,
                1 => ErrorCode::Timeout,
                2 => ErrorCode::UnknownTenant,
                3 => ErrorCode::BadRequest,
                4 => ErrorCode::Draining,
                5 => ErrorCode::Unavailable,
                6 => ErrorCode::Interrupted,
                _ => ErrorCode::Internal,
            },
            message: format!("error #{}", rng.gen::<u32>()),
        },
        2 => Response::Health {
            tenants: (0..rng.gen_range(0..4usize))
                .map(|i| TenantHealth {
                    id: format!("tenant-{i}"),
                    state: match rng.gen_range(0..3u32) {
                        0 => WireHealthState::Healthy,
                        1 => WireHealthState::Degraded,
                        _ => WireHealthState::Warming,
                    },
                    generation: rng.gen(),
                    rows_seen: rng.gen(),
                    rows_rejected: rng.gen(),
                    degraded_evals: rng.gen(),
                    rewarms: rng.gen(),
                    recoveries: rng.gen(),
                    queue_depth: rng.gen(),
                    drifted: rng.gen(),
                    drift_trips: rng.gen(),
                    family: format!("family-{}", rng.gen::<u32>() % 16),
                })
                .collect(),
        },
        3 => Response::ObsJson {
            json: format!("{{\"schema\": \"imdiff-obs-v1\", \"n\": {}}}", rng.gen::<u32>()),
        },
        4 => Response::ReloadStatus {
            generation: rng.gen(),
            verdict: match rng.gen_range(0..5u32) {
                0 => PromotionVerdict::NoAttempt,
                1 => PromotionVerdict::Promoted,
                2 => PromotionVerdict::RejectedGate,
                3 => PromotionVerdict::RejectedCorrupt,
                _ => PromotionVerdict::RolledBack,
            },
            detail: format!("verdict #{}", rng.gen::<u32>()),
            family: format!("family-{}", rng.gen::<u32>() % 16),
        },
        _ => Response::Ok,
    }
}

/// Compares two requests treating f32 cells as bit patterns (NaN-safe).
fn score_eq(a: &Request, b: &Request) -> bool {
    match (a, b) {
        (
            Request::Score {
                tenant: ta,
                seq: sa,
                start_row: pa,
                gap_before: ga,
                rows: ra,
            },
            Request::Score {
                tenant: tb,
                seq: sb,
                start_row: pb,
                gap_before: gb,
                rows: rb,
            },
        ) => {
            ta == tb
                && sa == sb
                && pa == pb
                && ga == gb
                && ra.len() == rb.len()
                && ra.iter().zip(rb).all(|(x, y)| {
                    x.len() == y.len()
                        && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
                })
        }
        _ => a == b,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Score requests round-trip bit-exactly, including NaN and ∞ cells.
    #[test]
    fn score_requests_round_trip(seed in 0u64..1_000_000) {
        let req = arb_score(seed);
        let back = Request::from_bytes(&req.to_bytes()).expect("decode own frame");
        prop_assert!(score_eq(&req, &back), "{req:?} != {back:?}");
    }

    /// Every response variant round-trips exactly.
    #[test]
    fn responses_round_trip(seed in 0u64..1_000_000) {
        let resp = arb_response(seed);
        let back = Response::from_bytes(&resp.to_bytes()).expect("decode own frame");
        prop_assert_eq!(back, resp);
    }

    /// Any strict prefix of a valid frame is rejected — the decoder never
    /// panics and never fabricates a message from a partial frame.
    #[test]
    fn truncation_is_always_detected(seed in 0u64..1_000_000, frac in 0.0f64..1.0) {
        let bytes = arb_score(seed).to_bytes();
        let cut = ((bytes.len() as f64) * frac) as usize;
        prop_assert!(cut < bytes.len());
        prop_assert!(Request::from_bytes(&bytes[..cut]).is_err());
        // Stream decode of the same prefix also errs (or reports clean
        // EOF for the zero-byte prefix) instead of blocking or panicking.
        let mut cursor = std::io::Cursor::new(bytes[..cut].to_vec());
        match read_request(&mut cursor) {
            Ok(Some(_)) => prop_assert!(false, "decoded a truncated frame"),
            // Clean EOF is only legitimate at the zero-byte prefix.
            Ok(None) => prop_assert_eq!(cut, 0),
            Err(_) => {}
        }
    }

    /// Flipping any single bit anywhere in a frame is detected: the CRC
    /// covers the version, kind and payload bytes, the magic and length
    /// fields fail their own checks. No flip decodes successfully.
    #[test]
    fn single_bit_flips_are_always_detected(
        seed in 0u64..1_000_000,
        pos_frac in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let req = arb_score(seed);
        let mut bytes = req.to_bytes();
        let pos = ((bytes.len() as f64) * pos_frac) as usize;
        prop_assert!(pos < bytes.len());
        bytes[pos] ^= 1 << bit;
        prop_assert!(
            Request::from_bytes(&bytes).is_err(),
            "flip of bit {bit} at byte {pos} went undetected"
        );
    }

    /// Same guarantee for response frames.
    #[test]
    fn response_bit_flips_are_always_detected(
        seed in 0u64..1_000_000,
        pos_frac in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let mut bytes = arb_response(seed).to_bytes();
        let pos = ((bytes.len() as f64) * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        prop_assert!(Response::from_bytes(&bytes).is_err());
    }

    /// Arbitrary garbage never panics either decoder, whether handed to
    /// the buffer or the stream entry point.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(0u8..=255u8, 0..64usize)) {
        let _ = Request::from_bytes(&bytes);
        let _ = Response::from_bytes(&bytes);
        let mut cursor = std::io::Cursor::new(bytes.clone());
        let _ = read_request(&mut cursor);
        let mut cursor = std::io::Cursor::new(bytes);
        let _ = read_response(&mut cursor);
    }

    /// A garbage frame claiming an arbitrary payload length — up to the
    /// full 16 MiB cap — while delivering only a few bytes must fail as
    /// `Truncated` without ever asking the stream (and hence the
    /// allocator) for more than one bounded chunk beyond what arrived.
    #[test]
    fn huge_claimed_length_never_allocates_up_front(
        claimed in 1u32..=MAX_PAYLOAD,
        delivered in proptest::collection::vec(0u8..=255u8, 0..64usize),
    ) {
        prop_assume!((delivered.len() as u32) < claimed);
        let mut bytes = Vec::with_capacity(HEADER_LEN + delivered.len());
        bytes.extend_from_slice(&MAGIC);
        bytes.push(WIRE_VERSION);
        bytes.push(1); // SCORE
        bytes.extend_from_slice(&claimed.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes()); // CRC never checked: truncation first
        bytes.extend_from_slice(&delivered);

        /// Wraps a cursor and records the largest read() the decoder asks for.
        struct MaxReq<R> {
            inner: R,
            max: usize,
        }
        impl<R: std::io::Read> std::io::Read for MaxReq<R> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                self.max = self.max.max(buf.len());
                self.inner.read(buf)
            }
        }

        let mut r = MaxReq { inner: std::io::Cursor::new(bytes), max: 0 };
        if let Ok(got) = read_request(&mut r) {
            prop_assert!(false, "truncated frame decoded: {got:?}");
        }
        prop_assert!(
            r.max <= PAYLOAD_READ_CHUNK,
            "decoder requested {} bytes at once for a frame claiming {claimed}",
            r.max
        );
    }

    /// Garbage wrapped in a *valid* frame (real magic, version and CRC)
    /// still never panics: payload parsing is bounds-checked even when
    /// the framing layer is satisfied.
    #[test]
    fn framed_garbage_never_panics(
        kind in 0u8..=255u8,
        payload in proptest::collection::vec(0u8..=255u8, 0..48usize),
    ) {
        let frame = frame_bytes(kind, &payload);
        let _ = Request::from_bytes(&frame);
        let _ = Response::from_bytes(&frame);
    }
}
