//! Promotion edge cases for the closed continual-learning loop: corrupt
//! candidates are refused before they reach a shard, validation-gate ties
//! promote, grossly divergent candidates are rejected by the label-free
//! guard-rail, and a post-promotion regression rolls back to the archived
//! incumbent with bit-identical verdicts thereafter.

use std::path::{Path, PathBuf};
use std::time::Duration;

use imdiffusion_repro::core::{ImDiffusionConfig, ImDiffusionDetector, StreamingMonitor};
use imdiffusion_repro::data::synthetic::{generate, Benchmark, LabeledDataset, SizeProfile};
use imdiffusion_repro::data::{Detector, Mts};
use imdiffusion_repro::serve::{
    HoldoutSpec, PromotionVerdict, ServeClient, ServeConfig, Server, TenantSpec,
};

fn tiny_cfg() -> ImDiffusionConfig {
    ImDiffusionConfig {
        window: 16,
        train_stride: 8,
        hidden: 8,
        heads: 2,
        residual_blocks: 1,
        diffusion_steps: 5,
        train_steps: 10,
        batch_size: 2,
        vote_span: 5,
        vote_every: 2,
        ..ImDiffusionConfig::quick()
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "imdiff-promo-{}-{name}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

fn train_and_save(path: &Path, seed: u64) -> (LabeledDataset, ImDiffusionDetector) {
    let ds = generate(
        Benchmark::Gcp,
        &SizeProfile {
            train_len: 80,
            test_len: 64,
        },
        seed,
    );
    let mut det = ImDiffusionDetector::new(tiny_cfg(), seed);
    det.fit(&ds.train).unwrap();
    det.save(path).unwrap();
    (ds, det)
}

fn tenant_spec(id: &str, path: &Path, seed: u64, channels: usize) -> TenantSpec {
    TenantSpec {
        id: id.into(),
        checkpoint: path.to_path_buf(),
        cfg: tiny_cfg(),
        seed,
        channels,
        hop: 2,
        holdout: None,
        drift_policy: None,
        family: imdiffusion_repro::registry::DetectorKind::ImDiffusion,
        escalation: None,
    }
}

/// Manual reloads only, generous limits, sentinel off unless a test
/// opts in.
fn base_config() -> ServeConfig {
    ServeConfig {
        shards: 1,
        max_batch: 4,
        max_wait: Duration::from_millis(5),
        max_queue: 1024,
        shed_after: Duration::from_secs(60),
        deadline: Duration::from_secs(120),
        reload_poll: None,
        regression_watch: 0,
        ..ServeConfig::default()
    }
}

#[test]
fn corrupt_candidate_is_never_promoted_and_serving_continues() {
    let dir = tmp_dir("corrupt");
    let path = dir.join("t.imdf");
    let (ds, _) = train_and_save(&path, 4);
    let channels = ds.train.dim();
    let server =
        Server::start(base_config(), vec![tenant_spec("t", &path, 4, channels)]).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(120))).unwrap();

    // A truncated/garbage rewrite must be refused by CRC/shape validation
    // off the shard thread: typed RejectedCorrupt, generation untouched.
    std::fs::write(&path, b"IMDF garbage that is not a checkpoint").unwrap();
    let outcome = client.reload("t").unwrap();
    assert_eq!(outcome.verdict, PromotionVerdict::RejectedCorrupt);
    assert_eq!(outcome.generation, 1);

    // The incumbent keeps serving without a gap on the old generation.
    let rows: Vec<Vec<f32>> = (0..24).map(|l| ds.test.row(l).to_vec()).collect();
    for chunk in rows.chunks(4) {
        let scored = client.score("t", 0, chunk.to_vec()).unwrap();
        assert_eq!(scored.generation, 1);
    }
    // Repeated attempts stay rejected (and keep answering).
    let again = client.reload("t").unwrap();
    assert_eq!(again.verdict, PromotionVerdict::RejectedCorrupt);

    drop(client);
    server.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn validation_gate_tie_promotes() {
    let dir = tmp_dir("tie");
    let path = dir.join("t.imdf");
    let (ds, det) = train_and_save(&path, 4);
    let channels = ds.train.dim();
    let mut spec = tenant_spec("t", &path, 4, channels);
    // Labeled holdout: three full windows of the test split.
    spec.holdout = Some(HoldoutSpec {
        rows: (0..48).map(|l| ds.test.row(l).to_vec()).collect(),
        labels: Some(ds.labels[..48].to_vec()),
        score_tolerance: 0.0,
    });
    let server = Server::start(base_config(), vec![spec]).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(120))).unwrap();

    // Rewrite the identical weights: F1 ties exactly, and ties must
    // promote (fresh weights also re-baseline the drift reference).
    det.save(&path).unwrap();
    let outcome = client.reload("t").unwrap();
    assert_eq!(
        outcome.verdict,
        PromotionVerdict::Promoted,
        "tie did not promote: {}",
        outcome.detail
    );
    assert_eq!(outcome.generation, 2);
    // The reply arrives only after the swap lands, so the very next
    // scored reply already serves the new generation.
    let scored = client
        .score("t", 0, (0..4).map(|l| ds.test.row(l).to_vec()).collect())
        .unwrap();
    assert_eq!(scored.generation, 2);

    drop(client);
    server.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn divergent_candidate_rejected_by_label_free_guard_rail() {
    let dir = tmp_dir("guard");
    let path = dir.join("t.imdf");
    let (ds, _) = train_and_save(&path, 4);
    let channels = ds.train.dim();
    let mut spec = tenant_spec("t", &path, 4, channels);
    // No labels: the gate bounds the candidate/incumbent score deviation.
    spec.holdout = Some(HoldoutSpec {
        rows: (0..48).map(|l| ds.test.row(l).to_vec()).collect(),
        labels: None,
        score_tolerance: 1e-9,
    });
    let server = Server::start(base_config(), vec![spec]).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(120))).unwrap();

    // A different training run scores the holdout differently — far
    // beyond the (deliberately tiny) tolerance.
    let mut other = ImDiffusionDetector::new(tiny_cfg(), 99);
    other.fit(&ds.train).unwrap();
    other.save(&path).unwrap();
    let outcome = client.reload("t").unwrap();
    assert_eq!(
        outcome.verdict,
        PromotionVerdict::RejectedGate,
        "guard-rail passed a divergent candidate: {}",
        outcome.detail
    );
    assert_eq!(outcome.generation, 1);

    // Serving continues on the incumbent.
    let scored = client
        .score("t", 0, (0..4).map(|l| ds.test.row(l).to_vec()).collect())
        .unwrap();
    assert_eq!(scored.generation, 1);

    drop(client);
    server.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A promoted candidate that regresses in production is rolled back
/// automatically, and every verdict the server emits — before, during and
/// after the episode — bit-matches a local monitor replaying the same
/// rows with the same swap schedule. The sentinel decides on exactly
/// `regression_watch` post-swap verdicts, so the schedule (and therefore
/// the bits) is identical at any thread count.
#[test]
fn regression_rolls_back_to_bit_identical_incumbent() {
    const WATCH: usize = 24;
    let dir = tmp_dir("rollback");
    let path = dir.join("t.imdf");
    let (ds, incumbent) = train_and_save(&path, 4);
    let channels = ds.train.dim();
    let incumbent_spec = incumbent.to_spec().expect("fitted");

    let cfg = ServeConfig {
        regression_watch: WATCH,
        regression_factor: 4.0,
        regression_min_rate: 0.2,
        ..base_config()
    };
    let server =
        Server::start(cfg, vec![tenant_spec("t", &path, 4, channels)]).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(120))).unwrap();

    // The regressed candidate: a different training run on the
    // sign-inverted series — valid weights, so it promotes, but not the
    // incumbent (the mirror must swap to the same bits to stay
    // bit-identical through the episode).
    let shifted = Mts::new(
        ds.train.values().iter().map(|v| -v).collect(),
        ds.train.len(),
        ds.train.dim(),
    );
    let mut junk = ImDiffusionDetector::new(tiny_cfg(), 4);
    junk.fit(&shifted).unwrap();
    let junk_spec = junk.to_spec().expect("fitted");

    // Local mirror fed the identical rows with the identical swap
    // schedule; the synchronous client makes every chunk its own batch.
    let mut mirror =
        StreamingMonitor::new(incumbent_spec.build(), channels, 2).unwrap();

    let mut wire: Vec<(u64, f64, u32, bool, bool)> = Vec::new();
    let mut local = Vec::new();
    let push_rows = |client: &mut ServeClient,
                     mirror: &mut StreamingMonitor,
                     wire: &mut Vec<(u64, f64, u32, bool, bool)>,
                     local: &mut Vec<_>,
                     rows: Vec<Vec<f32>>| {
        let scored = client.score("t", 0, rows.clone()).unwrap();
        for v in scored.verdicts {
            wire.push((v.index, v.score, v.votes, v.anomalous, v.degraded));
        }
        for row in &rows {
            local.extend(mirror.push(row).unwrap());
        }
        scored.generation
    };

    // Pre-swap traffic on healthy rows: the sentinel's baseline is the
    // incumbent's (near-zero) anomaly rate over these verdicts, and the
    // healthy evaluations calibrate the monitor's fallback threshold.
    let mut pos = 0usize;
    for _ in 0..12 {
        let rows: Vec<Vec<f32>> =
            (0..4).map(|r| ds.train.row((pos + r) % ds.train.len()).to_vec()).collect();
        let generation = push_rows(&mut client, &mut mirror, &mut wire, &mut local, rows);
        assert_eq!(generation, 1);
        pos += 4;
    }

    // Promote the junk candidate (no gate on this tenant). The reply
    // arrives after the swap lands, so the mirror swaps at the exact same
    // stream position.
    junk.save(&path).unwrap();
    let outcome = client.reload("t").unwrap();
    assert_eq!(outcome.verdict, PromotionVerdict::Promoted);
    assert_eq!(outcome.generation, 2);
    mirror.swap_detector(junk_spec.build()).unwrap();

    // The regression episode: a sensor outage takes the feed dark — first
    // every channel (all-missing rows score 0.0 on the fallback, so the
    // calibrated threshold stays clean while the rolling window fills
    // with holes), then one survivor channel returns reporting a surge
    // that grows by an order of magnitude per row. By then the window is
    // mostly holes, so the monitor refuses ensemble inference (imputing
    // from almost nothing hallucinates) and judges rows by its z-score
    // fallback — the one path that sees raw magnitudes, since full
    // inference normalizes per window. Every surge score clears the
    // clean threshold, the post-swap anomaly rate dwarfs the baseline,
    // and the sentinel trips. The server decides after the batch in
    // which post-swap verdict #WATCH lands; the mirror applies the same
    // rule at the same chunk boundary, after which traffic returns to
    // healthy rows on the restored incumbent.
    let mut spike = 1.0e3f32;
    let mut outage = 0usize;
    let mut since_swap = 0usize;
    let mut rolled_back = false;
    let mut last_generation = 2;
    for _ in 0..30 {
        let rows: Vec<Vec<f32>> = (0..4)
            .map(|_| {
                if rolled_back {
                    let row = ds.train.row(pos % ds.train.len()).to_vec();
                    pos += 1;
                    row
                } else {
                    let mut row = vec![f32::NAN; channels];
                    if outage >= 8 {
                        row[0] = spike;
                        spike = (spike * 10.0).min(1.0e32);
                    }
                    outage += 1;
                    row
                }
            })
            .collect();
        let before = local.len();
        last_generation =
            push_rows(&mut client, &mut mirror, &mut wire, &mut local, rows);
        if !rolled_back {
            since_swap += local.len() - before;
            if since_swap >= WATCH {
                mirror.swap_detector(incumbent_spec.build()).unwrap();
                rolled_back = true;
            }
        }
    }
    assert!(rolled_back, "watch never filled: {since_swap} verdicts");
    let anomalous = wire.iter().filter(|w| w.3).count();
    let degraded = wire.iter().filter(|w| w.4).count();
    assert_eq!(
        last_generation, 3,
        "regression sentinel did not roll back (still on generation \
         {last_generation}); {anomalous}/{} wire verdicts anomalous, {degraded} degraded",
        wire.len()
    );

    // Every verdict of the whole episode bit-matches the mirror.
    assert_eq!(wire.len(), local.len(), "verdict counts differ");
    for (w, l) in wire.iter().zip(&local) {
        assert_eq!(w.0, l.index);
        assert_eq!(
            w.1.to_bits(),
            l.score.to_bits(),
            "score bits differ at index {} after rollback",
            l.index
        );
        assert_eq!(w.2, l.votes);
        assert_eq!(w.3, l.anomalous);
        assert_eq!(w.4, l.degraded);
    }
    // The health report agrees the archived incumbent is serving.
    let health = client.health().unwrap();
    assert_eq!(health[0].generation, 3);

    drop(client);
    server.drain();
    let _ = std::fs::remove_dir_all(&dir);
}
