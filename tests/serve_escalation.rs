//! End-to-end escalation routing over the wire: a tenant configured with
//! a z-score → IForest → ImDiffusion ladder starts pinned to the cheap
//! rung (initial ladder evaluation — no canonical checkpoint exists), a
//! seeded regime change trips the debounced drift latch and escalates
//! the tenant to the apex, a drain/restart restores the *pinned* rung
//! from the persisted canonical envelope (not a fresh evaluation, which
//! would have picked the cheap rung again), and when the stream reverts
//! the latch clears and the tenant de-escalates. Every verdict of the
//! whole episode bit-matches a local monitor replaying the same rows
//! with the same edge-triggered swap schedule, so the episode is
//! identical at any `IMDIFF_THREADS` setting (CI runs this test at 1
//! and default).

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use imdiffusion_repro::core::{ImDiffusionConfig, StreamingMonitor};
use imdiffusion_repro::data::scenario::{drift, ScenarioProfile};
use imdiffusion_repro::data::Detector;
use imdiffusion_repro::nn::obs;
use imdiffusion_repro::registry::{AnyDetector, DetectorKind};
use imdiffusion_repro::serve::{
    EscalationSpec, RungSpec, ServeClient, ServeConfig, Server, TenantHealth, TenantSpec,
};

fn tiny_cfg() -> ImDiffusionConfig {
    ImDiffusionConfig {
        window: 16,
        train_stride: 8,
        hidden: 8,
        heads: 2,
        residual_blocks: 1,
        diffusion_steps: 5,
        train_steps: 10,
        batch_size: 2,
        vote_span: 5,
        vote_every: 2,
        ..ImDiffusionConfig::quick()
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "imdiff-escalate-{}-{name}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

const SEED: u64 = 11;
const HOP: usize = 8;

/// The mirror's copy of the server's edge-triggered escalation router:
/// a drift trip pins the apex, a clear re-evaluates the ladder — and
/// with `f1_tolerance = 1.0` the evaluation deterministically picks the
/// cheapest rung, so the mirror swaps the z-score envelope back in.
/// `swap_detector` resets the latch against the new rung's reference,
/// so the edge state is resynced from the monitor after every swap,
/// exactly as the server does.
fn mirror_route(
    mirror: &mut StreamingMonitor<AnyDetector>,
    was: &mut bool,
    cfg: &ImDiffusionConfig,
    channels: usize,
    base_path: &Path,
    apex_path: &Path,
) {
    let now = mirror.drift_status().drifted;
    let prev = *was;
    *was = now;
    if prev == now {
        return;
    }
    let serving = mirror.detector().kind();
    let replacement = if now {
        if serving == DetectorKind::ImDiffusion {
            return;
        }
        apex_path
    } else {
        if serving == DetectorKind::ZScore {
            return;
        }
        base_path
    };
    let det = AnyDetector::load(cfg, SEED, channels, replacement).expect("load rung envelope");
    mirror.swap_detector(det).expect("mirror swap");
    *was = mirror.drift_status().drifted;
}

fn health_of(client: &mut ServeClient, tenant: &str) -> TenantHealth {
    client
        .health()
        .unwrap()
        .into_iter()
        .find(|t| t.id == tenant)
        .expect("tenant in health report")
}

/// Polls until the tenant reports the wanted family (shard activation is
/// asynchronous after `Server::start`).
fn wait_for_family(client: &mut ServeClient, tenant: &str, want: &str) -> TenantHealth {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if let Ok(report) = client.health() {
            if let Some(t) = report.into_iter().find(|t| t.id == tenant) {
                if t.family == want {
                    return t;
                }
            }
        }
        assert!(
            Instant::now() < deadline,
            "tenant {tenant} never reported family {want}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn ladder_escalates_on_drift_and_restores_pin_across_restart() {
    let was_enabled = obs::enabled();
    obs::set_enabled(true);

    let profile = ScenarioProfile::quick();
    let sc = drift(&profile, SEED);
    let channels = sc.train.dim();
    let settled = sc.change_start + profile.ramp_len;

    // Fit one detector per rung on the shared pre-change training split
    // and persist each as an IMDE envelope.
    let dir = tmp_dir("ladder");
    let fit_rung = |kind: DetectorKind, file: &str| -> PathBuf {
        let path = dir.join(file);
        let mut det = AnyDetector::new(kind, tiny_cfg(), SEED);
        det.fit(&sc.train).expect("fit rung");
        det.save(&path).expect("save rung envelope");
        path
    };
    let z_path = fit_rung(DetectorKind::ZScore, "zscore.imde");
    let if_path = fit_rung(DetectorKind::IForest, "iforest.imde");
    let imd_path = fit_rung(DetectorKind::ImDiffusion, "imdiffusion.imde");

    // Labeled holdout from the settled post-change regime, containing
    // injected spikes. `f1_tolerance = 1.0` makes the ladder evaluation
    // deterministic for the mirror: the cheapest rung always wins.
    let h0 = settled + 48;
    let holdout_rows: Vec<Vec<f32>> = (h0..h0 + 48).map(|l| sc.stream.row(l).to_vec()).collect();
    let holdout_labels = sc.labels[h0..h0 + 48].to_vec();
    assert!(
        holdout_labels.iter().any(|&t| t),
        "holdout slice should contain injected spikes"
    );

    let canon = dir.join("canon.imde");
    let spec = || TenantSpec {
        id: "esc".into(),
        checkpoint: canon.clone(),
        cfg: tiny_cfg(),
        seed: SEED,
        channels,
        hop: HOP,
        holdout: None,
        drift_policy: Some((3.0, 2)),
        family: DetectorKind::ZScore,
        escalation: Some(EscalationSpec {
            rungs: vec![
                RungSpec {
                    kind: DetectorKind::ZScore,
                    checkpoint: z_path.clone(),
                },
                RungSpec {
                    kind: DetectorKind::IForest,
                    checkpoint: if_path.clone(),
                },
                RungSpec {
                    kind: DetectorKind::ImDiffusion,
                    checkpoint: imd_path.clone(),
                },
            ],
            f1_tolerance: 1.0,
            holdout_rows: holdout_rows.clone(),
            holdout_labels: holdout_labels.clone(),
        }),
    };
    let serve_cfg = || ServeConfig {
        shards: 1,
        max_batch: 4,
        max_wait: Duration::from_millis(5),
        max_queue: 1024,
        shed_after: Duration::from_secs(60),
        deadline: Duration::from_secs(120),
        reload_poll: None,
        snapshot_every: None,
        regression_watch: 0,
        ..ServeConfig::default()
    };

    assert!(!canon.exists(), "canonical checkpoint must start absent");
    let server = Server::start(serve_cfg(), vec![spec()]).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(120))).unwrap();

    // Local mirror of the pinned base rung: the same envelope bytes the
    // initial ladder evaluation pins and persists as the canonical
    // checkpoint.
    let cfg = tiny_cfg();
    let mut mirror = StreamingMonitor::new(
        AnyDetector::load(&cfg, SEED, channels, &z_path).unwrap(),
        channels,
        HOP,
    )
    .unwrap();
    assert!(mirror.set_drift_policy(3.0, 2), "base rung must arm drift");
    let mut was_drifted = mirror.drift_status().drifted;

    let mut wire: Vec<(u64, f64, u32, bool, bool)> = Vec::new();
    let mut local = Vec::new();
    let stream_rows =
        |client: &mut ServeClient, mirror: &mut StreamingMonitor<AnyDetector>, was: &mut bool, wire: &mut Vec<(u64, f64, u32, bool, bool)>, local: &mut Vec<_>, from: usize, to: usize| {
            for start in (from..to).step_by(HOP) {
                let end = to.min(start + HOP);
                let rows: Vec<Vec<f32>> =
                    (start..end).map(|l| sc.stream.row(l).to_vec()).collect();
                let scored = client.score("esc", 0, rows.clone()).unwrap();
                for v in scored.verdicts {
                    wire.push((v.index, v.score, v.votes, v.anomalous, v.degraded));
                }
                for row in &rows {
                    local.extend(mirror.push(row).unwrap());
                }
                mirror_route(mirror, was, &cfg, channels, &z_path, &imd_path);
            }
        };

    // Pre-change stream: the tenant serves on the cheap rung, no drift.
    stream_rows(&mut client, &mut mirror, &mut was_drifted, &mut wire, &mut local, 0, sc.change_start);
    let h = health_of(&mut client, "esc");
    assert_eq!(h.family, "ZScore", "initial ladder pin is not the cheapest rung");
    assert_eq!(h.generation, 1);
    assert!(!h.drifted, "drift latched before the change");
    assert!(canon.exists(), "initial pin was not persisted as the canonical envelope");
    assert!(
        obs::snapshot_json().contains("serve.escalation.initial_pins"),
        "initial ladder pin did not tick its counter"
    );

    // Regime change: the latch trips and the router swaps in the apex.
    stream_rows(&mut client, &mut mirror, &mut was_drifted, &mut wire, &mut local, sc.change_start, sc.stream.len());
    let h = health_of(&mut client, "esc");
    assert_eq!(h.family, "ImDiffusion", "drift trip did not escalate to the apex");
    assert!(h.drifted, "latch should still be up at the apex mid-shift");
    assert!(h.drift_trips >= 1);
    assert_eq!(h.generation, 2, "escalation repin must bump the generation once");
    let snapshot = obs::snapshot_json();
    assert!(snapshot.contains("serve.escalation.drift_escalations"));
    assert!(snapshot.contains("serve.escalation.repins"));

    // Kill and restart. The canonical envelope now holds the apex — a
    // fresh ladder evaluation would have re-pinned the cheap rung, so an
    // ImDiffusion family after restart proves the pin was *restored*.
    client.snapshot("esc").expect("snapshot sidecar");
    let fed = sc.stream.len() as u64;
    drop(client);
    server.drain();
    let server = Server::start(serve_cfg(), vec![spec()]).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(120))).unwrap();
    let h = wait_for_family(&mut client, "esc", "ImDiffusion");
    assert_eq!(
        h.rows_seen, fed,
        "restart did not resume from the snapshotted sidecar"
    );

    // The stream reverts to the pre-change regime: the latch clears, the
    // clear edge re-evaluates the ladder, and the tenant de-escalates.
    // The replayed rows are the same pre-change slice, pushed through
    // the uninterrupted mirror at its current position.
    for start in (0..160).step_by(HOP) {
        let rows: Vec<Vec<f32>> =
            (start..start + HOP).map(|l| sc.stream.row(l).to_vec()).collect();
        let scored = client.score("esc", 0, rows.clone()).unwrap();
        for v in scored.verdicts {
            wire.push((v.index, v.score, v.votes, v.anomalous, v.degraded));
        }
        for row in &rows {
            local.extend(mirror.push(row).unwrap());
        }
        mirror_route(&mut mirror, &mut was_drifted, &cfg, channels, &z_path, &imd_path);
    }
    let h = health_of(&mut client, "esc");
    assert_eq!(h.family, "ZScore", "clear edge did not de-escalate");
    assert!(!h.drifted, "latch should have cleared on the reverted regime");
    assert!(
        obs::snapshot_json().contains("serve.escalation.deescalations"),
        "de-escalation did not tick its counter"
    );

    // Every verdict of the whole episode — cheap rung, escalated apex,
    // across the restart, and after de-escalation — bit-matches the
    // local replay.
    assert_eq!(wire.len(), local.len(), "verdict counts differ");
    for (w, l) in wire.iter().zip(&local) {
        assert_eq!(w.0, l.index);
        assert_eq!(
            w.1.to_bits(),
            l.score.to_bits(),
            "score bits differ at index {}",
            l.index
        );
        assert_eq!(w.2, l.votes);
        assert_eq!(w.3, l.anomalous);
        assert_eq!(w.4, l.degraded);
    }

    drop(client);
    server.drain();
    obs::set_enabled(was_enabled);
    let _ = std::fs::remove_dir_all(&dir);
}
