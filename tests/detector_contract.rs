//! Contract tests: every detector in the workspace (the ten baselines and
//! ImDiffusion) must honour the `Detector` trait's lifecycle semantics.

use imdiffusion_repro::baselines::all_baselines;
use imdiffusion_repro::core::{ImDiffusionConfig, ImDiffusionDetector};
use imdiffusion_repro::data::synthetic::{generate, Benchmark, SizeProfile};
use imdiffusion_repro::data::{Detector, DetectorError, Mts};

fn tiny_imdiffusion(seed: u64) -> ImDiffusionDetector {
    ImDiffusionDetector::new(
        ImDiffusionConfig {
            window: 16,
            train_stride: 8,
            hidden: 8,
            heads: 2,
            residual_blocks: 1,
            diffusion_steps: 5,
            train_steps: 8,
            batch_size: 2,
            vote_span: 5,
            vote_every: 2,
            ..ImDiffusionConfig::quick()
        },
        seed,
    )
}

fn all_detectors(seed: u64) -> Vec<Box<dyn Detector>> {
    let mut v = all_baselines(seed);
    v.push(Box::new(tiny_imdiffusion(seed)));
    v
}

fn small_dataset() -> imdiffusion_repro::data::synthetic::LabeledDataset {
    generate(
        Benchmark::Gcp,
        &SizeProfile {
            train_len: 120,
            test_len: 80,
        },
        5,
    )
}

#[test]
fn detect_before_fit_is_an_error() {
    let ds = small_dataset();
    for mut det in all_detectors(1) {
        let err = det.detect(&ds.test).expect_err(det.name());
        assert!(
            matches!(err, DetectorError::NotFitted),
            "{} returned {err:?}",
            det.name()
        );
    }
}

#[test]
fn scores_cover_every_timestamp_and_are_finite() {
    let ds = small_dataset();
    for mut det in all_detectors(2) {
        det.fit(&ds.train).unwrap_or_else(|e| panic!("{} fit: {e}", det.name()));
        let d = det
            .detect(&ds.test)
            .unwrap_or_else(|e| panic!("{} detect: {e}", det.name()));
        assert_eq!(d.scores.len(), ds.test.len(), "{}", det.name());
        assert!(
            d.scores.iter().all(|s| s.is_finite()),
            "{} produced non-finite scores",
            det.name()
        );
        if let Some(labels) = &d.labels {
            assert_eq!(labels.len(), ds.test.len(), "{}", det.name());
        }
    }
}

#[test]
fn channel_mismatch_is_an_error() {
    let ds = small_dataset();
    let wrong = Mts::zeros(80, ds.train.dim() + 1);
    for mut det in all_detectors(3) {
        det.fit(&ds.train).unwrap();
        let err = det.detect(&wrong).expect_err(det.name());
        assert!(
            matches!(err, DetectorError::DimensionMismatch { .. }),
            "{} returned {err:?}",
            det.name()
        );
    }
}

#[test]
fn same_seed_same_scores() {
    let ds = small_dataset();
    for (a, b) in all_detectors(4).into_iter().zip(all_detectors(4)) {
        let mut a = a;
        let mut b = b;
        a.fit(&ds.train).unwrap();
        b.fit(&ds.train).unwrap();
        let da = a.detect(&ds.test).unwrap();
        let db = b.detect(&ds.test).unwrap();
        assert_eq!(da.scores, db.scores, "{} is nondeterministic", a.name());
    }
}

#[test]
fn empty_training_data_is_rejected() {
    for mut det in all_detectors(5) {
        let err = det.fit(&Mts::zeros(0, 3)).expect_err(det.name());
        assert!(
            matches!(err, DetectorError::InvalidTrainingData(_)),
            "{} returned {err:?}",
            det.name()
        );
    }
}
