//! Failure-path tests for the replicated serving tier: retry backoff is
//! deterministic, duplicate frames are deduplicated, misaligned streams
//! are refused (never silently ingested), idle connections are reaped,
//! failover restores tenants bit-identically from their IMSM sidecars,
//! and a corrupted sidecar downgrades to a re-warm instead of an outage.

use std::io::Read as _;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use imdiffusion_repro::core::{ImDiffusionConfig, ImDiffusionDetector};
use imdiffusion_repro::data::synthetic::{generate, Benchmark, SizeProfile};
use imdiffusion_repro::data::Detector;
use imdiffusion_repro::nn::obs;
use imdiffusion_repro::serve::chaos::{run_chaos, ChaosEvent, ChaosPlan};
use imdiffusion_repro::serve::wire::WireVerdict;
use imdiffusion_repro::serve::{
    Backoff, ClientError, ErrorCode, RetryPolicy, ServeClient, ServeConfig, Server, TenantSpec,
};

/// Tests that flip the process-global observability switch or assert on
/// process-global counters serialize through this lock so they cannot
/// race each other's state.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn tiny_cfg() -> ImDiffusionConfig {
    ImDiffusionConfig {
        window: 16,
        train_stride: 8,
        hidden: 8,
        heads: 2,
        residual_blocks: 1,
        diffusion_steps: 5,
        train_steps: 10,
        batch_size: 2,
        vote_span: 5,
        vote_every: 2,
        ..ImDiffusionConfig::quick()
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "imdiff-failover-{}-{name}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

/// Trains a tiny detector, checkpoints it, and returns the test rows.
fn train_and_save(path: &Path, seed: u64, test_len: usize) -> (Vec<Vec<f32>>, usize) {
    let ds = generate(
        Benchmark::Gcp,
        &SizeProfile {
            train_len: 80,
            test_len,
        },
        seed,
    );
    let mut det = ImDiffusionDetector::new(tiny_cfg(), seed);
    det.fit(&ds.train).unwrap();
    det.save(path).unwrap();
    let rows = (0..ds.test.len()).map(|l| ds.test.row(l).to_vec()).collect();
    (rows, ds.test.dim())
}

fn tenant_spec(id: &str, path: &Path, seed: u64, channels: usize) -> TenantSpec {
    TenantSpec {
        id: id.into(),
        checkpoint: path.to_path_buf(),
        cfg: tiny_cfg(),
        seed,
        channels,
        hop: 2,
        holdout: None,
        drift_policy: None,
        family: imdiffusion_repro::registry::DetectorKind::ImDiffusion,
        escalation: None,
    }
}

fn lenient_config() -> ServeConfig {
    ServeConfig {
        shards: 1,
        max_batch: 4,
        max_wait: Duration::from_millis(10),
        max_queue: 256,
        shed_after: Duration::from_secs(60),
        deadline: Duration::from_secs(120),
        reload_poll: None,
        snapshot_every: None,
        ..ServeConfig::default()
    }
}

fn bits_equal(a: &WireVerdict, b: &WireVerdict) -> bool {
    a.index == b.index
        && a.score.to_bits() == b.score.to_bits()
        && a.votes == b.votes
        && a.anomalous == b.anomalous
        && a.degraded == b.degraded
}

fn rows_seen(client: &mut ServeClient, tenant: &str) -> u64 {
    client
        .health()
        .unwrap()
        .into_iter()
        .find(|t| t.id == tenant)
        .expect("tenant in health report")
        .rows_seen
}

// ---------------------------------------------------------------------------
// Backoff
// ---------------------------------------------------------------------------

/// Same policy + seed ⇒ the exact same delay sequence; the budget is
/// honoured; every delay stays inside the [raw/2, raw) jitter window.
#[test]
fn backoff_is_deterministic_and_bounded() {
    let policy = RetryPolicy {
        max_attempts: 6,
        base: Duration::from_millis(10),
        cap: Duration::from_millis(200),
        seed: 42,
    };
    let drain = |mut b: Backoff| -> Vec<Duration> {
        std::iter::from_fn(|| b.next_delay()).collect()
    };
    let a = drain(Backoff::new(policy));
    let b = drain(Backoff::new(policy));
    assert_eq!(a, b, "same seed must replay the same jitter");
    // max_attempts = 6 means the first attempt plus 5 retries.
    assert_eq!(a.len(), 5);
    for (i, d) in a.iter().enumerate() {
        let raw = Duration::from_millis(10)
            .saturating_mul(1 << i as u32)
            .min(Duration::from_millis(200));
        assert!(*d >= raw / 2, "delay {i} = {d:?} below half of {raw:?}");
        assert!(*d < raw, "delay {i} = {d:?} reached un-jittered {raw:?}");
    }
    let other = drain(Backoff::new(RetryPolicy { seed: 43, ..policy }));
    assert_ne!(a, other, "different seeds must not stampede in lockstep");
}

/// `RetryPolicy::instant` keeps the attempt budget but removes every
/// wall-clock delay — what the harness uses to test retry logic fast.
#[test]
fn instant_policy_has_budget_but_no_delay() {
    let mut b = Backoff::new(RetryPolicy::instant(3));
    assert_eq!(b.next_delay(), Some(Duration::ZERO));
    assert_eq!(b.next_delay(), Some(Duration::ZERO));
    assert_eq!(b.next_delay(), None);
}

/// The client-side retry taxonomy: transport losses and typed
/// `Unavailable` refusals are retryable, contract errors are not.
#[test]
fn client_error_retryability_taxonomy() {
    let refusal = |code| ClientError::Server {
        code,
        message: String::new(),
    };
    assert!(refusal(ErrorCode::Overloaded).is_retryable());
    assert!(refusal(ErrorCode::Timeout).is_retryable());
    assert!(refusal(ErrorCode::Unavailable).is_retryable());
    assert!(refusal(ErrorCode::Interrupted).is_retryable());
    assert!(!refusal(ErrorCode::UnknownTenant).is_retryable());
    assert!(!refusal(ErrorCode::BadRequest).is_retryable());
    assert!(!refusal(ErrorCode::Internal).is_retryable());
    assert!(ClientError::Closed.is_retryable());
    assert!(!ClientError::Unexpected("wanted verdicts".into()).is_retryable());

    // The applied-state split: only Interrupted signals "may already be
    // ingested — replay the SAME seq"; everything else (notably
    // Unavailable) is a pre-ingestion refusal, safe to resubmit fresh.
    assert!(ErrorCode::Interrupted.may_be_applied());
    assert!(!ErrorCode::Unavailable.may_be_applied());
    assert!(!ErrorCode::Overloaded.may_be_applied());
    assert!(!ErrorCode::Timeout.may_be_applied());
}

// ---------------------------------------------------------------------------
// Sequence dedup + position guard (direct server)
// ---------------------------------------------------------------------------

/// Replaying a frame with the same sequence id is answered from the
/// reply cache — bit-identical verdicts, zero additional rows ingested.
#[test]
fn duplicate_seq_is_served_from_cache() {
    let dir = tmp_dir("dedup");
    let ckpt = dir.join("tenant.imdf");
    let (rows, channels) = train_and_save(&ckpt, 5, 32);
    let server = Server::start(lenient_config(), vec![tenant_spec("dup", &ckpt, 5, channels)])
        .unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();

    let chunk: Vec<Vec<f32>> = rows[..8].to_vec();
    client.send_score_seq("dup", 1, 0, 0, chunk.clone()).unwrap();
    let first = client.recv_scored().unwrap();
    assert_eq!(rows_seen(&mut client, "dup"), 8);

    // Same seq again: must come back from the cache, not re-ingest.
    client.send_score_seq("dup", 1, 0, 0, chunk).unwrap();
    let second = client.recv_scored().unwrap();
    assert_eq!(first.verdicts.len(), second.verdicts.len());
    for (a, b) in first.verdicts.iter().zip(&second.verdicts) {
        assert!(bits_equal(a, b), "cached reply differs: {a:?} vs {b:?}");
    }
    assert_eq!(rows_seen(&mut client, "dup"), 8, "duplicate ingested rows");

    // The stream continues normally past the duplicate.
    client
        .send_score_seq("dup", 2, 8, 0, rows[8..16].to_vec())
        .unwrap();
    client.recv_scored().unwrap();
    assert_eq!(rows_seen(&mut client, "dup"), 16);
    server.drain();
}

/// A chunk claiming the wrong stream position is refused with a typed
/// `Unavailable` *before* ingestion — and the refusal does not burn the
/// sequence id, so the client can re-send the right rows under it.
#[test]
fn position_guard_refuses_misaligned_chunks() {
    let dir = tmp_dir("posguard");
    let ckpt = dir.join("tenant.imdf");
    let (rows, channels) = train_and_save(&ckpt, 6, 32);
    let server = Server::start(lenient_config(), vec![tenant_spec("pos", &ckpt, 6, channels)])
        .unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();

    client
        .send_score_seq("pos", 1, 0, 0, rows[..8].to_vec())
        .unwrap();
    client.recv_scored().unwrap();
    assert_eq!(rows_seen(&mut client, "pos"), 8);

    // Claiming row 0 again must be refused: the stream is at row 8.
    client
        .send_score_seq("pos", 2, 0, 0, rows[8..16].to_vec())
        .unwrap();
    match client.recv_scored() {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::Unavailable, "wrong code: {message}");
            assert!(message.contains("stream is at 8"), "uninformative: {message}");
        }
        other => panic!("misaligned chunk was not refused: {other:?}"),
    }
    assert_eq!(rows_seen(&mut client, "pos"), 8, "refused chunk was ingested");

    // The refusal did not spend seq 2: the corrected chunk reuses it.
    client
        .send_score_seq("pos", 2, 8, 0, rows[8..16].to_vec())
        .unwrap();
    client.recv_scored().unwrap();
    assert_eq!(rows_seen(&mut client, "pos"), 16);

    // u64::MAX opts out of the check entirely (legacy unguarded client).
    client
        .send_score_seq("pos", 3, u64::MAX, 0, rows[16..24].to_vec())
        .unwrap();
    client.recv_scored().unwrap();
    assert_eq!(rows_seen(&mut client, "pos"), 24);
    server.drain();
}

/// Applied sequence ids are tracked exactly, not as a max: a seq that was
/// *refused* (never ingested) must stay admissible even after a *higher*
/// seq has been applied. A max-watermark dedup would misread the retried
/// lower seq as "already applied, reply evicted" and bounce it forever.
#[test]
fn refused_seq_below_applied_max_is_readmitted() {
    let dir = tmp_dir("seqexact");
    let ckpt = dir.join("tenant.imdf");
    let (rows, channels) = train_and_save(&ckpt, 9, 32);
    let server = Server::start(lenient_config(), vec![tenant_spec("sq", &ckpt, 9, channels)])
        .unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();

    // seq 1 applies; the stream is now at row 8.
    client
        .send_score_seq("sq", 1, 0, 0, rows[..8].to_vec())
        .unwrap();
    client.recv_scored().unwrap();
    assert_eq!(rows_seen(&mut client, "sq"), 8);

    // seq 2 claims row 0 → position-refused, NOT applied.
    client
        .send_score_seq("sq", 2, 0, 0, rows[8..16].to_vec())
        .unwrap();
    assert!(
        matches!(
            client.recv_scored(),
            Err(ClientError::Server { code: ErrorCode::Unavailable, .. })
        ),
        "misaligned seq 2 was not refused"
    );

    // seq 3 applies — the applied *max* is now above the refused seq 2.
    client
        .send_score_seq("sq", 3, 8, 0, rows[8..16].to_vec())
        .unwrap();
    client.recv_scored().unwrap();
    assert_eq!(rows_seen(&mut client, "sq"), 16);

    // Corrected seq 2 must be admitted as new work, not bounced as a
    // stale replay of an evicted reply.
    client
        .send_score_seq("sq", 2, 16, 0, rows[16..24].to_vec())
        .unwrap();
    client
        .recv_scored()
        .expect("refused seq below the applied max was not readmitted");
    assert_eq!(rows_seen(&mut client, "sq"), 24);
    server.drain();
}

// ---------------------------------------------------------------------------
// Idle reaping
// ---------------------------------------------------------------------------

/// A connection that never sends a frame is closed once `idle_timeout`
/// elapses — it cannot pin server resources forever — and the server
/// keeps serving fresh connections afterwards.
#[test]
fn idle_connections_are_reaped() {
    let dir = tmp_dir("idle");
    let ckpt = dir.join("tenant.imdf");
    let (_, channels) = train_and_save(&ckpt, 7, 16);
    let server = Server::start(
        ServeConfig {
            idle_timeout: Some(Duration::from_millis(150)),
            ..lenient_config()
        },
        vec![tenant_spec("idle", &ckpt, 7, channels)],
    )
    .unwrap();

    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let started = Instant::now();
    let mut buf = [0u8; 16];
    // EOF (Ok(0)) or a reset — anything but a successful read or a full
    // 10 s block means the server hung up on us.
    match s.read(&mut buf) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("server sent {n} unsolicited bytes"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(8),
        "idle connection was not reaped within the timeout"
    );

    // The reap was surgical: new connections still work.
    let mut client = ServeClient::connect(server.addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(5))).unwrap();
    client.ping().unwrap();
    server.drain();
}

// ---------------------------------------------------------------------------
// Failover (replicated tier, via the chaos harness)
// ---------------------------------------------------------------------------

/// Killing a replica mid-stream fails its tenants over to the survivor,
/// restored from their sidecars, with post-failover verdicts
/// bit-identical to an uninterrupted monitor — and the supervisor's
/// failover counters tick.
#[test]
fn failover_restores_tenants_bit_identically() {
    let _guard = OBS_LOCK.lock().unwrap();
    let was_enabled = obs::enabled();
    obs::set_enabled(true);
    let plan = ChaosPlan {
        seed: 21,
        replicas: 2,
        tenants: 2,
        chunk_rows: 4,
        chunks: 8,
        events: vec![
            (3, ChaosEvent::Snapshot { tenant: 0 }),
            (3, ChaosEvent::Snapshot { tenant: 1 }),
            (5, ChaosEvent::KillReplicaOf { tenant: 0 }),
        ],
    };
    let report = run_chaos(&plan).unwrap();
    obs::set_enabled(was_enabled);
    assert!(report.ok(), "violations: {:?}", report.violations);
    assert_eq!(report.replicas_lost, 1, "the kill did not land");
    assert!(
        report.tenants_bit_identical >= 1,
        "no tenant proved bit-identical after failover"
    );
    assert!(
        report.typed_errors >= 1,
        "the kill was invisible to the client — requests must surface as typed errors"
    );
    let snapshot = obs::snapshot_json();
    assert!(
        snapshot.contains("serve.failover.failovers"),
        "failover did not tick its counter"
    );
    assert!(
        snapshot.contains("serve.failover.heartbeat_misses"),
        "heartbeat misses were not counted"
    );
}

/// A corrupted sidecar must downgrade failover to a re-warm: detected
/// (counted), excluded from bit-identity, and the tenant serves fresh
/// verdicts again instead of going dark.
#[test]
fn corrupt_sidecar_downgrades_to_rewarm() {
    let _guard = OBS_LOCK.lock().unwrap();
    let was_enabled = obs::enabled();
    obs::set_enabled(true);
    let plan = ChaosPlan {
        seed: 33,
        replicas: 2,
        tenants: 2,
        chunk_rows: 4,
        chunks: 12,
        events: vec![
            (3, ChaosEvent::Snapshot { tenant: 0 }),
            (3, ChaosEvent::Snapshot { tenant: 1 }),
            (4, ChaosEvent::CorruptSidecar { tenant: 0 }),
            (5, ChaosEvent::KillReplicaOf { tenant: 0 }),
        ],
    };
    let report = run_chaos(&plan).unwrap();
    obs::set_enabled(was_enabled);
    assert!(report.ok(), "violations: {:?}", report.violations);
    assert_eq!(report.replicas_lost, 1, "the kill did not land");
    assert!(
        report.tenants_rewarmed >= 1,
        "corrupted tenant did not re-warm and serve again"
    );
    assert!(
        obs::snapshot_json().contains("serve.failover.sidecar_corrupt"),
        "sidecar corruption was not counted"
    );
}

// ---------------------------------------------------------------------------
// Observability neutrality
// ---------------------------------------------------------------------------

/// Flipping observability on must never change a single verdict bit:
/// counters and spans observe the pipeline, they are not part of it.
#[test]
fn obs_toggle_does_not_perturb_verdicts() {
    let _guard = OBS_LOCK.lock().unwrap();
    let dir = tmp_dir("obsneutral");
    let ckpt = dir.join("tenant.imdf");
    let (rows, channels) = train_and_save(&ckpt, 9, 48);
    let was_enabled = obs::enabled();

    let run = |enabled: bool| -> Vec<WireVerdict> {
        obs::set_enabled(enabled);
        let server =
            Server::start(lenient_config(), vec![tenant_spec("obs", &ckpt, 9, channels)])
                .unwrap();
        let mut client = ServeClient::connect(server.addr()).unwrap();
        client.set_timeout(Some(Duration::from_secs(30))).unwrap();
        let mut verdicts = Vec::new();
        for (i, chunk) in rows.chunks(8).enumerate() {
            client
                .send_score_seq("obs", (i + 1) as u64, (i * 8) as u64, 0, chunk.to_vec())
                .unwrap();
            verdicts.extend(client.recv_scored().expect("score chunk").verdicts);
        }
        server.drain();
        verdicts
    };

    let with_obs = run(true);
    let without_obs = run(false);
    obs::set_enabled(was_enabled);

    assert!(!with_obs.is_empty(), "run produced no verdicts to compare");
    assert_eq!(with_obs.len(), without_obs.len());
    for (a, b) in with_obs.iter().zip(&without_obs) {
        assert!(
            bits_equal(a, b),
            "observability perturbed a verdict: {a:?} vs {b:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// Replication ahead of failure
// ---------------------------------------------------------------------------

/// With `RouterConfig::replication` configured, the supervisor keeps
/// standby copies of every tenant's checkpoint + IMSM sidecar — so when
/// the canonical sidecar is lost *with* the dead replica (no shared
/// disk), failover restores it from the standby and the survivor still
/// resumes mid-stream instead of going dark or silently re-warming.
#[test]
fn failover_restores_from_standby_when_canonical_sidecar_is_lost() {
    use imdiffusion_repro::core::stream_path;
    use imdiffusion_repro::serve::{Replicated, ReplicationCfg, RouterConfig};

    let _guard = OBS_LOCK.lock().unwrap();
    let was_enabled = obs::enabled();
    obs::set_enabled(true);

    let dir = tmp_dir("standby");
    let ckpt = dir.join("solo.imdf");
    let (rows, channels) = train_and_save(&ckpt, 7, 48);
    let standby = dir.join("standby");
    let _ = std::fs::remove_dir_all(&standby);

    let tier = Replicated::start(
        RouterConfig {
            replicas: 2,
            heartbeat_every: Duration::from_millis(20),
            heartbeat_timeout: Duration::from_millis(100),
            heartbeat_misses: 2,
            // A cadence long enough that only replicate_now() copies —
            // the test stays deterministic about *what* the standby holds.
            replication: Some(ReplicationCfg {
                dir: standby.clone(),
                every: Duration::from_secs(3600),
            }),
            replica: lenient_config(),
            ..RouterConfig::default()
        },
        vec![tenant_spec("solo", &ckpt, 7, channels)],
    )
    .expect("start tier");
    let addr = tier.addr();

    // Feed half the stream, snapshot (sidecar now holds mid-stream
    // state), then pin the standby to exactly that state.
    let mut client = ServeClient::connect(addr).expect("connect");
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    let fed: usize = {
        let mut fed = 0;
        for chunk in rows.chunks(4).take(4) {
            client.score("solo", 0, chunk.to_vec()).expect("score chunk");
            fed += chunk.len();
        }
        fed
    };
    client.snapshot("solo").expect("snapshot");
    tier.replicate_now();
    assert!(
        stream_path(&standby.join("t0.imdf")).exists(),
        "replicate_now did not copy the sidecar into the standby dir"
    );

    // Shared disk "fails": the canonical sidecar is gone. Then the
    // owner dies.
    std::fs::remove_file(stream_path(&ckpt)).expect("remove canonical sidecar");
    let owner = tier.replica_of("solo").expect("placed");
    tier.kill_replica(owner);

    let deadline = Instant::now() + Duration::from_secs(60);
    while Instant::now() < deadline {
        if tier.replica_of("solo").map(|r| r != owner).unwrap_or(false) {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(
        tier.replica_of("solo").map(|r| r != owner).unwrap_or(false),
        "failover did not re-place the tenant"
    );
    assert!(
        stream_path(&ckpt).exists(),
        "failover did not restore the canonical sidecar from the standby"
    );
    let snapshot = obs::snapshot_json();
    assert!(
        snapshot.contains("serve.failover.standby_restores"),
        "standby restore did not tick its counter: {snapshot}"
    );

    // The survivor resumed from the replicated snapshot: it reports the
    // snapshotted stream position, and scoring continues from there.
    let mut client = ServeClient::connect(addr).expect("reconnect");
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    assert_eq!(
        rows_seen(&mut client, "solo") as usize,
        fed,
        "survivor did not resume at the replicated sidecar's position"
    );
    for chunk in rows[fed..].chunks(4).take(2) {
        client
            .score("solo", 0, chunk.to_vec())
            .expect("score after standby-restored failover");
    }

    obs::set_enabled(was_enabled);
    tier.shutdown();
}
