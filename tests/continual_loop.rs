//! End-to-end continual-learning loop over the wire: a seeded drifting
//! stream degrades the serving tenant, a fine-tuning round on recent
//! post-change rows produces a candidate, the labeled validation gate
//! promotes it with zero refused requests, the drift latch clears, and
//! every verdict of the whole episode bit-matches a local monitor
//! replaying the same rows with the same swap schedule — so the episode
//! is identical at any `IMDIFF_THREADS` setting (CI runs this test at 1
//! and default). A corrupt rewrite afterwards is refused without
//! touching the adapted generation; gate *rejection* edge cases
//! (strictly worse candidate, guard-rail divergence) are pinned down in
//! `serve_promotion.rs`.

use std::path::PathBuf;
use std::time::Duration;

use imdiffusion_repro::core::{
    FineTuneOptions, FineTuner, ImDiffusionConfig, ImDiffusionDetector, StreamingMonitor,
};
use imdiffusion_repro::data::scenario::{drift, ScenarioProfile};
use imdiffusion_repro::data::{Detector, Mts};
use imdiffusion_repro::serve::{
    HoldoutSpec, PromotionVerdict, ServeClient, ServeConfig, Server, TenantSpec,
    WireHealthState,
};

fn tiny_cfg() -> ImDiffusionConfig {
    ImDiffusionConfig {
        window: 16,
        train_stride: 8,
        hidden: 8,
        heads: 2,
        residual_blocks: 1,
        diffusion_steps: 5,
        train_steps: 10,
        batch_size: 2,
        vote_span: 5,
        vote_every: 2,
        ..ImDiffusionConfig::quick()
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "imdiff-loop-{}-{name}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

#[test]
fn drifting_stream_degrades_retrains_and_recovers_bit_identically() {
    let profile = ScenarioProfile::quick();
    let sc = drift(&profile, 11);
    let channels = sc.train.dim();
    let settled = sc.change_start + profile.ramp_len;
    let retrain_at = sc.change_start + 300;

    let dir = tmp_dir("drift");
    let path = dir.join("t.imdf");
    let mut incumbent = ImDiffusionDetector::new(tiny_cfg(), 4);
    incumbent.fit(&sc.train).unwrap();
    incumbent.save(&path).unwrap();
    let incumbent_spec = incumbent.to_spec().expect("fitted");

    // Labeled holdout from the settled post-change regime, covering the
    // first injected spikes: the gate judges candidates on ground truth
    // from the distribution the tenant must adapt to.
    let h0 = settled + 48;
    let holdout = HoldoutSpec {
        rows: (h0..h0 + 48).map(|l| sc.stream.row(l).to_vec()).collect(),
        labels: Some(sc.labels[h0..h0 + 48].to_vec()),
        score_tolerance: 0.0,
    };
    assert!(
        sc.labels[h0..h0 + 48].iter().any(|&t| t),
        "holdout slice should contain injected spikes"
    );
    let spec = TenantSpec {
        id: "t".into(),
        checkpoint: path.clone(),
        cfg: tiny_cfg(),
        seed: 4,
        channels,
        hop: 8,
        holdout: Some(holdout),
        drift_policy: Some((3.0, 2)),
        family: imdiffusion_repro::registry::DetectorKind::ImDiffusion,
        escalation: None,
    };
    let cfg = ServeConfig {
        shards: 1,
        max_batch: 4,
        max_wait: Duration::from_millis(5),
        max_queue: 1024,
        shed_after: Duration::from_secs(60),
        deadline: Duration::from_secs(120),
        reload_poll: None,
        regression_watch: 0,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, vec![spec]).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(120))).unwrap();

    // Local mirror: identical rows, identical swap schedule. Every score
    // request is unwrapped, so a single refused healthy-path request
    // fails the test.
    let mut mirror = StreamingMonitor::new(incumbent_spec.build(), channels, 8).unwrap();
    assert!(mirror.set_drift_policy(3.0, 2));
    let mut wire: Vec<(u64, f64, u32, bool, bool)> = Vec::new();
    let mut local = Vec::new();
    let stream_span =
        |client: &mut ServeClient, mirror: &mut StreamingMonitor, wire: &mut Vec<_>, local: &mut Vec<_>, from: usize, to: usize, generation: u64| {
            for start in (from..to).step_by(8) {
                let rows: Vec<Vec<f32>> =
                    (start..to.min(start + 8)).map(|l| sc.stream.row(l).to_vec()).collect();
                let scored = client.score("t", 0, rows.clone()).unwrap();
                assert_eq!(scored.generation, generation);
                for v in scored.verdicts {
                    wire.push((v.index, v.score, v.votes, v.anomalous, v.degraded));
                }
                for row in &rows {
                    local.extend(mirror.push(row).unwrap());
                }
            }
        };

    // Pre-change stream: healthy, no drift latch (no false positives).
    stream_span(&mut client, &mut mirror, &mut wire, &mut local, 0, sc.change_start, 1);
    let health = client.health().unwrap();
    assert_eq!(health[0].state, WireHealthState::Healthy);
    assert!(!health[0].drifted, "drift latched before the change");

    // Through the ramp and well past it: the debounced drift signal
    // latches and the health machine reports Degraded — the stale model
    // no longer matches the stream.
    stream_span(&mut client, &mut mirror, &mut wire, &mut local, sc.change_start, retrain_at, 1);
    let health = client.health().unwrap();
    assert!(health[0].drifted, "drift never latched after the change");
    assert!(health[0].drift_trips >= 1);
    assert_eq!(health[0].state, WireHealthState::Degraded);

    // Close the loop: fine-tune the incumbent on recent verdict-negative
    // post-change rows (ground-truth clean here; the monitor-side harvest
    // is unit-tested in core), then offer the candidate for promotion.
    let clean: Vec<usize> =
        (settled..retrain_at).filter(|&l| !sc.labels[l]).collect();
    let mut corpus = Vec::with_capacity(clean.len() * channels);
    for &l in &clean {
        corpus.extend_from_slice(sc.stream.row(l));
    }
    let corpus = Mts::new(corpus, clean.len(), channels);
    let tuner = FineTuner::new(FineTuneOptions {
        steps: 48,
        ema: Some(0.99),
        seed_salt: 1,
        ..FineTuneOptions::default()
    });
    let outcome = tuner.run(&incumbent, &corpus).unwrap();
    assert!(outcome.report.applied, "fine-tune vetoed: {:?}", outcome.report.reason);
    let candidate = outcome.candidate.expect("applied implies candidate");
    let candidate_spec = candidate.to_spec().expect("fitted");
    candidate.save(&path).unwrap();

    // The gate replays the labeled holdout for both models off the shard
    // thread and promotes the adapted candidate; the reply arrives after
    // the swap lands, so the mirror swaps at the same stream position.
    let reload = client.reload("t").unwrap();
    assert_eq!(
        reload.verdict,
        PromotionVerdict::Promoted,
        "gate refused the adapted candidate: {}",
        reload.detail
    );
    assert_eq!(reload.generation, 2);
    mirror.swap_detector(candidate_spec.build()).unwrap();

    // Post-promotion replay: the swap re-baselined the drift reference,
    // so the latch clears and the tenant recovers — zero serving gap.
    stream_span(&mut client, &mut mirror, &mut wire, &mut local, retrain_at, sc.stream.len(), 2);
    let health = client.health().unwrap();
    assert!(!health[0].drifted, "drift still latched after promotion");
    assert_eq!(health[0].state, WireHealthState::Healthy);
    assert!(health[0].recoveries >= 1);
    assert_eq!(health[0].generation, 2);

    // Every verdict of the whole episode — before, during and after the
    // drift — bit-matches the local replay, so the loop is deterministic
    // at any thread count.
    assert_eq!(wire.len(), local.len(), "verdict counts differ");
    for (w, l) in wire.iter().zip(&local) {
        assert_eq!(w.0, l.index);
        assert_eq!(
            w.1.to_bits(),
            l.score.to_bits(),
            "score bits differ at index {}",
            l.index
        );
        assert_eq!(w.2, l.votes);
        assert_eq!(w.3, l.anomalous);
        assert_eq!(w.4, l.degraded);
    }

    // A corrupt rewrite of the checkpoint is refused before it reaches
    // the shard, and the adapted model keeps serving.
    std::fs::write(&path, b"IMDF garbage, not a checkpoint").unwrap();
    let rejected = client.reload("t").unwrap();
    assert_eq!(
        rejected.verdict,
        PromotionVerdict::RejectedCorrupt,
        "corrupt candidate was not refused: {}",
        rejected.detail
    );
    assert_eq!(rejected.generation, 2);
    let scored = client
        .score("t", 0, (0..8).map(|l| sc.stream.row(l).to_vec()).collect())
        .unwrap();
    assert_eq!(scored.generation, 2);

    drop(client);
    server.drain();
    let _ = std::fs::remove_dir_all(&dir);
}
